//! The seeded random design generator.
//!
//! [`generate`] maps `(GenConfig, seed)` deterministically onto a
//! well-formed [`Blueprint`] and its lowered [`Design`]. Taxonomy targeting
//! is compositional — each feature the generator can add corresponds to a
//! known row of the paper's Type A/B/C taxonomy — so a requested class is
//! guaranteed by construction and double-checked against `omnisim-ir`'s
//! classifier before the design is returned.

use crate::blueprint::{Blueprint, EdgeKind, EdgePlan, TaskPlan};
use crate::config::GenConfig;
use crate::rng::Rng;
use omnisim_ir::taxonomy::classify;
use omnisim_ir::{Design, DesignClass};

/// A generated design together with its provenance.
#[derive(Debug, Clone)]
pub struct Generated {
    /// The seed that produced it.
    pub seed: u64,
    /// The class `omnisim-ir`'s classifier assigns to the design.
    pub class: DesignClass,
    /// The shrinkable structural form.
    pub blueprint: Blueprint,
    /// The lowered, validated design.
    pub design: Design,
}

/// Mixing constant decorrelating consecutive seeds (splitmix64 increment).
const SEED_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;

/// Generates one design from a seed.
///
/// Deterministic: the same `(config, seed)` pair always returns the same
/// blueprint and design. When the configuration targets a class, the
/// returned design is guaranteed to classify as that class.
///
/// # Panics
///
/// Panics if the configured ranges are empty (`min > max`) or if a targeted
/// class cannot be hit — the latter would be a generator bug, since every
/// target is reachable by construction.
pub fn generate(cfg: &GenConfig, seed: u64) -> Generated {
    // The construction below guarantees the target class, so the retry loop
    // is a safety net (and keeps generation total if a future feature breaks
    // the guarantee in a corner case).
    for attempt in 0..16u64 {
        let mut rng = Rng::new(
            (seed ^ 0x6f6d_6e69_5f67_656e).wrapping_add(attempt.wrapping_mul(SEED_STRIDE)),
        );
        let blueprint = build_blueprint(cfg, seed, &mut rng);
        debug_assert_eq!(blueprint.well_formed(), Ok(()));
        let design = blueprint.lower();
        let class = classify(&design).class;
        if cfg.target.is_none_or(|t| t == class) {
            return Generated {
                seed,
                class,
                blueprint,
                design,
            };
        }
    }
    panic!(
        "generator bug: no design of class {:?} within 16 attempts for seed {seed}",
        cfg.target
    );
}

fn build_blueprint(cfg: &GenConfig, seed: u64, rng: &mut Rng) -> Blueprint {
    let tokens = rng.range_i64(cfg.tokens.0, cfg.tokens.1);
    let min_tasks = match cfg.target {
        // Type C needs at least one forward edge to make lossy.
        Some(DesignClass::TypeC) => cfg.tasks.0.max(2),
        _ => cfg.tasks.0.max(1),
    };
    let task_count = rng.range_usize(min_tasks, cfg.tasks.1.max(min_tasks));

    let mut tasks: Vec<TaskPlan> = (0..task_count)
        .map(|_| TaskPlan {
            ii: rng.range(1, 4),
            work: rng.range(0, 4),
            start: rng.range_i64(0, 9),
            coef: rng.range_i64(1, 3),
            dynamic_loop: rng.chance(cfg.dynamic_loop_percent),
            array_source: rng.chance(cfg.array_source_percent),
            emits_output: true,
        })
        .collect();

    // Spanning forward edges: every non-root task consumes from some earlier
    // task, then a few extra forward edges for reconvergence.
    let mut edges: Vec<EdgePlan> = Vec::new();
    let mut depth = |rng: &mut Rng| rng.range_usize(cfg.depth.0.max(1), cfg.depth.1);
    for dst in 1..task_count {
        let src = rng.range_usize(0, dst - 1);
        let d = depth(rng);
        edges.push(EdgePlan {
            src,
            dst,
            depth: d,
            kind: EdgeKind::Blocking,
        });
    }
    if task_count >= 2 && cfg.extra_edges > 0 {
        for _ in 0..rng.range_usize(0, cfg.extra_edges) {
            let src = rng.range_usize(0, task_count - 2);
            let dst = rng.range_usize(src + 1, task_count - 1);
            let d = depth(rng);
            edges.push(EdgePlan {
                src,
                dst,
                depth: d,
                kind: EdgeKind::Blocking,
            });
        }
    }
    let forward_count = edges.len();

    // --- Type B features -------------------------------------------------
    // Response edges close request/response cycles over existing forward
    // edges; their forward partners are protected from the lossy conversion
    // below so the liveness (or forced-deadlock) analysis stays valid.
    let mut protected = vec![false; forward_count];
    let mut has_b_feature = false;
    if forward_count > 0 && rng.chance(cfg.back_edge_percent) {
        has_b_feature = true;
        add_response(cfg, rng, &mut edges, &mut protected, &mut depth);
        // Occasionally a second, independent cycle.
        if rng.chance(cfg.back_edge_percent / 2) {
            add_response(cfg, rng, &mut edges, &mut protected, &mut depth);
        }
    }
    // A forced deadlock must never coexist with a retry source: the retry
    // producer would spin forever against a FIFO nobody will ever drain — a
    // livelock neither backend can diagnose as a deadlock (see
    // `Blueprint::well_formed`).
    let has_forced_deadlock = edges
        .iter()
        .any(|e| e.kind == EdgeKind::Response { deadlock: true });
    if !has_forced_deadlock && rng.chance(cfg.nb_retry_percent) {
        has_b_feature = true;
        add_retry_source(rng, &mut tasks, &mut edges, &mut depth, cfg);
    }
    if cfg.target == Some(DesignClass::TypeB) && !has_b_feature {
        // Deterministic fallback: a retry source is always possible.
        add_retry_source(rng, &mut tasks, &mut edges, &mut depth, cfg);
    }

    // --- Type C features -------------------------------------------------
    let mut has_c_feature = false;
    if cfg.nb_drop_percent > 0 {
        for (i, &is_protected) in protected.iter().enumerate() {
            if !is_protected && rng.chance(cfg.nb_drop_percent) {
                make_lossy(rng, &mut tasks, &mut edges, i);
                has_c_feature = true;
            }
        }
    }
    if cfg.target == Some(DesignClass::TypeC) && !has_c_feature {
        match (0..forward_count).find(|&i| !protected[i]) {
            Some(i) => make_lossy(rng, &mut tasks, &mut edges, i),
            None => {
                // Every forward edge is a protected response partner: add a
                // fresh forward edge just to make it lossy.
                let d = depth(rng);
                edges.push(EdgePlan {
                    src: 0,
                    dst: 1,
                    depth: d,
                    kind: EdgeKind::Blocking,
                });
                let i = edges.len() - 1;
                make_lossy(rng, &mut tasks, &mut edges, i);
            }
        }
    }

    Blueprint {
        name: format!("gen_{seed:016x}"),
        tokens,
        tasks,
        edges,
    }
}

/// Closes a request/response cycle over a random forward edge, marking the
/// partner as protected.
fn add_response(
    cfg: &GenConfig,
    rng: &mut Rng,
    edges: &mut Vec<EdgePlan>,
    protected: &mut [bool],
    depth: &mut impl FnMut(&mut Rng) -> usize,
) {
    let partner = rng.range_usize(0, protected.len() - 1);
    protected[partner] = true;
    let (src, dst) = (edges[partner].dst, edges[partner].src);
    let d = depth(rng);
    edges.push(EdgePlan {
        src,
        dst,
        depth: d,
        kind: EdgeKind::Response {
            deadlock: rng.chance(cfg.deadlock_percent),
        },
    });
}

/// Appends a dedicated non-blocking retry source feeding a random existing
/// task.
fn add_retry_source(
    rng: &mut Rng,
    tasks: &mut Vec<TaskPlan>,
    edges: &mut Vec<EdgePlan>,
    depth: &mut impl FnMut(&mut Rng) -> usize,
    cfg: &GenConfig,
) {
    let dst = rng.range_usize(0, tasks.len() - 1);
    let src = tasks.len();
    tasks.push(TaskPlan {
        ii: rng.range(1, 4),
        work: 0,
        start: rng.range_i64(0, 9),
        coef: rng.range_i64(1, 3),
        dynamic_loop: false,
        array_source: rng.chance(cfg.array_source_percent),
        // The retry state is taint-reachable from the NB outcome; keeping it
        // un-observable is what keeps the design Type B.
        emits_output: false,
    });
    let d = depth(rng);
    edges.push(EdgePlan {
        src,
        dst,
        depth: d,
        kind: EdgeKind::NbRetry,
    });
}

/// Converts a forward edge into a lossy NB edge and makes its consumer's
/// accumulator observable, guaranteeing Type C.
fn make_lossy(rng: &mut Rng, tasks: &mut [TaskPlan], edges: &mut [EdgePlan], i: usize) {
    edges[i].kind = EdgeKind::NbDrop {
        counted: rng.chance(50),
    };
    tasks[edges[i].dst].emits_output = true;
    tasks[edges[i].src].emits_output = true;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for seed in 0..32 {
            let a = generate(&GenConfig::mixed(), seed);
            let b = generate(&GenConfig::mixed(), seed);
            assert_eq!(a.blueprint, b.blueprint, "seed {seed}");
            assert_eq!(a.design, b.design, "seed {seed}");
            assert_eq!(a.class, b.class, "seed {seed}");
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&GenConfig::mixed(), 1);
        let b = generate(&GenConfig::mixed(), 2);
        assert_ne!(a.blueprint, b.blueprint);
    }

    #[test]
    fn class_targeting_holds_across_seeds() {
        for class in [DesignClass::TypeA, DesignClass::TypeB, DesignClass::TypeC] {
            let cfg = GenConfig::for_class(class);
            for seed in 0..64 {
                let g = generate(&cfg, seed);
                assert_eq!(g.class, class, "seed {seed} missed target {class:?}");
                assert_eq!(classify(&g.design).class, class, "seed {seed}");
            }
        }
    }

    #[test]
    fn generated_designs_pass_ir_validation() {
        for seed in 0..48 {
            let g = generate(&GenConfig::mixed(), seed);
            assert_eq!(
                omnisim_ir::validate::validate(&g.design),
                Ok(()),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn deadlock_knob_produces_forced_deadlocks() {
        let cfg = GenConfig {
            back_edge_percent: 100,
            deadlock_percent: 100,
            ..GenConfig::mixed()
        };
        let mut saw_deadlock = false;
        for seed in 0..16 {
            let g = generate(&cfg, seed);
            saw_deadlock |= g.blueprint.has_forced_deadlock();
        }
        assert!(saw_deadlock, "deadlock probability 100% never fired");
    }
}
