//! The workspace's seeded PRNG.
//!
//! The build container has no access to external crates, so instead of
//! `rand` every randomized harness in the workspace — the integration tests,
//! the design generator, the differential fuzzer — shares this deterministic
//! xorshift64* generator. Same seed, same sequence, forever: a failing fuzz
//! seed reproduces bit-identically on any machine.

/// Deterministic xorshift64* PRNG so randomized tests are reproducible.
#[derive(Debug, Clone)]
pub struct Rng(u64);

impl Rng {
    /// Creates a generator from a non-zero-coerced seed.
    pub fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }

    /// Next raw 64-bit value.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + self.next() % (hi - lo)
    }

    /// Uniform `usize` in the inclusive range `lo..=hi`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range(lo as u64, hi as u64 + 1) as usize
    }

    /// Uniform `i64` in the inclusive range `lo..=hi` (non-negative bounds).
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        self.range(lo as u64, hi as u64 + 1) as i64
    }

    /// Uniform FIFO depth in `1..=max`.
    pub fn depth(&mut self, max: usize) -> usize {
        1 + (self.next() as usize) % max
    }

    /// True with probability `percent / 100` (values above 100 are always
    /// true).
    pub fn chance(&mut self, percent: u32) -> bool {
        self.range(0, 100) < u64::from(percent)
    }

    /// Picks a uniformly random element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if the slice is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "cannot pick from an empty slice");
        &items[self.range(0, items.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..64 {
            assert_eq!(a.next(), b.next());
        }
    }

    #[test]
    fn zero_seed_is_coerced() {
        let mut z = Rng::new(0);
        let mut one = Rng::new(1);
        assert_eq!(z.next(), one.next());
    }

    #[test]
    fn range_respects_bounds() {
        let mut rng = Rng::new(7);
        for _ in 0..256 {
            let v = rng.range(3, 9);
            assert!((3..9).contains(&v));
            let d = rng.depth(5);
            assert!((1..=5).contains(&d));
            let u = rng.range_usize(2, 2);
            assert_eq!(u, 2);
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = Rng::new(11);
        for _ in 0..64 {
            assert!(!rng.chance(0));
            assert!(rng.chance(100));
        }
    }

    #[test]
    fn pick_covers_the_slice() {
        let mut rng = Rng::new(13);
        let items = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..64 {
            seen[*rng.pick(&items) as usize - 1] = true;
        }
        assert_eq!(seen, [true; 3]);
    }
}
