//! Generator configuration: how big, how connected and how adversarial the
//! random designs are, and which taxonomy class they must land in.

use omnisim_ir::DesignClass;

/// Parameters of the random design generator.
///
/// All probabilities are integer percentages (0–100). The per-class
/// constructors ([`GenConfig::type_a`], [`GenConfig::type_b`],
/// [`GenConfig::type_c`]) return configurations whose feature mix
/// *guarantees* the requested class by construction; [`GenConfig::mixed`]
/// leaves the class unconstrained. The dimension presets
/// ([`GenConfig::axi`], [`GenConfig::calls`], [`GenConfig::multirate`])
/// concentrate the fuzzing budget on one orthogonal timing dimension —
/// AXI burst traffic, `Op::Call` chains, or rate-mismatched edges with
/// leftover data — while staying Type A so every backend (lightning and
/// csim included) must be bit-exact on them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenConfig {
    /// Required taxonomy class, or `None` for an unconstrained mix.
    pub target: Option<DesignClass>,
    /// Inclusive range of worker task counts (before retry sources are
    /// appended).
    pub tasks: (usize, usize),
    /// Maximum number of extra dataflow edges beyond the spanning in-edge
    /// every non-root task receives.
    pub extra_edges: usize,
    /// Inclusive range of FIFO depths.
    pub depth: (usize, usize),
    /// Inclusive range of the per-edge token count `n` (every pipeline edge
    /// carries exactly `n` tokens). When `rate_percent > 0` the picked value
    /// is rounded up to a multiple of 12 so the rates {2, 3, 4, 6} all
    /// divide it.
    pub tokens: (i64, i64),
    /// Probability of closing a request/response cycle over a forward edge
    /// (creates Type B cyclic dependencies).
    pub back_edge_percent: u32,
    /// Probability of adding a dedicated non-blocking retry producer
    /// (Fig. 4 Ex. 2 style; outcome-invisible, so Type B).
    pub nb_retry_percent: u32,
    /// Per-forward-edge probability of converting it to a lossy non-blocking
    /// edge whose drops are observable (Fig. 4 Ex. 4 style, Type C).
    pub nb_drop_percent: u32,
    /// Probability that a task uses a data-dependent `while`-style loop
    /// bound instead of a counted `for` loop.
    pub dynamic_loop_percent: u32,
    /// Probability that a source task streams from a random input array
    /// instead of computing values from its induction variable.
    pub array_source_percent: u32,
    /// Probability that a request/response cycle is deliberately mis-ordered
    /// into a guaranteed design deadlock (both simulators must agree on the
    /// diagnosis). Only meaningful where back edges can occur.
    pub deadlock_percent: u32,
    /// Per-task probability of a rate above 1 (the task reads/writes several
    /// tokens per iteration; edges between different-rate tasks become
    /// multi-rate boundaries). The rate is drawn from the divisors of the
    /// token count in 2..=6 and doubles as the AXI burst length.
    pub rate_percent: u32,
    /// Per-blocking-forward-edge probability of a token surplus: the
    /// producer leaves 1–3 values in the FIFO that the consumer never
    /// drains, making any DSE probe shallower than the surplus infeasible.
    pub surplus_percent: u32,
    /// Per-eligible-task probability of an AXI master port: sources become
    /// burst readers, sinks burst writers, isolated tasks the full
    /// `axi4_master` read/write shape.
    pub axi_percent: u32,
    /// Probability that an AXI read source prefetches bursts (1–2
    /// outstanding transactions ahead of consumption).
    pub axi_prefetch_percent: u32,
    /// Probability that an AXI read source interleaves each beat with its
    /// FIFO writes instead of draining the burst first.
    pub axi_interleave_percent: u32,
    /// Per-task probability of wrapping the fold in an `Op::Call` chain.
    pub call_percent: u32,
    /// Probability that a call chain targets the design's shared (pure)
    /// callee chain instead of a task-private one.
    pub call_shared_percent: u32,
    /// Probability that a private call chain also performs the task's
    /// blocking forward-edge reads inside the innermost callee.
    pub call_wrap_percent: u32,
    /// Maximum call-chain depth (1..=3).
    pub max_call_depth: u32,
}

impl GenConfig {
    /// Baseline knobs shared by every preset.
    fn base() -> Self {
        GenConfig {
            target: None,
            tasks: (2, 6),
            extra_edges: 3,
            depth: (1, 8),
            tokens: (2, 24),
            back_edge_percent: 0,
            nb_retry_percent: 0,
            nb_drop_percent: 0,
            dynamic_loop_percent: 30,
            array_source_percent: 40,
            deadlock_percent: 0,
            rate_percent: 0,
            surplus_percent: 0,
            axi_percent: 0,
            axi_prefetch_percent: 50,
            axi_interleave_percent: 50,
            call_percent: 0,
            call_shared_percent: 40,
            call_wrap_percent: 50,
            max_call_depth: 3,
        }
    }

    /// Blocking-only acyclic pipelines: always Type A.
    pub fn type_a() -> Self {
        GenConfig {
            target: Some(DesignClass::TypeA),
            ..Self::base()
        }
    }

    /// Cyclic request/response pairs and/or outcome-invisible non-blocking
    /// retry producers: always Type B. Sprinkles the orthogonal dimensions
    /// in at low probability so they interact with cycles and retries.
    pub fn type_b() -> Self {
        GenConfig {
            target: Some(DesignClass::TypeB),
            back_edge_percent: 60,
            nb_retry_percent: 60,
            rate_percent: 20,
            surplus_percent: 10,
            axi_percent: 15,
            call_percent: 15,
            ..Self::base()
        }
    }

    /// At least one lossy non-blocking edge with observable drops (plus any
    /// Type B feature): always Type C.
    pub fn type_c() -> Self {
        GenConfig {
            target: Some(DesignClass::TypeC),
            back_edge_percent: 30,
            nb_retry_percent: 20,
            nb_drop_percent: 50,
            rate_percent: 20,
            surplus_percent: 10,
            axi_percent: 15,
            call_percent: 15,
            ..Self::base()
        }
    }

    /// AXI-burst-heavy Type A designs: burst read sources, burst write
    /// sinks and isolated `axi4_master`-shaped tasks, with randomized burst
    /// lengths (the task rate), outstanding-transaction prefetch and
    /// beat/FIFO interleaving. Differentially tests the burst-timing model
    /// on every backend.
    pub fn axi() -> Self {
        GenConfig {
            target: Some(DesignClass::TypeA),
            tasks: (1, 5),
            extra_edges: 2,
            tokens: (12, 24),
            rate_percent: 70,
            axi_percent: 85,
            ..Self::base()
        }
    }

    /// Call-chain-heavy Type A designs: folds (and blocking reads) wrapped
    /// in 1–3 deep `Op::Call` chains, shared and private, exercising the
    /// call-timing contract under FIFO stalls.
    pub fn calls() -> Self {
        GenConfig {
            target: Some(DesignClass::TypeA),
            tokens: (8, 24),
            rate_percent: 30,
            call_percent: 80,
            ..Self::base()
        }
    }

    /// Multi-rate Type A designs: producers emitting `k` tokens per
    /// iteration against consumers draining `m`, plus token surpluses that
    /// leave data in the FIFOs at completion (and make shallow DSE probes
    /// infeasible).
    pub fn multirate() -> Self {
        GenConfig {
            target: Some(DesignClass::TypeA),
            tokens: (12, 24),
            rate_percent: 90,
            surplus_percent: 40,
            ..Self::base()
        }
    }

    /// Unconstrained mix of every feature; the class falls where it falls.
    pub fn mixed() -> Self {
        GenConfig {
            target: None,
            back_edge_percent: 25,
            nb_retry_percent: 20,
            nb_drop_percent: 25,
            rate_percent: 25,
            surplus_percent: 10,
            axi_percent: 20,
            call_percent: 20,
            ..Self::base()
        }
    }

    /// The targeting preset for a given class.
    pub fn for_class(class: DesignClass) -> Self {
        match class {
            DesignClass::TypeA => Self::type_a(),
            DesignClass::TypeB => Self::type_b(),
            DesignClass::TypeC => Self::type_c(),
        }
    }

    /// Looks up a preset by its CLI name: `a`, `b`, `c`, `mixed`, `axi`,
    /// `calls` or `multirate`.
    pub fn preset(name: &str) -> Option<Self> {
        Some(match name {
            "a" => Self::type_a(),
            "b" => Self::type_b(),
            "c" => Self::type_c(),
            "mixed" => Self::mixed(),
            "axi" => Self::axi(),
            "calls" => Self::calls(),
            "multirate" => Self::multirate(),
            _ => return None,
        })
    }

    /// Every preset name accepted by [`GenConfig::preset`], in the order the
    /// CLI's `--preset all` walks them.
    pub const PRESET_NAMES: [&'static str; 7] =
        ["a", "b", "c", "mixed", "axi", "calls", "multirate"];

    /// Returns this configuration with the task-count range replaced.
    pub fn with_tasks(mut self, min: usize, max: usize) -> Self {
        self.tasks = (min, max);
        self
    }

    /// Returns this configuration with the token-count range replaced.
    pub fn with_tokens(mut self, min: i64, max: i64) -> Self {
        self.tokens = (min, max);
        self
    }

    /// Returns this configuration with the deadlock probability replaced.
    pub fn with_deadlocks(mut self, percent: u32) -> Self {
        self.deadlock_percent = percent;
        self
    }
}

impl Default for GenConfig {
    fn default() -> Self {
        Self::mixed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_target_their_class() {
        assert_eq!(GenConfig::type_a().target, Some(DesignClass::TypeA));
        assert_eq!(GenConfig::type_b().target, Some(DesignClass::TypeB));
        assert_eq!(GenConfig::type_c().target, Some(DesignClass::TypeC));
        assert_eq!(GenConfig::mixed().target, None);
        for class in [DesignClass::TypeA, DesignClass::TypeB, DesignClass::TypeC] {
            assert_eq!(GenConfig::for_class(class).target, Some(class));
        }
        // The dimension presets stay Type A so lightning and csim must be
        // bit-exact on every seed.
        assert_eq!(GenConfig::axi().target, Some(DesignClass::TypeA));
        assert_eq!(GenConfig::calls().target, Some(DesignClass::TypeA));
        assert_eq!(GenConfig::multirate().target, Some(DesignClass::TypeA));
    }

    #[test]
    fn type_a_has_no_nonblocking_or_cyclic_features() {
        let cfg = GenConfig::type_a();
        assert_eq!(cfg.back_edge_percent, 0);
        assert_eq!(cfg.nb_retry_percent, 0);
        assert_eq!(cfg.nb_drop_percent, 0);
        assert_eq!(cfg.deadlock_percent, 0);
    }

    #[test]
    fn dimension_presets_enable_their_dimension() {
        assert!(GenConfig::axi().axi_percent > 50);
        assert!(GenConfig::calls().call_percent > 50);
        assert!(GenConfig::multirate().rate_percent > 50);
        assert!(GenConfig::multirate().surplus_percent > 0);
    }

    #[test]
    fn preset_lookup_covers_every_name() {
        for name in GenConfig::PRESET_NAMES {
            assert!(GenConfig::preset(name).is_some(), "preset {name} missing");
        }
        assert!(GenConfig::preset("bogus").is_none());
    }

    #[test]
    fn builder_setters() {
        let cfg = GenConfig::type_b()
            .with_tasks(3, 4)
            .with_tokens(8, 8)
            .with_deadlocks(10);
        assert_eq!(cfg.tasks, (3, 4));
        assert_eq!(cfg.tokens, (8, 8));
        assert_eq!(cfg.deadlock_percent, 10);
    }
}
