//! Generator configuration: how big, how connected and how adversarial the
//! random designs are, and which taxonomy class they must land in.

use omnisim_ir::DesignClass;

/// Parameters of the random design generator.
///
/// All probabilities are integer percentages (0–100). The per-class
/// constructors ([`GenConfig::type_a`], [`GenConfig::type_b`],
/// [`GenConfig::type_c`]) return configurations whose feature mix
/// *guarantees* the requested class by construction; [`GenConfig::mixed`]
/// leaves the class unconstrained.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenConfig {
    /// Required taxonomy class, or `None` for an unconstrained mix.
    pub target: Option<DesignClass>,
    /// Inclusive range of worker task counts (before retry sources are
    /// appended).
    pub tasks: (usize, usize),
    /// Maximum number of extra dataflow edges beyond the spanning in-edge
    /// every non-root task receives.
    pub extra_edges: usize,
    /// Inclusive range of FIFO depths.
    pub depth: (usize, usize),
    /// Inclusive range of the per-edge token count `n` (every pipeline edge
    /// carries exactly `n` tokens).
    pub tokens: (i64, i64),
    /// Probability of closing a request/response cycle over a forward edge
    /// (creates Type B cyclic dependencies).
    pub back_edge_percent: u32,
    /// Probability of adding a dedicated non-blocking retry producer
    /// (Fig. 4 Ex. 2 style; outcome-invisible, so Type B).
    pub nb_retry_percent: u32,
    /// Per-forward-edge probability of converting it to a lossy non-blocking
    /// edge whose drops are observable (Fig. 4 Ex. 4 style, Type C).
    pub nb_drop_percent: u32,
    /// Probability that a task uses a data-dependent `while`-style loop
    /// bound instead of a counted `for` loop.
    pub dynamic_loop_percent: u32,
    /// Probability that a source task streams from a random input array
    /// instead of computing values from its induction variable.
    pub array_source_percent: u32,
    /// Probability that a request/response cycle is deliberately mis-ordered
    /// into a guaranteed design deadlock (both simulators must agree on the
    /// diagnosis). Only meaningful where back edges can occur.
    pub deadlock_percent: u32,
}

impl GenConfig {
    /// Baseline knobs shared by every preset.
    fn base() -> Self {
        GenConfig {
            target: None,
            tasks: (2, 6),
            extra_edges: 3,
            depth: (1, 8),
            tokens: (2, 24),
            back_edge_percent: 0,
            nb_retry_percent: 0,
            nb_drop_percent: 0,
            dynamic_loop_percent: 30,
            array_source_percent: 40,
            deadlock_percent: 0,
        }
    }

    /// Blocking-only acyclic pipelines: always Type A.
    pub fn type_a() -> Self {
        GenConfig {
            target: Some(DesignClass::TypeA),
            ..Self::base()
        }
    }

    /// Cyclic request/response pairs and/or outcome-invisible non-blocking
    /// retry producers: always Type B.
    pub fn type_b() -> Self {
        GenConfig {
            target: Some(DesignClass::TypeB),
            back_edge_percent: 60,
            nb_retry_percent: 60,
            ..Self::base()
        }
    }

    /// At least one lossy non-blocking edge with observable drops (plus any
    /// Type B feature): always Type C.
    pub fn type_c() -> Self {
        GenConfig {
            target: Some(DesignClass::TypeC),
            back_edge_percent: 30,
            nb_retry_percent: 20,
            nb_drop_percent: 50,
            ..Self::base()
        }
    }

    /// Unconstrained mix of every feature; the class falls where it falls.
    pub fn mixed() -> Self {
        GenConfig {
            target: None,
            back_edge_percent: 25,
            nb_retry_percent: 20,
            nb_drop_percent: 25,
            ..Self::base()
        }
    }

    /// The targeting preset for a given class.
    pub fn for_class(class: DesignClass) -> Self {
        match class {
            DesignClass::TypeA => Self::type_a(),
            DesignClass::TypeB => Self::type_b(),
            DesignClass::TypeC => Self::type_c(),
        }
    }

    /// Returns this configuration with the task-count range replaced.
    pub fn with_tasks(mut self, min: usize, max: usize) -> Self {
        self.tasks = (min, max);
        self
    }

    /// Returns this configuration with the token-count range replaced.
    pub fn with_tokens(mut self, min: i64, max: i64) -> Self {
        self.tokens = (min, max);
        self
    }

    /// Returns this configuration with the deadlock probability replaced.
    pub fn with_deadlocks(mut self, percent: u32) -> Self {
        self.deadlock_percent = percent;
        self
    }
}

impl Default for GenConfig {
    fn default() -> Self {
        Self::mixed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_target_their_class() {
        assert_eq!(GenConfig::type_a().target, Some(DesignClass::TypeA));
        assert_eq!(GenConfig::type_b().target, Some(DesignClass::TypeB));
        assert_eq!(GenConfig::type_c().target, Some(DesignClass::TypeC));
        assert_eq!(GenConfig::mixed().target, None);
        for class in [DesignClass::TypeA, DesignClass::TypeB, DesignClass::TypeC] {
            assert_eq!(GenConfig::for_class(class).target, Some(class));
        }
    }

    #[test]
    fn type_a_has_no_nonblocking_or_cyclic_features() {
        let cfg = GenConfig::type_a();
        assert_eq!(cfg.back_edge_percent, 0);
        assert_eq!(cfg.nb_retry_percent, 0);
        assert_eq!(cfg.nb_drop_percent, 0);
        assert_eq!(cfg.deadlock_percent, 0);
    }

    #[test]
    fn builder_setters() {
        let cfg = GenConfig::type_b()
            .with_tasks(3, 4)
            .with_tokens(8, 8)
            .with_deadlocks(10);
        assert_eq!(cfg.tasks, (3, 4));
        assert_eq!(cfg.tokens, (8, 8));
        assert_eq!(cfg.deadlock_percent, 10);
    }
}
