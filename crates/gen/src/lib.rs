//! # omnisim-gen
//!
//! Seeded random design generation and cross-backend differential fuzzing
//! for the OmniSim reproduction.
//!
//! The workspace's evaluation inherits a fixed benchmark suite from the
//! paper; this crate removes that ceiling. A deterministic generator
//! ([`generate`]) maps `(GenConfig, seed)` onto well-formed dataflow designs
//! over the `omnisim-ir` builder — targeted per taxonomy class (Type A
//! acyclic/blocking, Type B cyclic/non-blocking-but-invisible, Type C
//! outcome-dependent), with three orthogonal timing dimensions riding on
//! top (AXI read/write bursts with outstanding transactions and
//! interleaving, `Op::Call` chains with optionally wrapped blocking reads,
//! and multi-rate edges with token surpluses) — and a differential oracle
//! ([`differential_check`]) turns the four-backend matrix plus the
//! compiled DSE engine into a self-testing machine:
//!
//! * `omnisim` and the cycle-stepped reference must agree **bit for bit**
//!   (outcome, outputs, total cycles),
//! * `lightning` must be exactly right on completed Type A runs (reporting
//!   its honest graph-cycle diagnosis on deadlocked ones) and reject
//!   Type B/C,
//! * `csim` must reproduce completed Type A runs and is book-kept (not
//!   asserted) on its documented failure modes,
//! * the compiled `SweepPlan`, the uncompiled incremental path and full
//!   re-simulation must give identical DSE answers on random depth vectors
//!   — including the `DepthInfeasible`/`DepthCyclic` verdicts multi-rate
//!   designs produce — and the `min_depths` inverse query's certificate
//!   must be tight against ground truth.
//!
//! Any failing seed reproduces deterministically and [`shrink`]s to a
//! minimal committable [`Blueprint`].
//!
//! ## Example
//!
//! ```
//! use omnisim_gen::{differential_check, generate, DiffConfig, GenConfig, Rng};
//! use omnisim_ir::DesignClass;
//!
//! let g = generate(&GenConfig::type_c(), 42);
//! assert_eq!(g.class, DesignClass::TypeC);
//!
//! let mut rng = Rng::new(42);
//! let report = differential_check(&g.design, &DiffConfig::default(), &mut rng);
//! assert!(report.passed(), "{:?}", report.failures);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod blueprint;
pub mod config;
pub mod generate;
pub mod oracle;
pub mod rng;
pub mod shrink;

pub use blueprint::{AxiPlan, AxiRole, Blueprint, CallPlan, EdgeKind, EdgePlan, TaskPlan};
pub use config::GenConfig;
pub use generate::{generate, Generated};
pub use omnisim_analyze::DeadlockVerdict;
pub use oracle::{
    check_seeded, differential_check, fuzz_seed, CsimAgreement, DiffConfig, DiffReport,
    DSE_RNG_SALT,
};
pub use rng::Rng;
pub use shrink::shrink;
