//! Prometheus text exposition: rendering and a line-grammar parser.

use crate::registry::MetricId;
use crate::snapshot::{MetricsSnapshot, SampleValue};
use std::fmt::Write as _;

/// Quantiles a histogram renders as a Prometheus summary. `0` and `1` are
/// exact (tracked min/max); the rest are bucketed estimates.
const QUANTILES: [(f64, &str); 5] = [
    (0.0, "0"),
    (0.5, "0.5"),
    (0.9, "0.9"),
    (0.99, "0.99"),
    (1.0, "1"),
];

pub(crate) fn to_prometheus(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let mut last_name: Option<&str> = None;
    for sample in &snapshot.samples {
        if last_name != Some(sample.id.name.as_str()) {
            let kind = match &sample.value {
                SampleValue::Counter(_) => "counter",
                SampleValue::Gauge(_) => "gauge",
                SampleValue::Histogram(_) => "summary",
            };
            let _ = writeln!(out, "# TYPE {} {kind}", sample.id.name);
            last_name = Some(sample.id.name.as_str());
        }
        match &sample.value {
            SampleValue::Counter(v) => {
                write_series(&mut out, &sample.id, &[], &v.to_string());
            }
            SampleValue::Gauge(v) => {
                write_series(&mut out, &sample.id, &[], &v.to_string());
            }
            SampleValue::Histogram(h) => {
                for (q, tag) in QUANTILES {
                    let value = match tag {
                        "0" => h.min,
                        "1" => h.max,
                        _ => h.quantile(q),
                    };
                    write_series(
                        &mut out,
                        &sample.id,
                        &[("quantile", tag)],
                        &value.to_string(),
                    );
                }
                let sum_id = suffixed(&sample.id, "_sum");
                write_series(&mut out, &sum_id, &[], &h.sum.to_string());
                let count_id = suffixed(&sample.id, "_count");
                write_series(&mut out, &count_id, &[], &h.count.to_string());
            }
        }
    }
    out
}

fn suffixed(id: &MetricId, suffix: &str) -> MetricId {
    MetricId {
        name: format!("{}{suffix}", id.name),
        labels: id.labels.clone(),
    }
}

fn write_series(out: &mut String, id: &MetricId, extra: &[(&str, &str)], value: &str) {
    out.push_str(&id.name);
    if !id.labels.is_empty() || !extra.is_empty() {
        out.push('{');
        let mut first = true;
        for (key, val) in id
            .labels
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_str()))
            .chain(extra.iter().copied())
        {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(key);
            out.push_str("=\"");
            for c in val.chars() {
                match c {
                    '\\' => out.push_str("\\\\"),
                    '"' => out.push_str("\\\""),
                    '\n' => out.push_str("\\n"),
                    c => out.push(c),
                }
            }
            out.push('"');
        }
        out.push('}');
    }
    out.push(' ');
    out.push_str(value);
    out.push('\n');
}

/// One parsed Prometheus sample line.
#[derive(Debug, Clone, PartialEq)]
pub struct PromSample {
    /// The metric name (with any `_sum`/`_count` suffix kept as-is).
    pub name: String,
    /// Label pairs in the order they appeared.
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: f64,
}

impl PromSample {
    /// The value of one label, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Parses (and thereby validates) Prometheus text exposition output:
/// `# ...` comment lines and `name[{k="v",...}] value` sample lines.
/// Returns every sample, or a description of the first malformed line.
pub fn parse_prometheus(text: &str) -> Result<Vec<PromSample>, String> {
    let mut samples = Vec::new();
    for (line_no, line) in text.lines().enumerate() {
        let line_no = line_no + 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        samples.push(parse_sample_line(line).map_err(|e| format!("line {line_no}: {e}"))?);
    }
    Ok(samples)
}

fn parse_sample_line(line: &str) -> Result<PromSample, String> {
    let (series, value) = line.rsplit_once(' ').ok_or("missing value separator")?;
    let value: f64 = value
        .parse()
        .map_err(|_| format!("invalid value '{value}'"))?;
    let (name, labels) = match series.split_once('{') {
        None => (series.trim(), Vec::new()),
        Some((name, rest)) => {
            let body = rest.strip_suffix('}').ok_or("unterminated label block")?;
            (name.trim(), parse_labels(body)?)
        }
    };
    if !valid_name(name) {
        return Err(format!("invalid metric name '{name}'"));
    }
    Ok(PromSample {
        name: name.to_owned(),
        labels,
        value,
    })
}

fn parse_labels(body: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut rest = body;
    while !rest.is_empty() {
        let eq = rest.find('=').ok_or("label missing '='")?;
        let key = rest[..eq].trim();
        if !valid_name(key) {
            return Err(format!("invalid label name '{key}'"));
        }
        rest = rest[eq + 1..]
            .strip_prefix('"')
            .ok_or("label value missing opening quote")?;
        let mut value = String::new();
        let mut chars = rest.char_indices();
        let mut end = None;
        while let Some((i, c)) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some((_, '\\')) => value.push('\\'),
                    Some((_, '"')) => value.push('"'),
                    Some((_, 'n')) => value.push('\n'),
                    _ => return Err("bad escape in label value".to_owned()),
                },
                '"' => {
                    end = Some(i);
                    break;
                }
                // Backslash, quote and newline must travel escaped (the
                // exporter escapes them); a raw control character here
                // means the producer did not, so reject the line instead
                // of smuggling it into the value.
                c if (c as u32) < 0x20 => {
                    return Err("unescaped control character in label value".to_owned());
                }
                c => value.push(c),
            }
        }
        let end = end.ok_or("unterminated label value")?;
        labels.push((key.to_owned(), value));
        rest = &rest[end + 1..];
        if let Some(tail) = rest.strip_prefix(',') {
            rest = tail;
        } else if !rest.is_empty() {
            return Err("expected ',' between labels".to_owned());
        }
    }
    Ok(labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MetricsRegistry;

    #[test]
    fn rendered_output_parses_back() {
        let registry = MetricsRegistry::new();
        registry.counter("requests_total").add(3);
        registry.counter_with("outcomes", &[("kind", "hit")]).add(2);
        registry
            .counter_with("outcomes", &[("kind", "miss")])
            .add(1);
        registry.gauge("in_flight").set(-2);
        let hist = registry.histogram_with("lat_nanos", &[("type", "run")]);
        for v in 1..=100u64 {
            hist.observe(v * 10);
        }
        let text = registry.snapshot().to_prometheus();

        // One TYPE line per metric name.
        assert_eq!(text.matches("# TYPE outcomes counter").count(), 1);
        assert!(text.contains("# TYPE lat_nanos summary"));
        assert!(text.contains("requests_total 3"));
        assert!(text.contains("outcomes{kind=\"hit\"} 2"));
        assert!(text.contains("in_flight -2"));

        let samples = parse_prometheus(&text).unwrap();
        assert_eq!(
            samples
                .iter()
                .filter(|s| s.name == "outcomes")
                .map(|s| (s.label("kind").unwrap().to_owned(), s.value))
                .collect::<Vec<_>>(),
            vec![("hit".to_owned(), 2.0), ("miss".to_owned(), 1.0)]
        );
        // Summary legs: 5 quantiles + sum + count, all carrying the
        // original labels.
        let lat: Vec<_> = samples
            .iter()
            .filter(|s| s.name.starts_with("lat_nanos"))
            .collect();
        assert_eq!(lat.len(), 7);
        assert!(lat.iter().all(|s| s.label("type") == Some("run")));
        let p50 = lat
            .iter()
            .find(|s| s.label("quantile") == Some("0.5"))
            .unwrap();
        assert!(
            p50.value >= 500.0 && p50.value <= 640.0,
            "p50={}",
            p50.value
        );
        assert_eq!(
            lat.iter()
                .find(|s| s.name == "lat_nanos_count")
                .unwrap()
                .value,
            100.0
        );
        assert_eq!(
            lat.iter()
                .find(|s| s.name == "lat_nanos_sum")
                .unwrap()
                .value,
            (1..=100u64).map(|v| v * 10).sum::<u64>() as f64
        );
    }

    #[test]
    fn label_values_with_tricky_characters_round_trip() {
        let registry = MetricsRegistry::new();
        registry.counter_with("c", &[("path", "a\\b\"c\nd")]).inc();
        let text = registry.snapshot().to_prometheus();
        // The exporter escapes backslash, quote and newline — pin the
        // exact rendered form, not just the round trip.
        assert!(
            text.contains(r#"c{path="a\\b\"c\nd"} 1"#),
            "unexpected rendering: {text}"
        );
        let samples = parse_prometheus(&text).unwrap();
        assert_eq!(samples[0].label("path"), Some("a\\b\"c\nd"));
        // Values containing spaces and label-grammar punctuation survive
        // too (the value separator is the last space on the line).
        let registry = MetricsRegistry::new();
        registry.counter_with("c", &[("q", "a b},= c")]).inc();
        let samples = parse_prometheus(&registry.snapshot().to_prometheus()).unwrap();
        assert_eq!(samples[0].label("q"), Some("a b},= c"));
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        for bad in [
            "no_value_here",
            "1bad_name 3",
            "name{unterminated 3",
            "name{k=\"v} 3",
            "name{k=v\"} 3",
            "name{k=\"v\"", // missing value
            "name 12x",
        ] {
            assert!(parse_prometheus(bad).is_err(), "accepted {bad:?}");
        }
        assert_eq!(parse_prometheus("# just a comment\n\n").unwrap(), vec![]);
    }

    #[test]
    fn parser_rejects_unescaped_label_values() {
        for (bad, why) in [
            ("c{k=\"a\tb\"} 1", "raw tab in value"),
            ("c{k=\"a\rb\"} 1", "raw carriage return in value"),
            ("c{k=\"a\\tb\"} 1", "undefined escape sequence"),
            ("c{k=\"a\"b\"} 1", "unescaped quote mid-value"),
            ("c{k=\"a\\\"} 1", "escape swallowing the closing quote"),
        ] {
            assert!(parse_prometheus(bad).is_err(), "accepted {why}: {bad:?}");
        }
        // A literal newline inside a value splits the exposition lines;
        // both halves must be rejected, never silently re-joined.
        assert!(parse_prometheus("c{k=\"a\nb\"} 1").is_err());
    }
}
