//! Frozen registry state: [`MetricsSnapshot`] and its JSON codec.

use crate::histogram::HistogramSnapshot;
use crate::json::{self, JsonValue};
use crate::registry::MetricId;

/// The frozen value of one metric series.
#[derive(Debug, Clone, PartialEq)]
pub enum SampleValue {
    /// A monotonic counter total.
    Counter(u64),
    /// A gauge level.
    Gauge(i64),
    /// A histogram state.
    Histogram(HistogramSnapshot),
}

impl SampleValue {
    fn kind(&self) -> &'static str {
        match self {
            SampleValue::Counter(_) => "counter",
            SampleValue::Gauge(_) => "gauge",
            SampleValue::Histogram(_) => "histogram",
        }
    }
}

/// One frozen series: its identity and value.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Which series this is.
    pub id: MetricId,
    /// Its frozen value.
    pub value: SampleValue,
}

/// An ordered, comparable freeze of a whole [`crate::MetricsRegistry`],
/// sorted by [`MetricId`]. Renders to Prometheus text or JSON and parses
/// back from the latter, so it can travel over the serving wire protocol.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// All series, in `MetricId` order.
    pub samples: Vec<Sample>,
}

impl MetricsSnapshot {
    /// Looks up one series by exact identity.
    pub fn get(&self, name: &str, labels: &[(&str, &str)]) -> Option<&SampleValue> {
        let id = MetricId::new(name, labels);
        self.samples
            .iter()
            .find(|sample| sample.id == id)
            .map(|sample| &sample.value)
    }

    /// The value of an unlabelled counter, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counter_with(name, &[])
    }

    /// The value of a labelled counter series, if present.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        match self.get(name, labels) {
            Some(SampleValue::Counter(v)) => Some(*v),
            _ => None,
        }
    }

    /// The value of an unlabelled gauge, if present.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauge_with(name, &[])
    }

    /// The value of a labelled gauge series, if present.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Option<i64> {
        match self.get(name, labels) {
            Some(SampleValue::Gauge(v)) => Some(*v),
            _ => None,
        }
    }

    /// The state of an unlabelled histogram, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histogram_with(name, &[])
    }

    /// The state of a labelled histogram series, if present.
    pub fn histogram_with(
        &self,
        name: &str,
        labels: &[(&str, &str)],
    ) -> Option<&HistogramSnapshot> {
        match self.get(name, labels) {
            Some(SampleValue::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// Sum of a counter across all of its label series.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.samples
            .iter()
            .filter(|sample| sample.id.name == name)
            .filter_map(|sample| match &sample.value {
                SampleValue::Counter(v) => Some(*v),
                _ => None,
            })
            .sum()
    }

    /// Just the counter series, as `(id, value)` pairs — the comparable
    /// core used to check remote scrapes against in-process registries
    /// (histograms contain wall-clock noise; counters are deterministic).
    pub fn counters(&self) -> Vec<(MetricId, u64)> {
        self.samples
            .iter()
            .filter_map(|sample| match &sample.value {
                SampleValue::Counter(v) => Some((sample.id.clone(), *v)),
                _ => None,
            })
            .collect()
    }

    /// Renders the Prometheus text exposition format. See
    /// [`crate::parse_prometheus`] for the grammar of the output.
    pub fn to_prometheus(&self) -> String {
        crate::export::to_prometheus(self)
    }

    /// Renders a compact JSON document that [`from_json`] parses back into
    /// an equal snapshot.
    ///
    /// [`from_json`]: MetricsSnapshot::from_json
    pub fn to_json(&self) -> String {
        let metrics: Vec<JsonValue> = self
            .samples
            .iter()
            .map(|sample| {
                let mut fields = vec![("name".to_owned(), JsonValue::Str(sample.id.name.clone()))];
                if !sample.id.labels.is_empty() {
                    fields.push((
                        "labels".to_owned(),
                        JsonValue::Array(
                            sample
                                .id
                                .labels
                                .iter()
                                .map(|(k, v)| {
                                    JsonValue::Array(vec![
                                        JsonValue::Str(k.clone()),
                                        JsonValue::Str(v.clone()),
                                    ])
                                })
                                .collect(),
                        ),
                    ));
                }
                fields.push((
                    "kind".to_owned(),
                    JsonValue::Str(sample.value.kind().to_owned()),
                ));
                match &sample.value {
                    SampleValue::Counter(v) => {
                        fields.push(("value".to_owned(), JsonValue::U64(*v)));
                    }
                    SampleValue::Gauge(v) => {
                        fields.push(("value".to_owned(), json_i64(*v)));
                    }
                    SampleValue::Histogram(h) => {
                        fields.push(("count".to_owned(), JsonValue::U64(h.count)));
                        fields.push(("sum".to_owned(), JsonValue::U64(h.sum)));
                        fields.push(("min".to_owned(), JsonValue::U64(h.min)));
                        fields.push(("max".to_owned(), JsonValue::U64(h.max)));
                        fields.push((
                            "buckets".to_owned(),
                            JsonValue::Array(
                                h.buckets
                                    .iter()
                                    .map(|&(upper, count)| {
                                        JsonValue::Array(vec![
                                            JsonValue::U64(upper),
                                            JsonValue::U64(count),
                                        ])
                                    })
                                    .collect(),
                            ),
                        ));
                    }
                }
                JsonValue::Object(fields)
            })
            .collect();
        JsonValue::Object(vec![("metrics".to_owned(), JsonValue::Array(metrics))]).render()
    }

    /// Parses a document produced by [`to_json`](MetricsSnapshot::to_json).
    pub fn from_json(input: &str) -> Result<MetricsSnapshot, String> {
        let doc = json::parse(input).map_err(|e| e.to_string())?;
        let metrics = doc
            .get("metrics")
            .and_then(JsonValue::as_array)
            .ok_or("missing 'metrics' array")?;
        let mut samples = Vec::with_capacity(metrics.len());
        for metric in metrics {
            samples.push(parse_sample(metric)?);
        }
        Ok(MetricsSnapshot { samples })
    }
}

fn json_i64(v: i64) -> JsonValue {
    match u64::try_from(v) {
        Ok(u) => JsonValue::U64(u),
        Err(_) => JsonValue::I64(v),
    }
}

fn parse_sample(metric: &JsonValue) -> Result<Sample, String> {
    let name = metric
        .get("name")
        .and_then(JsonValue::as_str)
        .ok_or("metric missing 'name'")?
        .to_owned();
    let mut labels = Vec::new();
    if let Some(pairs) = metric.get("labels").and_then(JsonValue::as_array) {
        for pair in pairs {
            let pair = pair.as_array().ok_or("label pair is not an array")?;
            match pair {
                [JsonValue::Str(k), JsonValue::Str(v)] => labels.push((k.clone(), v.clone())),
                _ => return Err("label pair is not two strings".to_owned()),
            }
        }
    }
    let kind = metric
        .get("kind")
        .and_then(JsonValue::as_str)
        .ok_or("metric missing 'kind'")?;
    let value = match kind {
        "counter" => SampleValue::Counter(
            metric
                .get("value")
                .and_then(JsonValue::as_u64)
                .ok_or("counter missing u64 'value'")?,
        ),
        "gauge" => SampleValue::Gauge(
            metric
                .get("value")
                .and_then(JsonValue::as_i64)
                .ok_or("gauge missing i64 'value'")?,
        ),
        "histogram" => {
            let field = |key: &str| {
                metric
                    .get(key)
                    .and_then(JsonValue::as_u64)
                    .ok_or_else(|| format!("histogram missing u64 '{key}'"))
            };
            let mut buckets = Vec::new();
            for pair in metric
                .get("buckets")
                .and_then(JsonValue::as_array)
                .ok_or("histogram missing 'buckets'")?
            {
                let pair = pair.as_array().ok_or("bucket is not an array")?;
                match pair {
                    [JsonValue::U64(upper), JsonValue::U64(count)] => {
                        buckets.push((*upper, *count));
                    }
                    _ => return Err("bucket is not two u64s".to_owned()),
                }
            }
            SampleValue::Histogram(HistogramSnapshot {
                count: field("count")?,
                sum: field("sum")?,
                min: field("min")?,
                max: field("max")?,
                buckets,
            })
        }
        other => return Err(format!("unknown metric kind '{other}'")),
    };
    let mut id = MetricId { name, labels };
    id.labels.sort();
    Ok(Sample { id, value })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MetricsRegistry;

    fn populated() -> MetricsSnapshot {
        let registry = MetricsRegistry::new();
        registry.counter("plain").add(7);
        registry
            .counter_with("labelled", &[("type", "run"), ("ok", "yes")])
            .add(u64::MAX);
        registry.gauge("level").set(-3);
        let hist = registry.histogram_with("lat", &[("phase", "exec")]);
        for v in [0, 1, 5, 1000, 123_456_789] {
            hist.observe(v);
        }
        registry.snapshot()
    }

    #[test]
    fn lookups_find_series() {
        let snapshot = populated();
        assert_eq!(snapshot.counter("plain"), Some(7));
        assert_eq!(
            snapshot.counter_with("labelled", &[("ok", "yes"), ("type", "run")]),
            Some(u64::MAX)
        );
        assert_eq!(snapshot.gauge("level"), Some(-3));
        let hist = snapshot
            .histogram_with("lat", &[("phase", "exec")])
            .unwrap();
        assert_eq!(hist.count, 5);
        assert_eq!(snapshot.counter("missing"), None);
        assert_eq!(snapshot.counter("level"), None, "kind mismatch is None");
        assert_eq!(snapshot.counter_total("labelled"), u64::MAX);
        assert_eq!(snapshot.counters().len(), 2);
    }

    #[test]
    fn json_round_trip_is_exact() {
        let snapshot = populated();
        let json = snapshot.to_json();
        let back = MetricsSnapshot::from_json(&json).unwrap();
        assert_eq!(back, snapshot);
        // And the empty snapshot round-trips too.
        let empty = MetricsSnapshot::default();
        assert_eq!(MetricsSnapshot::from_json(&empty.to_json()).unwrap(), empty);
    }

    #[test]
    fn from_json_rejects_malformed_documents() {
        for bad in [
            "{}",
            r#"{"metrics":[{"kind":"counter","value":1}]}"#,
            r#"{"metrics":[{"name":"x","kind":"counter","value":-1}]}"#,
            r#"{"metrics":[{"name":"x","kind":"widget","value":1}]}"#,
            r#"{"metrics":[{"name":"x","kind":"histogram","count":1}]}"#,
        ] {
            assert!(MetricsSnapshot::from_json(bad).is_err(), "accepted {bad}");
        }
    }
}
