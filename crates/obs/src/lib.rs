//! # omnisim-obs
//!
//! The observability substrate of the OmniSim serving stack: a
//! [`MetricsRegistry`] of sharded atomic counters, gauges and log-bucketed
//! latency histograms, lightweight [`Span`] timers that feed named
//! histograms, and two std-only exporters — the Prometheus text format and
//! a structured JSON document that parses back into the same
//! [`MetricsSnapshot`].
//!
//! The serving tier (`omnisim-serve`) spans four layers — backend
//! compile/run, the `SimService` registry, the `ArtifactStore` and the TCP
//! server — and steering its scale-out (pipelining, sharding, thousands of
//! clients) needs per-request latency distributions and saturation
//! metrics, not just lifetime counters. This crate is that substrate, with
//! the same constraint as the rest of the workspace: zero dependencies,
//! `std` only, no `unsafe`.
//!
//! ## Model
//!
//! * A metric is identified by a [`MetricId`]: a name plus a sorted list
//!   of `(label, value)` pairs, mirroring the Prometheus data model —
//!   `wire_request_nanos{type="run_batch"}` and
//!   `wire_request_nanos{type="register"}` are two series of one metric.
//! * [`MetricsRegistry::counter`] / [`gauge`](MetricsRegistry::gauge) /
//!   [`histogram`](MetricsRegistry::histogram) register (or re-fetch) a
//!   series and hand back a cheap clonable handle; hot paths hold handles
//!   and never touch the registry lock again.
//! * [`Counter`] increments are sharded across cache-line-padded atomics,
//!   so concurrent workers do not serialize on one cell; [`Histogram`]
//!   records into log-spaced buckets (4 sub-buckets per power of two,
//!   ≤ 25 % relative error) with exact count/sum/min/max.
//! * [`Histogram::span`] starts a [`Span`] that records its elapsed
//!   nanoseconds into the histogram when dropped.
//! * [`MetricsRegistry::snapshot`] freezes everything into a
//!   [`MetricsSnapshot`] — an ordinary, ordered, comparable value that
//!   renders [`to_prometheus`](MetricsSnapshot::to_prometheus) or
//!   [`to_json`](MetricsSnapshot::to_json) and travels over the serving
//!   tier's wire protocol.
//!
//! ```
//! use omnisim_obs::MetricsRegistry;
//!
//! let registry = MetricsRegistry::new();
//! let served = registry.counter("requests_total");
//! let latency = registry.histogram_with("request_nanos", &[("type", "run")]);
//!
//! served.inc();
//! {
//!     let _span = latency.span(); // records on drop
//! }
//! latency.observe(1_500);
//!
//! let snapshot = registry.snapshot();
//! assert_eq!(snapshot.counter("requests_total"), Some(1));
//! let text = snapshot.to_prometheus();
//! assert!(text.contains("requests_total 1"));
//! let json = snapshot.to_json();
//! assert_eq!(omnisim_obs::MetricsSnapshot::from_json(&json).unwrap(), snapshot);
//! ```
//!
//! A registry can also be created [`disabled`](MetricsRegistry::disabled):
//! handles still exist, but every record is a no-op — the hook the
//! `api_throughput` bench uses to pin the instrumentation overhead.
//!
//! ## Tracing
//!
//! Metrics aggregate; the [`trace`] module explains individual requests:
//! a [`Tracer`] hands out [`ActiveSpan`]s forming parent-linked span
//! trees ([`TraceId`]/[`SpanId`]), records finished spans into a bounded
//! ring-buffer flight recorder, and applies head+tail sampling
//! (probabilistic by trace ID, always-keep for slow local roots) to
//! decide which traces survive into [`Tracer::recent_traces`]. A
//! [`TraceContext`] propagates the trace across threads and wire hops so
//! a remote client's span and the server's decode/resolve/run spans join
//! one causally-ordered tree. Kept traces export as Chrome trace-event
//! JSON ([`to_chrome_trace`], loadable in Perfetto) or JSON-Lines
//! ([`to_jsonl`]), each with a parse-back validator in the same style as
//! [`parse_prometheus`]. [`Tracer::disabled`] mirrors the disabled
//! registry for overhead baselines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod export;
mod histogram;
pub mod json;
mod registry;
mod snapshot;
mod span;
pub mod trace;
mod trace_export;

pub use export::{parse_prometheus, PromSample};
pub use histogram::{bucket_bounds, bucket_index, Histogram, HistogramSnapshot, BUCKETS};
pub use registry::{Counter, Gauge, MetricId, MetricsRegistry};
pub use snapshot::{MetricsSnapshot, Sample, SampleValue};
pub use span::Span;
pub use trace::{
    ActiveSpan, AttrValue, ContextGuard, IntoAttr, LocalContext, SpanId, SpanRecord, Trace,
    TraceConfig, TraceContext, TraceId, Tracer, TracerStats,
};
pub use trace_export::{parse_chrome_trace, parse_jsonl, to_chrome_trace, to_jsonl};
