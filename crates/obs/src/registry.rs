//! The metric registry and the counter/gauge handle types.

use crate::histogram::{Histogram, HistogramCells};
use crate::snapshot::{MetricsSnapshot, Sample, SampleValue};
use std::cell::Cell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};

/// Identity of one metric series: a name plus sorted `(label, value)`
/// pairs, mirroring the Prometheus data model.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MetricId {
    /// The metric name (Prometheus-safe: `[a-zA-Z_][a-zA-Z0-9_]*`).
    pub name: String,
    /// Label pairs, sorted by label name.
    pub labels: Vec<(String, String)>,
}

impl MetricId {
    /// Builds an id, sorting the labels into canonical order.
    pub fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
            .collect();
        labels.sort();
        MetricId {
            name: name.to_owned(),
            labels,
        }
    }
}

impl std::fmt::Display for MetricId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)?;
        if !self.labels.is_empty() {
            f.write_str("{")?;
            for (i, (key, value)) in self.labels.iter().enumerate() {
                if i > 0 {
                    f.write_str(",")?;
                }
                write!(f, "{key}=\"{value}\"")?;
            }
            f.write_str("}")?;
        }
        Ok(())
    }
}

/// Counter shards: cache-line padded so concurrent workers increment
/// different lines instead of bouncing one.
const SHARDS: usize = 16;

#[repr(align(64))]
#[derive(Debug)]
struct PaddedU64(AtomicU64);

fn shard_index() -> usize {
    static NEXT_THREAD: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SHARD: Cell<usize> = const { Cell::new(usize::MAX) };
    }
    SHARD.with(|slot| {
        let mut index = slot.get();
        if index == usize::MAX {
            index = NEXT_THREAD.fetch_add(1, Ordering::Relaxed) % SHARDS;
            slot.set(index);
        }
        index
    })
}

#[derive(Debug)]
pub(crate) struct CounterCells {
    shards: Vec<PaddedU64>, // SHARDS entries
}

impl CounterCells {
    fn new() -> Self {
        CounterCells {
            shards: (0..SHARDS).map(|_| PaddedU64(AtomicU64::new(0))).collect(),
        }
    }

    fn add(&self, delta: u64) {
        self.shards[shard_index()]
            .0
            .fetch_add(delta, Ordering::Relaxed);
    }

    fn value(&self) -> u64 {
        self.shards
            .iter()
            .map(|shard| shard.0.load(Ordering::Relaxed))
            .sum()
    }
}

/// A monotonically increasing counter handle. Cheap to clone; increments
/// are sharded relaxed atomics. A handle from a disabled registry (or a
/// default-constructed one) is a no-op.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    cells: Option<Arc<CounterCells>>,
}

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `delta`.
    pub fn add(&self, delta: u64) {
        if let Some(cells) = &self.cells {
            cells.add(delta);
        }
    }

    /// The current total across all shards.
    pub fn value(&self) -> u64 {
        self.cells.as_ref().map_or(0, |cells| cells.value())
    }
}

/// A gauge handle: a signed value that can move both ways (in-flight
/// requests, resident designs). No-op when disabled.
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    cell: Option<Arc<AtomicI64>>,
}

impl Gauge {
    /// Sets the value.
    pub fn set(&self, value: i64) {
        if let Some(cell) = &self.cell {
            cell.store(value, Ordering::Relaxed);
        }
    }

    /// Adds `delta`.
    pub fn add(&self, delta: i64) {
        if let Some(cell) = &self.cell {
            cell.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Subtracts `delta`.
    pub fn sub(&self, delta: i64) {
        self.add(-delta);
    }

    /// The current value.
    pub fn value(&self) -> i64 {
        self.cell
            .as_ref()
            .map_or(0, |cell| cell.load(Ordering::Relaxed))
    }
}

#[derive(Debug)]
enum MetricEntry {
    Counter(Arc<CounterCells>),
    Gauge(Arc<AtomicI64>),
    Histogram(Arc<HistogramCells>),
}

impl MetricEntry {
    fn kind(&self) -> &'static str {
        match self {
            MetricEntry::Counter(_) => "counter",
            MetricEntry::Gauge(_) => "gauge",
            MetricEntry::Histogram(_) => "histogram",
        }
    }
}

/// A registry of named metric series. See the [crate docs](crate) for the
/// model; the short version: register handles once, record through them on
/// the hot path, [`snapshot`](MetricsRegistry::snapshot) to export.
#[derive(Debug)]
pub struct MetricsRegistry {
    enabled: bool,
    metrics: RwLock<BTreeMap<MetricId, MetricEntry>>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry::new()
    }
}

impl MetricsRegistry {
    /// A live registry.
    pub fn new() -> Self {
        MetricsRegistry {
            enabled: true,
            metrics: RwLock::new(BTreeMap::new()),
        }
    }

    /// A disabled registry: handles are handed out but every record is a
    /// no-op and snapshots are empty. Used to measure (and bound) the
    /// instrumentation overhead.
    pub fn disabled() -> Self {
        MetricsRegistry {
            enabled: false,
            metrics: RwLock::new(BTreeMap::new()),
        }
    }

    /// True if this registry records anything at all.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Registers (or re-fetches) an unlabelled counter.
    pub fn counter(&self, name: &str) -> Counter {
        self.counter_with(name, &[])
    }

    /// Registers (or re-fetches) a labelled counter series.
    ///
    /// # Panics
    ///
    /// Panics if the same id is already registered as a different kind.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        if !self.enabled {
            return Counter::default();
        }
        let id = MetricId::new(name, labels);
        let mut metrics = self.metrics.write().expect("metrics registry poisoned");
        let entry = metrics
            .entry(id.clone())
            .or_insert_with(|| MetricEntry::Counter(Arc::new(CounterCells::new())));
        match entry {
            MetricEntry::Counter(cells) => Counter {
                cells: Some(Arc::clone(cells)),
            },
            other => panic!("metric {id} already registered as a {}", other.kind()),
        }
    }

    /// Registers (or re-fetches) an unlabelled gauge.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.gauge_with(name, &[])
    }

    /// Registers (or re-fetches) a labelled gauge series.
    ///
    /// # Panics
    ///
    /// Panics if the same id is already registered as a different kind.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        if !self.enabled {
            return Gauge::default();
        }
        let id = MetricId::new(name, labels);
        let mut metrics = self.metrics.write().expect("metrics registry poisoned");
        let entry = metrics
            .entry(id.clone())
            .or_insert_with(|| MetricEntry::Gauge(Arc::new(AtomicI64::new(0))));
        match entry {
            MetricEntry::Gauge(cell) => Gauge {
                cell: Some(Arc::clone(cell)),
            },
            other => panic!("metric {id} already registered as a {}", other.kind()),
        }
    }

    /// Registers (or re-fetches) an unlabelled histogram.
    pub fn histogram(&self, name: &str) -> Histogram {
        self.histogram_with(name, &[])
    }

    /// Registers (or re-fetches) a labelled histogram series.
    ///
    /// # Panics
    ///
    /// Panics if the same id is already registered as a different kind.
    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        if !self.enabled {
            return Histogram::default();
        }
        let id = MetricId::new(name, labels);
        let mut metrics = self.metrics.write().expect("metrics registry poisoned");
        let entry = metrics
            .entry(id.clone())
            .or_insert_with(|| MetricEntry::Histogram(Arc::new(HistogramCells::new())));
        match entry {
            MetricEntry::Histogram(cells) => Histogram {
                cells: Some(Arc::clone(cells)),
            },
            other => panic!("metric {id} already registered as a {}", other.kind()),
        }
    }

    /// Freezes every registered series into an ordered, comparable
    /// snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let metrics = self.metrics.read().expect("metrics registry poisoned");
        let samples = metrics
            .iter()
            .map(|(id, entry)| Sample {
                id: id.clone(),
                value: match entry {
                    MetricEntry::Counter(cells) => SampleValue::Counter(cells.value()),
                    MetricEntry::Gauge(cell) => SampleValue::Gauge(cell.load(Ordering::Relaxed)),
                    MetricEntry::Histogram(cells) => SampleValue::Histogram(
                        Histogram {
                            cells: Some(Arc::clone(cells)),
                        }
                        .snapshot(),
                    ),
                },
            })
            .collect();
        MetricsSnapshot { samples }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn handles_share_series_and_labels_distinguish_them() {
        let registry = MetricsRegistry::new();
        let a = registry.counter_with("reqs", &[("type", "run")]);
        let b = registry.counter_with("reqs", &[("type", "run")]);
        let other = registry.counter_with("reqs", &[("type", "stats")]);
        a.inc();
        b.add(2);
        other.inc();
        assert_eq!(a.value(), 3, "same id shares one series");
        assert_eq!(other.value(), 1);
        // Label order does not matter.
        let c = registry.counter_with("multi", &[("b", "2"), ("a", "1")]);
        let d = registry.counter_with("multi", &[("a", "1"), ("b", "2")]);
        c.inc();
        assert_eq!(d.value(), 1);
    }

    #[test]
    fn gauges_move_both_ways() {
        let registry = MetricsRegistry::new();
        let gauge = registry.gauge("in_flight");
        gauge.add(5);
        gauge.sub(2);
        assert_eq!(gauge.value(), 3);
        gauge.set(-7);
        assert_eq!(gauge.value(), -7);
    }

    #[test]
    #[should_panic(expected = "already registered as a counter")]
    fn kind_mismatch_panics() {
        let registry = MetricsRegistry::new();
        registry.counter("x");
        registry.histogram("x");
    }

    #[test]
    fn disabled_registry_is_inert() {
        let registry = MetricsRegistry::disabled();
        assert!(!registry.is_enabled());
        let counter = registry.counter("c");
        let gauge = registry.gauge("g");
        let histogram = registry.histogram("h");
        counter.inc();
        gauge.set(5);
        histogram.observe(9);
        assert_eq!(counter.value(), 0);
        assert_eq!(gauge.value(), 0);
        assert_eq!(histogram.count(), 0);
        assert!(registry.snapshot().samples.is_empty());
    }

    #[test]
    fn concurrent_counters_and_histograms_lose_nothing() {
        let registry = Arc::new(MetricsRegistry::new());
        let threads = 8;
        let per_thread = 10_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let registry = Arc::clone(&registry);
                thread::spawn(move || {
                    let counter = registry.counter("hits");
                    let histogram = registry.histogram("lat");
                    for i in 0..per_thread {
                        counter.inc();
                        histogram.observe(t * per_thread + i);
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        let expected = threads * per_thread;
        assert_eq!(registry.counter("hits").value(), expected);
        let snapshot = registry.histogram("lat").snapshot();
        assert_eq!(snapshot.count, expected);
        // Bucket counts are individually exact, so they sum to the total.
        assert_eq!(
            snapshot.buckets.iter().map(|&(_, c)| c).sum::<u64>(),
            expected
        );
        assert_eq!(snapshot.sum, (0..expected).sum::<u64>());
        assert_eq!((snapshot.min, snapshot.max), (0, expected - 1));
    }
}
