//! Distributed request tracing: span trees, a ring-buffer flight
//! recorder, and head+tail sampling.
//!
//! Aggregate metrics (the rest of this crate) answer "how fast on
//! average"; traces answer "why was *this* run slow". A [`Tracer`] hands
//! out [`ActiveSpan`]s that time a region of one request, link to their
//! parent (implicitly via a thread-local current-span cell, or explicitly
//! via a wire-carried [`TraceContext`]) and carry `key=value` attributes
//! such as `outcome=warm` or `refinalizes=3`. Finished spans land in two
//! places:
//!
//! * the **flight recorder** — a bounded ring buffer of the last N
//!   finished spans, always on, evicting the oldest whole trace at a
//!   time and counting every evicted span in a monotone dropped-spans
//!   counter; and
//! * a **per-trace pending buffer** that assembles each local root's
//!   subtree until the root finishes, at which point the *sampling
//!   policy* decides the trace's fate: kept if its trace ID was
//!   head-sampled (probabilistic, decided once at trace origin and
//!   propagated in the context) **or** if the local root ran longer than
//!   the configured slow threshold (tail-based always-keep). Kept traces
//!   sit in a bounded recent-traces buffer ([`Tracer::recent_traces`])
//!   and optionally flow to a keep hook (e.g. persisting slow traces to
//!   disk).
//!
//! Everything is `std`-only, `unsafe`-free and cheap enough to leave on:
//! span creation is two `Instant` reads, an ID mix and a thread-local
//! store; a [`Tracer::disabled`] tracer reduces every operation to a
//! no-op for overhead baselines, mirroring
//! [`MetricsRegistry::disabled`](crate::MetricsRegistry::disabled).
//!
//! ```
//! use omnisim_obs::{TraceConfig, Tracer};
//!
//! let tracer = Tracer::new(TraceConfig::default());
//! {
//!     let mut request = tracer.span("request");
//!     request.set_attr("outcome", "warm");
//!     let _child = tracer.span("decode"); // nests under `request`
//! } // spans record on drop, children first
//! let traces = tracer.recent_traces();
//! assert_eq!(traces.len(), 1);
//! assert_eq!(traces[0].spans.len(), 2);
//! ```

use crate::registry::{Counter, MetricsRegistry};
use std::borrow::Cow;
use std::cell::{Cell, RefCell};
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::{Duration, Instant, SystemTime};

/// Identifier of one end-to-end trace: all spans of one request share it,
/// across threads and processes. Never zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(u64);

impl TraceId {
    /// The raw 64-bit value (for wire transport and export).
    pub fn raw(&self) -> u64 {
        self.0
    }

    /// Reconstructs a trace ID from its raw value (e.g. received over the
    /// wire). Returns `None` for the reserved zero value.
    pub fn from_raw(raw: u64) -> Option<TraceId> {
        (raw != 0).then_some(TraceId(raw))
    }
}

/// Identifier of one span within a trace. Never zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId(u64);

impl SpanId {
    /// The raw 64-bit value (for wire transport and export).
    pub fn raw(&self) -> u64 {
        self.0
    }

    /// Reconstructs a span ID from its raw value. Returns `None` for the
    /// reserved zero value.
    pub fn from_raw(raw: u64) -> Option<SpanId> {
        (raw != 0).then_some(SpanId(raw))
    }
}

/// The propagatable identity of an in-progress span: enough for a remote
/// (or cross-thread) child to join the same trace under the right parent.
/// This is what wire protocols carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// The trace every descendant span joins.
    pub trace_id: TraceId,
    /// The span that new children attach under.
    pub parent_span: SpanId,
    /// The head-sampling decision made at trace origin; descendants
    /// inherit it instead of re-rolling, so a trace is kept or discarded
    /// as a unit.
    pub sampled: bool,
}

/// One finished span: a named, timed region of one request, with its
/// position in the span tree and its `key=value` attributes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// The trace this span belongs to.
    pub trace_id: TraceId,
    /// This span's identity.
    pub span_id: SpanId,
    /// The parent span, if any (`None` for trace roots). A parent may
    /// live in another process — the link still names it.
    pub parent: Option<SpanId>,
    /// What the span measured (e.g. `wire_request`, `backend_run`).
    /// Borrowed for the common `&'static str` case so naming a span does
    /// not allocate.
    pub name: Cow<'static, str>,
    /// Start time, in nanoseconds since the UNIX epoch (monotonic within
    /// one tracer: derived from a fixed epoch plus `Instant` elapsed).
    pub start_nanos: u64,
    /// End time, same clock as `start_nanos`; always `>= start_nanos`.
    pub end_nanos: u64,
    /// Small per-thread index of the worker that ran the span (the `tid`
    /// lane in Chrome trace exports).
    pub tid: u64,
    /// `key=value` attributes in insertion order (e.g. `outcome=warm`,
    /// `refinalizes=3`). Static keys stay borrowed and numeric values
    /// stay numeric ([`AttrValue`]), so the hot-path spans of a serving
    /// stack attach attributes without allocating or formatting.
    pub attrs: Vec<(Cow<'static, str>, AttrValue)>,
}

/// A span attribute value, kept *typed* until export: integers and
/// booleans are stored raw — no decimal formatting, no allocation — on
/// the span hot path, and rendered only when a trace is exported or
/// inspected. Non-negative integers (from any unsigned or signed input)
/// normalize to [`Uint`](AttrValue::Uint), so equality is value-based and
/// a parsed-back export compares equal to what was recorded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttrValue {
    /// Text; borrowed for the common `&'static str` case.
    Text(Cow<'static, str>),
    /// A non-negative integer.
    Uint(u64),
    /// A negative integer.
    Int(i64),
    /// A boolean.
    Bool(bool),
}

impl AttrValue {
    /// The text, for [`Text`](AttrValue::Text) attributes.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            AttrValue::Text(text) => Some(text.as_ref()),
            _ => None,
        }
    }

    /// The value, for [`Uint`](AttrValue::Uint) attributes.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            AttrValue::Uint(value) => Some(*value),
            _ => None,
        }
    }
}

impl fmt::Display for AttrValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrValue::Text(text) => f.write_str(text),
            AttrValue::Uint(value) => write!(f, "{value}"),
            AttrValue::Int(value) => write!(f, "{value}"),
            AttrValue::Bool(value) => write!(f, "{value}"),
        }
    }
}

/// Text attributes compare to plain strings, so assertions like
/// `span.attr("outcome") == Some("ok")` read naturally.
impl PartialEq<str> for AttrValue {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for AttrValue {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl From<&'static str> for AttrValue {
    fn from(text: &'static str) -> AttrValue {
        AttrValue::Text(Cow::Borrowed(text))
    }
}

impl From<String> for AttrValue {
    fn from(text: String) -> AttrValue {
        AttrValue::Text(Cow::Owned(text))
    }
}

/// A value a span attribute can be built from. String inputs become
/// [`AttrValue::Text`] (borrowed for `&'static str`); integer and boolean
/// inputs stay numeric ([`AttrValue::Uint`] / [`AttrValue::Int`] /
/// [`AttrValue::Bool`]) — attaching a counter to a span costs a store,
/// not a formatting pass. Floats (rare in practice) format eagerly to
/// text so attribute values stay totally comparable.
pub trait IntoAttr {
    /// The attribute value.
    fn into_attr(self) -> AttrValue;
}

impl IntoAttr for AttrValue {
    fn into_attr(self) -> AttrValue {
        self
    }
}

impl IntoAttr for &'static str {
    fn into_attr(self) -> AttrValue {
        AttrValue::Text(Cow::Borrowed(self))
    }
}

impl IntoAttr for String {
    fn into_attr(self) -> AttrValue {
        AttrValue::Text(Cow::Owned(self))
    }
}

impl IntoAttr for Cow<'static, str> {
    fn into_attr(self) -> AttrValue {
        AttrValue::Text(self)
    }
}

impl IntoAttr for bool {
    fn into_attr(self) -> AttrValue {
        AttrValue::Bool(self)
    }
}

macro_rules! uint_into_attr {
    ($($t:ty),* $(,)?) => {
        $(impl IntoAttr for $t {
            fn into_attr(self) -> AttrValue {
                AttrValue::Uint(self as u64)
            }
        })*
    };
}

uint_into_attr!(u8, u16, u32, u64, usize);

macro_rules! int_into_attr {
    ($($t:ty),* $(,)?) => {
        $(impl IntoAttr for $t {
            fn into_attr(self) -> AttrValue {
                match u64::try_from(self) {
                    Ok(value) => AttrValue::Uint(value),
                    Err(_) => AttrValue::Int(self as i64),
                }
            }
        })*
    };
}

int_into_attr!(i8, i16, i32, i64, isize);

macro_rules! wide_into_attr {
    ($($t:ty),* $(,)?) => {
        $(impl IntoAttr for $t {
            fn into_attr(self) -> AttrValue {
                match (u64::try_from(self), i64::try_from(self)) {
                    (Ok(value), _) => AttrValue::Uint(value),
                    (_, Ok(value)) => AttrValue::Int(value),
                    // Out of 64-bit range: keep the exact decimal as text.
                    _ => AttrValue::Text(Cow::Owned(self.to_string())),
                }
            }
        })*
    };
}

wide_into_attr!(u128, i128);

macro_rules! float_into_attr {
    ($($t:ty),* $(,)?) => {
        $(impl IntoAttr for $t {
            fn into_attr(self) -> AttrValue {
                AttrValue::Text(Cow::Owned(self.to_string()))
            }
        })*
    };
}

float_into_attr!(f32, f64);

impl SpanRecord {
    /// The span's duration in nanoseconds.
    pub fn duration_nanos(&self) -> u64 {
        self.end_nanos.saturating_sub(self.start_nanos)
    }

    /// The first attribute with this key, if present.
    pub fn attr(&self, key: &str) -> Option<&AttrValue> {
        self.attrs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

/// A kept trace: every retained span of one trace ID, ordered by start
/// time. Spans recorded by different local roots (e.g. a register and a
/// run_batch request of the same client session) are merged by
/// [`Tracer::recent_traces`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// The shared trace ID.
    pub trace_id: TraceId,
    /// All retained spans, ordered by `(start_nanos, span_id)`.
    pub spans: Vec<SpanRecord>,
}

impl Trace {
    /// Groups a flat span list into traces, ordered by first appearance;
    /// spans within each trace are sorted by `(start_nanos, span_id)`.
    pub fn group(spans: Vec<SpanRecord>) -> Vec<Trace> {
        let mut order: Vec<TraceId> = Vec::new();
        let mut by_trace: HashMap<TraceId, Vec<SpanRecord>> = HashMap::new();
        for span in spans {
            let bucket = by_trace.entry(span.trace_id).or_default();
            if bucket.is_empty() {
                order.push(span.trace_id);
            }
            bucket.push(span);
        }
        order
            .into_iter()
            .map(|trace_id| {
                let mut spans = by_trace.remove(&trace_id).unwrap_or_default();
                spans.sort_by_key(|span| (span.start_nanos, span.span_id));
                Trace { trace_id, spans }
            })
            .collect()
    }

    /// The first span with this name, if present.
    pub fn find(&self, name: &str) -> Option<&SpanRecord> {
        self.spans.iter().find(|span| span.name == name)
    }

    /// The span with this ID, if present.
    pub fn span(&self, id: SpanId) -> Option<&SpanRecord> {
        self.spans.iter().find(|span| span.span_id == id)
    }
}

/// Capacity and sampling knobs of a [`Tracer`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceConfig {
    /// Flight-recorder capacity in spans: once exceeded, the oldest
    /// whole traces are evicted (never splitting a trace, so a retained
    /// span's parent is always retained with it) and every evicted span
    /// is counted as dropped.
    pub ring_capacity: usize,
    /// How many kept trace fragments the recent-traces buffer retains.
    pub keep_capacity: usize,
    /// Bound on the spans buffered for one local root while it is in
    /// flight; excess spans are dropped (and counted), not buffered.
    pub max_spans_per_trace: usize,
    /// Bound on concurrently-assembling local roots; spans of untracked
    /// roots are dropped (and counted) instead of growing the buffer.
    pub max_pending_traces: usize,
    /// Probabilistic head-sampling ratio in `[0, 1]`, decided once per
    /// trace from a hash of its ID: `1.0` keeps every trace, `0.0` keeps
    /// none (except tail-sampled slow ones).
    pub sample_ratio: f64,
    /// Tail-based always-keep threshold: a trace whose local root ran at
    /// least this long is kept even if head sampling passed on it.
    pub slow_threshold: Duration,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            // Sized to stay cache-resident: the ring's retained spans are
            // live heap churning alongside the traced workload, and a few
            // hundred spans is already a deep incident snapshot. Raise it
            // for post-mortem depth, at cache-pressure cost.
            ring_capacity: 256,
            keep_capacity: 64,
            max_spans_per_trace: 512,
            max_pending_traces: 1024,
            sample_ratio: 1.0,
            slow_threshold: Duration::from_millis(100),
        }
    }
}

/// Point-in-time counters of a [`Tracer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TracerStats {
    /// Spans finished (and offered to the flight recorder).
    pub spans_finished: u64,
    /// Spans dropped by the flight recorder's ring capacity — the
    /// `dropped_spans_total` counter. Monotone.
    pub dropped_spans: u64,
    /// Spans dropped by the pending-buffer bounds before their trace's
    /// fate was decided.
    pub pending_dropped: u64,
    /// Traces kept (head-sampled or over the slow threshold).
    pub traces_kept: u64,
    /// Traces discarded by the sampling policy.
    pub traces_discarded: u64,
}

/// The tracer's counter handles in a shared [`MetricsRegistry`].
#[derive(Debug)]
struct BoundCounters {
    spans_finished: Counter,
    dropped_spans: Counter,
    traces_kept: Counter,
    traces_discarded: Counter,
}

/// The identity of the current span on this thread, plus what a new child
/// needs to inherit: the local root it buffers under and the sampling
/// decision. Propagated across threads via [`Tracer::local_context`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LocalContext {
    trace_id: TraceId,
    span_id: SpanId,
    local_root: SpanId,
    sampled: bool,
}

impl LocalContext {
    /// The wire-propagatable projection of this context.
    pub fn to_context(self) -> TraceContext {
        TraceContext {
            trace_id: self.trace_id,
            parent_span: self.span_id,
            sampled: self.sampled,
        }
    }
}

/// Pending map keyed by span IDs, which are already well-mixed 64-bit
/// values ([`fresh_id`] finishes with SplitMix64) — a pass-through hasher
/// keeps the span hot path off SipHash.
#[derive(Default)]
struct SpanIdHasher(u64);

impl std::hash::Hasher for SpanIdHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.0 = (self.0 << 8) | u64::from(byte);
        }
    }

    fn write_u64(&mut self, n: u64) {
        self.0 = n;
    }
}

type PendingMap = HashMap<SpanId, Vec<SpanRecord>, std::hash::BuildHasherDefault<SpanIdHasher>>;

/// One decided local-root fragment, frozen into a single shared
/// allocation. The ring and the kept buffer both reference the same
/// frozen spans, so retaining a trace twice is a refcount bump.
type Fragment = Arc<[SpanRecord]>;

/// The tracer's shared trace-assembly state, under one mutex: a finishing
/// local root settles its whole trace — cross-thread merge, flight
/// recorder publish, keep decision — in one critical section.
#[derive(Default)]
struct Buffers {
    /// Fragments of local roots with cross-thread children (or whose root
    /// left its origin thread), keyed by local root.
    pending: PendingMap,
    /// Kept traces, oldest first, bounded by `keep_capacity`.
    kept: VecDeque<(TraceId, Fragment)>,
    /// Flight recorder: decided fragments in decide order, evicted a
    /// whole fragment at a time once `ring_spans` exceeds the configured
    /// span capacity.
    ring: VecDeque<Fragment>,
    /// Total spans across `ring`.
    ring_spans: usize,
}

/// The spans a thread buffers for local roots that are still open *on
/// this thread*. The common case — a request handled start-to-finish on
/// one thread — assembles its fragment here without touching any shared
/// lock; only cross-thread children (via [`Tracer::attach`]) and the
/// final keep decision go through the tracer's shared buffers.
#[derive(Default)]
struct LocalFragments {
    /// Local roots started (and not yet finished) on this thread, with a
    /// running count of buffered children for the per-trace bound.
    open_roots: Vec<(SpanId, usize)>,
    /// Finished children awaiting their root, tagged by local root.
    spans: Vec<(SpanId, SpanRecord)>,
}

/// Cross-thread `ActiveSpan` moves aside, nesting depth bounds this; the
/// cap just keeps a pathological caller from growing the scans unbounded.
const MAX_OPEN_ROOTS: usize = 64;

thread_local! {
    static CURRENT: Cell<Option<LocalContext>> = const { Cell::new(None) };
    static THREAD_INDEX: Cell<u64> = const { Cell::new(0) };
    static FRAGMENTS: RefCell<LocalFragments> = RefCell::new(LocalFragments::default());
}

/// Small, stable per-thread index used as the `tid` lane of exported
/// spans. Assigned on first use, never reused within a process.
fn current_tid() -> u64 {
    THREAD_INDEX.with(|cell| {
        if cell.get() == 0 {
            static NEXT: AtomicU64 = AtomicU64::new(1);
            cell.set(NEXT.fetch_add(1, Ordering::Relaxed));
        }
        cell.get()
    })
}

/// SplitMix64 finalizer: a cheap, well-distributed 64-bit mix.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A fresh, process-unique, non-zero 64-bit ID: a per-process random-ish
/// seed (clock and pid) mixed with a monotone counter.
fn fresh_id() -> u64 {
    static SEED: OnceLock<u64> = OnceLock::new();
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let seed = *SEED.get_or_init(|| {
        let nanos = SystemTime::now()
            .duration_since(SystemTime::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        mix64(nanos ^ ((std::process::id() as u64) << 32))
    });
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let id = mix64(seed ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    if id == 0 {
        1
    } else {
        id
    }
}

/// The head-sampling decision for a trace: a hash of the trace ID against
/// the configured ratio, so every participant of a trace — any process,
/// any thread — derives the same verdict without coordination.
fn head_sampled(trace_id: TraceId, ratio: f64) -> bool {
    if ratio >= 1.0 {
        return true;
    }
    if ratio <= 0.0 {
        return false;
    }
    (mix64(trace_id.raw()) as f64) < ratio * (u64::MAX as f64)
}

/// The shared handler invoked for every kept trace.
type KeepHook = Arc<dyn Fn(&Trace) + Send + Sync>;

struct Inner {
    enabled: bool,
    config: TraceConfig,
    epoch_instant: Instant,
    epoch_nanos: u64,
    // The spans-finished counter, advanced a whole fragment at a time
    // when a local root decides its trace.
    cursor: AtomicU64,
    // Flight recorder + pending + kept under one mutex; same-thread
    // children never take it — they buffer in the thread-local
    // `FRAGMENTS` — so a two-span request costs one lock total.
    buffers: Mutex<Buffers>,
    keep_hook: RwLock<Option<KeepHook>>,
    // Mirrors `keep_hook.is_some()` so the hot path can skip the RwLock.
    has_hook: AtomicBool,
    bound: RwLock<Option<BoundCounters>>,
    // Mirrors `bound.is_some()` for the same reason.
    has_bound: AtomicBool,
    dropped_spans: AtomicU64,
    pending_dropped: AtomicU64,
    traces_kept: AtomicU64,
    traces_discarded: AtomicU64,
    // High-water marks of what has been mirrored into the bound registry
    // counters. Mirroring happens on local-root finishes (and on
    // `bind_metrics`), not per span, keeping the span hot path free of
    // registry traffic.
    synced_spans_finished: AtomicU64,
    synced_dropped_spans: AtomicU64,
    synced_traces_kept: AtomicU64,
    synced_traces_discarded: AtomicU64,
}

/// The tracing front end: creates spans, owns the flight recorder and the
/// sampling policy. Cheap to clone (an `Arc` internally); every layer of
/// a process shares one tracer the way they share one
/// [`MetricsRegistry`].
#[derive(Clone)]
pub struct Tracer {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.inner.enabled)
            .field("config", &self.inner.config)
            .field("stats", &self.stats())
            .finish()
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new(TraceConfig::default())
    }
}

impl Tracer {
    fn build(enabled: bool, config: TraceConfig) -> Tracer {
        let epoch_nanos = SystemTime::now()
            .duration_since(SystemTime::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        Tracer {
            inner: Arc::new(Inner {
                enabled,
                config,
                epoch_instant: Instant::now(),
                epoch_nanos,
                cursor: AtomicU64::new(0),
                buffers: Mutex::new(Buffers::default()),
                keep_hook: RwLock::new(None),
                has_hook: AtomicBool::new(false),
                bound: RwLock::new(None),
                has_bound: AtomicBool::new(false),
                dropped_spans: AtomicU64::new(0),
                pending_dropped: AtomicU64::new(0),
                traces_kept: AtomicU64::new(0),
                traces_discarded: AtomicU64::new(0),
                synced_spans_finished: AtomicU64::new(0),
                synced_dropped_spans: AtomicU64::new(0),
                synced_traces_kept: AtomicU64::new(0),
                synced_traces_discarded: AtomicU64::new(0),
            }),
        }
    }

    /// A tracer with the given capacities and sampling policy.
    pub fn new(config: TraceConfig) -> Tracer {
        Tracer::build(true, config)
    }

    /// A tracer whose every operation is a no-op: spans neither time nor
    /// record anything. The baseline for overhead measurements and the
    /// default for clients that do not opt into tracing.
    pub fn disabled() -> Tracer {
        Tracer::build(false, TraceConfig::default())
    }

    /// False for a [`Tracer::disabled`] tracer.
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled
    }

    /// The tracer's capacities and sampling policy.
    pub fn config(&self) -> &TraceConfig {
        &self.inner.config
    }

    /// Nanoseconds since the UNIX epoch on the tracer's monotone clock (a
    /// fixed wall-clock anchor plus `Instant` elapsed, so span timestamps
    /// never go backwards within one tracer).
    fn now_nanos(&self) -> u64 {
        self.inner
            .epoch_nanos
            .saturating_add(self.inner.epoch_instant.elapsed().as_nanos() as u64)
    }

    /// Starts a span. With a current span on this thread it becomes that
    /// span's child within the same trace; otherwise it originates a new
    /// trace (fresh [`TraceId`], head-sampling decision rolled here) and
    /// becomes its local root. The span records when dropped or
    /// [`finished`](ActiveSpan::finish).
    pub fn span(&self, name: impl Into<Cow<'static, str>>) -> ActiveSpan {
        if !self.inner.enabled {
            return ActiveSpan::noop(self.clone());
        }
        match CURRENT.get() {
            Some(current) => self.start(
                name.into(),
                current.trace_id,
                Some(current.span_id),
                current.local_root,
                current.sampled,
                false,
            ),
            None => {
                let trace_id = TraceId(fresh_id());
                let sampled = head_sampled(trace_id, self.inner.config.sample_ratio);
                self.start_root(name.into(), trace_id, None, sampled)
            }
        }
    }

    /// Starts a span that is its own *fragment root*: it nests under the
    /// current span (same trace, parent link intact) but buffers and
    /// decides its subtree independently, like the server side of a wire
    /// hop ([`span_remote`](Tracer::span_remote)). Use it for repeated
    /// units of work under one long-lived parent — e.g. each request of a
    /// large batch — so every unit settles into the flight recorder as a
    /// small fragment when it finishes, instead of accumulating (and
    /// eventually overflowing `max_spans_per_trace`) until the parent
    /// ends. [`recent_traces`](Tracer::recent_traces) re-merges the
    /// fragments of one trace. Without a current span it starts a fresh
    /// trace, exactly like [`span`](Tracer::span).
    pub fn span_fragment(&self, name: impl Into<Cow<'static, str>>) -> ActiveSpan {
        if !self.inner.enabled {
            return ActiveSpan::noop(self.clone());
        }
        match CURRENT.get() {
            Some(current) => self.start_root(
                name.into(),
                current.trace_id,
                Some(current.span_id),
                current.sampled,
            ),
            None => {
                let trace_id = TraceId(fresh_id());
                let sampled = head_sampled(trace_id, self.inner.config.sample_ratio);
                self.start_root(name.into(), trace_id, None, sampled)
            }
        }
    }

    /// Starts a local root span that joins a trace begun elsewhere — the
    /// server side of a wire hop. The span's parent is the remote span
    /// named by `context`; the head-sampling decision is inherited.
    pub fn span_remote(
        &self,
        name: impl Into<Cow<'static, str>>,
        context: &TraceContext,
    ) -> ActiveSpan {
        if !self.inner.enabled {
            return ActiveSpan::noop(self.clone());
        }
        self.start_root(
            name.into(),
            context.trace_id,
            Some(context.parent_span),
            context.sampled,
        )
    }

    fn start_root(
        &self,
        name: Cow<'static, str>,
        trace_id: TraceId,
        parent: Option<SpanId>,
        sampled: bool,
    ) -> ActiveSpan {
        let span_id = SpanId(fresh_id());
        self.start_with(name, trace_id, span_id, parent, span_id, sampled, true)
    }

    #[allow(clippy::too_many_arguments)]
    fn start(
        &self,
        name: Cow<'static, str>,
        trace_id: TraceId,
        parent: Option<SpanId>,
        local_root: SpanId,
        sampled: bool,
        is_local_root: bool,
    ) -> ActiveSpan {
        let span_id = SpanId(fresh_id());
        self.start_with(
            name,
            trace_id,
            span_id,
            parent,
            local_root,
            sampled,
            is_local_root,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn start_with(
        &self,
        name: Cow<'static, str>,
        trace_id: TraceId,
        span_id: SpanId,
        parent: Option<SpanId>,
        local_root: SpanId,
        sampled: bool,
        is_local_root: bool,
    ) -> ActiveSpan {
        let context = LocalContext {
            trace_id,
            span_id,
            local_root,
            sampled,
        };
        let previous = CURRENT.replace(Some(context));
        if is_local_root {
            // Track the root on its origin thread so children finishing
            // here can buffer lock-free in `FRAGMENTS`.
            FRAGMENTS.with_borrow_mut(|fragments| {
                if fragments.open_roots.len() < MAX_OPEN_ROOTS {
                    fragments.open_roots.push((span_id, 0));
                }
            });
        }
        ActiveSpan {
            tracer: self.clone(),
            previous,
            restores: true,
            data: Some(SpanData {
                trace_id,
                span_id,
                parent,
                local_root,
                sampled,
                is_local_root,
                name,
                attrs: Vec::new(),
                start_nanos: self.now_nanos(),
            }),
        }
    }

    /// The wire-propagatable context of the current span on this thread,
    /// if any. What a client attaches to outgoing requests.
    pub fn current_context(&self) -> Option<TraceContext> {
        if !self.inner.enabled {
            return None;
        }
        CURRENT.get().map(LocalContext::to_context)
    }

    /// The full in-process context of the current span on this thread,
    /// for handing to a worker thread (see [`Tracer::attach`]).
    pub fn local_context(&self) -> Option<LocalContext> {
        if !self.inner.enabled {
            return None;
        }
        CURRENT.get()
    }

    /// Installs `context` as the current span of this thread until the
    /// returned guard drops — how a thread pool propagates the batch
    /// span's identity into its workers, so per-run spans created there
    /// join the batch's trace instead of starting their own.
    pub fn attach(&self, context: LocalContext) -> ContextGuard {
        if !self.inner.enabled {
            return ContextGuard {
                previous: None,
                restores: false,
            };
        }
        ContextGuard {
            previous: CURRENT.replace(Some(context)),
            restores: true,
        }
    }

    /// Records a finished span: into the flight recorder always, and into
    /// the pending buffer of its local root; a finishing local root
    /// triggers the keep decision for its fragment.
    fn record(&self, record: SpanRecord, local_root: SpanId, is_local_root: bool, sampled: bool) {
        let inner = &self.inner;
        if !is_local_root {
            self.record_child(record, local_root);
            return;
        }

        // A finishing local root decides its trace. Gather the fragment:
        // the thread-local part (children that finished here while the
        // root was open), then any cross-thread part under the shared
        // lock.
        let mut fragment = FRAGMENTS.with_borrow_mut(|fragments| {
            let Some(at) = fragments
                .open_roots
                .iter()
                .rposition(|(root, _)| *root == local_root)
            else {
                return Vec::new();
            };
            let (_, count) = fragments.open_roots.swap_remove(at);
            // +1 for the root itself, pushed below.
            let mut fragment: Vec<SpanRecord> = Vec::with_capacity(count + 1);
            let mut i = 0;
            while i < fragments.spans.len() {
                if fragments.spans[i].0 == local_root {
                    fragment.push(fragments.spans.swap_remove(i).1);
                } else {
                    i += 1;
                }
            }
            fragment
        });
        let trace_id = record.trace_id;
        let root_nanos = record.duration_nanos();
        let keep = sampled || root_nanos >= inner.config.slow_threshold.as_nanos() as u64;
        let wants_hook = keep && inner.has_hook.load(Ordering::Relaxed);
        let mut for_hook: Option<Fragment> = None;
        {
            let mut buffers = inner.buffers.lock().expect("tracer buffers poisoned");
            if let Some(cross) = buffers.pending.remove(&local_root) {
                fragment.extend(cross);
            }
            fragment.push(record);
            fragment.sort_by_key(|span| (span.start_nanos, span.span_id.raw()));
            // Freeze the whole trace into one shared allocation; the ring
            // and the kept buffer reference it by refcount.
            let frozen: Fragment = fragment.into();
            inner
                .cursor
                .fetch_add(frozen.len() as u64, Ordering::Relaxed);

            // Flight recorder: always on, regardless of the keep
            // decision. Evicts (and counts) a whole trace at a time once
            // over span capacity; a retained child's parent is always
            // retained with it.
            buffers.ring_spans += frozen.len();
            buffers.ring.push_back(Arc::clone(&frozen));
            while buffers.ring.len() > 1 && buffers.ring_spans > inner.config.ring_capacity.max(1) {
                let evicted = buffers.ring.pop_front().expect("ring non-empty");
                buffers.ring_spans -= evicted.len();
                inner
                    .dropped_spans
                    .fetch_add(evicted.len() as u64, Ordering::Relaxed);
            }

            if keep {
                inner.traces_kept.fetch_add(1, Ordering::Relaxed);
                if wants_hook {
                    for_hook = Some(Arc::clone(&frozen));
                }
                buffers.kept.push_back((trace_id, frozen));
                while buffers.kept.len() > inner.config.keep_capacity.max(1) {
                    buffers.kept.pop_front();
                }
            } else {
                inner.traces_discarded.fetch_add(1, Ordering::Relaxed);
            }
        }
        if let Some(for_hook) = for_hook {
            // Materialize a `Trace` only when someone looks at it, and
            // call the hook outside the buffers lock so a hook may read
            // the tracer.
            let hook = inner
                .keep_hook
                .read()
                .expect("tracer keep hook poisoned")
                .clone();
            if let Some(hook) = hook {
                let trace = Trace {
                    trace_id,
                    spans: for_hook.to_vec(),
                };
                hook(&trace);
            }
        }
        // Mirror counter deltas into the bound registry once per decided
        // trace — the span hot path never touches it.
        self.sync_bound();
    }

    /// Buffers a finished non-root span: on its thread's local fragment
    /// when the local root is open here (no shared state touched), else
    /// in the shared cross-thread pending map. The per-trace span bound
    /// is enforced per buffer, so a trace split across threads may retain
    /// up to the bound in each.
    fn record_child(&self, record: SpanRecord, local_root: SpanId) {
        enum Placement {
            Buffered,
            OverBound,
            NotTrackedHere(SpanRecord),
        }
        let inner = &self.inner;
        let placement = FRAGMENTS.with_borrow_mut(|fragments| {
            match fragments
                .open_roots
                .iter_mut()
                .rev()
                .find(|(root, _)| *root == local_root)
            {
                Some((_, count)) => {
                    if *count < inner.config.max_spans_per_trace {
                        *count += 1;
                        fragments.spans.push((local_root, record));
                        Placement::Buffered
                    } else {
                        Placement::OverBound
                    }
                }
                None => Placement::NotTrackedHere(record),
            }
        });
        match placement {
            Placement::Buffered => {}
            Placement::OverBound => {
                inner.pending_dropped.fetch_add(1, Ordering::Relaxed);
            }
            Placement::NotTrackedHere(record) => {
                let mut buffers = inner.buffers.lock().expect("tracer buffers poisoned");
                match buffers.pending.get_mut(&local_root) {
                    Some(entry) => {
                        if entry.len() < inner.config.max_spans_per_trace {
                            entry.push(record);
                        } else {
                            inner.pending_dropped.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    None => {
                        if buffers.pending.len() < inner.config.max_pending_traces {
                            buffers.pending.insert(local_root, vec![record]);
                        } else {
                            inner.pending_dropped.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            }
        }
    }

    /// Adds whatever the tracer's counters accumulated since the last
    /// mirror to the bound registry counters, if a registry is bound.
    fn sync_bound(&self) {
        let inner = &self.inner;
        if !inner.has_bound.load(Ordering::Relaxed) {
            return;
        }
        let bound = inner.bound.read().expect("tracer counters poisoned");
        let Some(bound) = bound.as_ref() else {
            return;
        };
        for (total, synced, counter) in [
            (
                &inner.cursor,
                &inner.synced_spans_finished,
                &bound.spans_finished,
            ),
            (
                &inner.dropped_spans,
                &inner.synced_dropped_spans,
                &bound.dropped_spans,
            ),
            (
                &inner.traces_kept,
                &inner.synced_traces_kept,
                &bound.traces_kept,
            ),
            (
                &inner.traces_discarded,
                &inner.synced_traces_discarded,
                &bound.traces_discarded,
            ),
        ] {
            let current = total.load(Ordering::Relaxed);
            let previous = synced.swap(current, Ordering::Relaxed);
            counter.add(current.saturating_sub(previous));
        }
    }

    /// The flight recorder's current contents — the most recent finished
    /// spans up to `ring_capacity`, in finish (write) order, regardless
    /// of sampling.
    pub fn recent_spans(&self) -> Vec<SpanRecord> {
        let buffers = self.inner.buffers.lock().expect("tracer buffers poisoned");
        buffers
            .ring
            .iter()
            .flat_map(|fragment| fragment.iter().cloned())
            .collect()
    }

    /// The kept traces, oldest first, with fragments of one trace ID
    /// (e.g. several requests of one client session) merged into a single
    /// [`Trace`].
    pub fn recent_traces(&self) -> Vec<Trace> {
        let buffers = self.inner.buffers.lock().expect("tracer buffers poisoned");
        let spans: Vec<SpanRecord> = buffers
            .kept
            .iter()
            .flat_map(|(_, spans)| spans.iter().cloned())
            .collect();
        Trace::group(spans)
    }

    /// Registers a hook invoked (synchronously, on the recording thread)
    /// for every trace the sampling policy keeps — e.g. persisting slow
    /// traces to disk. Replaces any previous hook.
    pub fn set_keep_hook(&self, hook: impl Fn(&Trace) + Send + Sync + 'static) {
        *self
            .inner
            .keep_hook
            .write()
            .expect("tracer keep hook poisoned") = Some(Arc::new(hook));
        self.inner.has_hook.store(true, Ordering::Relaxed);
    }

    /// Point-in-time counters. Reading also flushes any counter deltas
    /// still unmirrored into a bound registry.
    pub fn stats(&self) -> TracerStats {
        self.sync_bound();
        self.stats_inner()
    }

    fn stats_inner(&self) -> TracerStats {
        let inner = &self.inner;
        TracerStats {
            spans_finished: inner.cursor.load(Ordering::Relaxed),
            dropped_spans: inner.dropped_spans.load(Ordering::Relaxed),
            pending_dropped: inner.pending_dropped.load(Ordering::Relaxed),
            traces_kept: inner.traces_kept.load(Ordering::Relaxed),
            traces_discarded: inner.traces_discarded.load(Ordering::Relaxed),
        }
    }

    /// Publishes the tracer's counters into a shared [`MetricsRegistry`]
    /// (`trace_spans_finished_total`, `dropped_spans_total`,
    /// `traces_kept_total`, `traces_discarded_total`), carrying the
    /// accumulated values across — the same re-homing contract as
    /// `ArtifactStore::bind_metrics`.
    pub fn bind_metrics(&self, registry: &MetricsRegistry) {
        let counters = BoundCounters {
            spans_finished: registry.counter("trace_spans_finished_total"),
            dropped_spans: registry.counter("dropped_spans_total"),
            traces_kept: registry.counter("traces_kept_total"),
            traces_discarded: registry.counter("traces_discarded_total"),
        };
        let mut bound = self.inner.bound.write().expect("tracer counters poisoned");
        let stats = self.stats_inner();
        counters.spans_finished.add(stats.spans_finished);
        counters.dropped_spans.add(stats.dropped_spans);
        counters.traces_kept.add(stats.traces_kept);
        counters.traces_discarded.add(stats.traces_discarded);
        let inner = &self.inner;
        inner
            .synced_spans_finished
            .store(stats.spans_finished, Ordering::Relaxed);
        inner
            .synced_dropped_spans
            .store(stats.dropped_spans, Ordering::Relaxed);
        inner
            .synced_traces_kept
            .store(stats.traces_kept, Ordering::Relaxed);
        inner
            .synced_traces_discarded
            .store(stats.traces_discarded, Ordering::Relaxed);
        *bound = Some(counters);
        inner.has_bound.store(true, Ordering::Relaxed);
    }
}

/// What an in-flight span carries until it finishes.
#[derive(Debug)]
struct SpanData {
    trace_id: TraceId,
    span_id: SpanId,
    parent: Option<SpanId>,
    local_root: SpanId,
    sampled: bool,
    is_local_root: bool,
    name: Cow<'static, str>,
    attrs: Vec<(Cow<'static, str>, AttrValue)>,
    start_nanos: u64,
}

/// An in-flight span. While alive it is the current span of the creating
/// thread (children created there nest under it); it records into its
/// [`Tracer`] when dropped or explicitly [`finished`](ActiveSpan::finish).
#[derive(Debug)]
pub struct ActiveSpan {
    tracer: Tracer,
    previous: Option<LocalContext>,
    restores: bool,
    data: Option<SpanData>,
}

impl ActiveSpan {
    fn noop(tracer: Tracer) -> ActiveSpan {
        ActiveSpan {
            tracer,
            previous: None,
            restores: false,
            data: None,
        }
    }

    /// True unless the tracer is disabled (then the span records nothing).
    pub fn is_recording(&self) -> bool {
        self.data.is_some()
    }

    /// The span's trace ID (`None` on a disabled tracer).
    pub fn trace_id(&self) -> Option<TraceId> {
        self.data.as_ref().map(|d| d.trace_id)
    }

    /// The span's own ID (`None` on a disabled tracer).
    pub fn span_id(&self) -> Option<SpanId> {
        self.data.as_ref().map(|d| d.span_id)
    }

    /// The context a remote child would join under — this span as parent.
    pub fn context(&self) -> Option<TraceContext> {
        self.data.as_ref().map(|d| TraceContext {
            trace_id: d.trace_id,
            parent_span: d.span_id,
            sampled: d.sampled,
        })
    }

    /// Appends a `key=value` attribute (kept in insertion order). Static
    /// keys are borrowed and numeric values stay numeric — see
    /// [`IntoAttr`] — so tagging a span with a counter neither allocates
    /// nor formats.
    pub fn set_attr(&mut self, key: impl Into<Cow<'static, str>>, value: impl IntoAttr) {
        if let Some(data) = self.data.as_mut() {
            if data.attrs.is_empty() {
                // One right-sized allocation instead of a doubling chain.
                data.attrs.reserve(8);
            }
            data.attrs.push((key.into(), value.into_attr()));
        }
    }

    /// Finishes the span now (dropping it does the same).
    pub fn finish(self) {
        drop(self);
    }

    fn finish_inner(&mut self) {
        let Some(data) = self.data.take() else {
            return;
        };
        if self.restores {
            CURRENT.set(self.previous.take());
            self.restores = false;
        }
        // Same epoch-anchored monotone clock as `start_nanos`, so the end
        // stamp can never precede the start.
        let end_nanos = self.tracer.now_nanos().max(data.start_nanos);
        let record = SpanRecord {
            trace_id: data.trace_id,
            span_id: data.span_id,
            parent: data.parent,
            name: data.name,
            start_nanos: data.start_nanos,
            end_nanos,
            tid: current_tid(),
            attrs: data.attrs,
        };
        self.tracer
            .record(record, data.local_root, data.is_local_root, data.sampled);
    }
}

impl Drop for ActiveSpan {
    fn drop(&mut self) {
        self.finish_inner();
    }
}

/// Restores the thread's previous current-span context when dropped; see
/// [`Tracer::attach`].
#[derive(Debug)]
pub struct ContextGuard {
    previous: Option<LocalContext>,
    restores: bool,
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        if self.restores {
            CURRENT.set(self.previous.take());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracer() -> Tracer {
        Tracer::new(TraceConfig::default())
    }

    #[test]
    fn spans_nest_via_the_thread_local_context() {
        let tracer = tracer();
        let root_ids;
        {
            let root = tracer.span("root");
            root_ids = (root.trace_id().unwrap(), root.span_id().unwrap());
            {
                let child = tracer.span("child");
                assert_eq!(child.trace_id(), Some(root_ids.0), "same trace");
                let grandchild = tracer.span("grandchild");
                assert_eq!(grandchild.trace_id(), Some(root_ids.0));
                drop(grandchild);
                drop(child);
            }
        }
        let traces = tracer.recent_traces();
        assert_eq!(traces.len(), 1);
        let trace = &traces[0];
        assert_eq!(trace.trace_id, root_ids.0);
        assert_eq!(trace.spans.len(), 3);
        let root = trace.find("root").unwrap();
        let child = trace.find("child").unwrap();
        let grandchild = trace.find("grandchild").unwrap();
        assert_eq!(root.parent, None);
        assert_eq!(child.parent, Some(root.span_id));
        assert_eq!(grandchild.parent, Some(child.span_id));
        // Nesting: children start no earlier and end no later.
        assert!(root.start_nanos <= child.start_nanos);
        assert!(child.start_nanos <= grandchild.start_nanos);
        assert!(grandchild.end_nanos <= child.end_nanos);
        assert!(child.end_nanos <= root.end_nanos);
    }

    #[test]
    fn remote_joins_share_one_trace() {
        let tracer = tracer();
        let context = {
            let client = tracer.span("client");
            client.context().unwrap()
        };
        // The "server side": a local root joining the client's trace.
        {
            let server = tracer.span_remote("server", &context);
            assert_eq!(server.trace_id(), Some(context.trace_id));
            let _inner = tracer.span("inner");
        }
        let traces = tracer.recent_traces();
        assert_eq!(traces.len(), 1, "fragments merged by trace id");
        let trace = &traces[0];
        assert_eq!(trace.spans.len(), 3);
        let server = trace.find("server").unwrap();
        assert_eq!(server.parent, Some(context.parent_span));
        let inner = trace.find("inner").unwrap();
        assert_eq!(inner.parent, Some(server.span_id));
    }

    #[test]
    fn attach_propagates_context_across_threads() {
        let tracer = tracer();
        let batch = tracer.span("batch");
        let batch_id = batch.span_id().unwrap();
        let context = tracer.local_context().unwrap();
        let worker_tracer = tracer.clone();
        std::thread::spawn(move || {
            let _guard = worker_tracer.attach(context);
            let _run = worker_tracer.span("run");
        })
        .join()
        .unwrap();
        drop(batch);
        let traces = tracer.recent_traces();
        assert_eq!(traces.len(), 1);
        let run = traces[0].find("run").unwrap();
        assert_eq!(run.parent, Some(batch_id));
        let batch = traces[0].find("batch").unwrap();
        assert_ne!(run.tid, batch.tid, "workers get their own tid lane");
    }

    #[test]
    fn head_sampling_discards_and_tail_keeps_slow_traces() {
        let config = TraceConfig {
            sample_ratio: 0.0,
            slow_threshold: Duration::from_millis(5),
            ..TraceConfig::default()
        };
        let tracer = Tracer::new(config);
        // Fast + unsampled: discarded.
        tracer.span("fast").finish();
        assert_eq!(tracer.recent_traces().len(), 0);
        // Slow: tail-kept despite the zero head ratio.
        {
            let _slow = tracer.span("slow");
            std::thread::sleep(Duration::from_millis(10));
        }
        let traces = tracer.recent_traces();
        assert_eq!(traces.len(), 1);
        assert!(traces[0].find("slow").is_some());
        let stats = tracer.stats();
        assert_eq!(stats.traces_kept, 1);
        assert_eq!(stats.traces_discarded, 1);
        assert_eq!(stats.spans_finished, 2);
        // The flight recorder retains everything regardless of sampling.
        assert_eq!(tracer.recent_spans().len(), 2);
    }

    #[test]
    fn sampling_is_a_pure_function_of_the_trace_id() {
        let hits = (0..10_000u64)
            .filter(|&i| head_sampled(TraceId(mix64(i)), 0.25))
            .count();
        // A deterministic hash at ratio 0.25 should land near 2500.
        assert!((2_000..3_000).contains(&hits), "got {hits}");
        assert!(head_sampled(TraceId(7), 1.0));
        assert!(!head_sampled(TraceId(7), 0.0));
    }

    #[test]
    fn ring_overwrites_count_dropped_spans() {
        let config = TraceConfig {
            ring_capacity: 4,
            ..TraceConfig::default()
        };
        let tracer = Tracer::new(config);
        for i in 0..10 {
            let mut span = tracer.span("s");
            span.set_attr("i", i);
        }
        let spans = tracer.recent_spans();
        assert_eq!(spans.len(), 4, "ring retains its capacity");
        // The retained window is the most recent four, in finish order.
        let kept: Vec<u64> = spans
            .iter()
            .map(|s| s.attr("i").unwrap().as_u64().unwrap())
            .collect();
        assert_eq!(kept, [6, 7, 8, 9]);
        assert_eq!(tracer.stats().dropped_spans, 6);
    }

    #[test]
    fn disabled_tracer_is_inert() {
        let tracer = Tracer::disabled();
        assert!(!tracer.is_enabled());
        {
            let mut span = tracer.span("ghost");
            assert!(!span.is_recording());
            assert_eq!(span.context(), None);
            span.set_attr("k", "v");
            assert_eq!(tracer.current_context(), None);
        }
        assert!(tracer.recent_spans().is_empty());
        assert!(tracer.recent_traces().is_empty());
        assert_eq!(tracer.stats(), TracerStats::default());
    }

    #[test]
    fn keep_hook_sees_kept_traces_and_metrics_bind_carries_counts() {
        let tracer = tracer();
        tracer.span("before").finish();
        let seen = Arc::new(AtomicU64::new(0));
        let seen_in_hook = Arc::clone(&seen);
        tracer.set_keep_hook(move |trace| {
            assert!(!trace.spans.is_empty());
            seen_in_hook.fetch_add(1, Ordering::Relaxed);
        });
        tracer.span("after").finish();
        assert_eq!(seen.load(Ordering::Relaxed), 1, "hook sees later keeps");

        let registry = MetricsRegistry::new();
        tracer.bind_metrics(&registry);
        tracer.span("bound").finish();
        let snapshot = registry.snapshot();
        assert_eq!(snapshot.counter("trace_spans_finished_total"), Some(3));
        assert_eq!(snapshot.counter("traces_kept_total"), Some(3));
        assert_eq!(snapshot.counter("dropped_spans_total"), Some(0));
    }

    #[test]
    fn flight_recorder_survives_8_thread_contention() {
        use std::sync::atomic::AtomicBool;

        const THREADS: u64 = 8;
        const ITERATIONS: u64 = 200;
        const RING: usize = 64;
        // Head sampling off: this test hammers the ring, not the keep path.
        let tracer = Tracer::new(TraceConfig {
            ring_capacity: RING,
            sample_ratio: 0.0,
            ..TraceConfig::default()
        });

        let done = Arc::new(AtomicBool::new(false));
        let monitor = {
            let tracer = tracer.clone();
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                // The drop counter must be monotone while writers race.
                let mut last = 0;
                while !done.load(Ordering::Relaxed) {
                    let dropped = tracer.stats().dropped_spans;
                    assert!(dropped >= last, "drop counter went backwards");
                    last = dropped;
                    // Concurrent reads must never see torn records either.
                    for span in tracer.recent_spans() {
                        assert_consistent(&span);
                    }
                }
            })
        };

        let workers: Vec<_> = (0..THREADS)
            .map(|t| {
                let tracer = tracer.clone();
                std::thread::spawn(move || {
                    for i in 0..ITERATIONS {
                        let mut parent = tracer.span("parent");
                        set_tags(&mut parent, t, i);
                        let mut child = tracer.span("child");
                        set_tags(&mut child, t, i);
                        drop(child);
                        drop(parent);
                    }
                })
            })
            .collect();
        for worker in workers {
            worker.join().unwrap();
        }
        done.store(true, Ordering::Relaxed);
        monitor.join().unwrap();

        let total = THREADS * ITERATIONS * 2;
        let stats = tracer.stats();
        assert_eq!(stats.spans_finished, total);
        assert_eq!(
            stats.dropped_spans,
            total - RING as u64,
            "ring keeps exactly its capacity"
        );

        let retained = tracer.recent_spans();
        assert_eq!(retained.len(), RING);
        let ids: std::collections::HashSet<u64> =
            retained.iter().map(|span| span.span_id.raw()).collect();
        assert_eq!(ids.len(), RING, "span ids are unique");
        for span in &retained {
            assert_consistent(span);
            // Children finish (and are written) before their parents, so
            // any retained child's parent is newer and must be retained
            // too: parent links always resolve within the window.
            if span.name == "child" {
                let parent = span.parent.expect("children carry parent links");
                assert!(
                    ids.contains(&parent.raw()),
                    "retained child's parent evicted"
                );
            }
        }

        fn set_tags(span: &mut ActiveSpan, t: u64, i: u64) {
            span.set_attr("t", t);
            span.set_attr("i", i);
            span.set_attr("check", t * 1_000 + i);
        }

        // A torn span would mix fields written by different threads; every
        // field triple must agree, and timestamps must be ordered.
        fn assert_consistent(span: &SpanRecord) {
            assert!(span.end_nanos >= span.start_nanos);
            assert_ne!(span.trace_id.raw(), 0);
            assert_ne!(span.span_id.raw(), 0);
            let t: u64 = span.attr("t").unwrap().as_u64().unwrap();
            let i: u64 = span.attr("i").unwrap().as_u64().unwrap();
            let check: u64 = span.attr("check").unwrap().as_u64().unwrap();
            assert_eq!(check, t * 1_000 + i, "torn span: attrs disagree");
        }
    }

    #[test]
    fn pending_bounds_drop_excess_spans_not_the_decision() {
        let config = TraceConfig {
            max_spans_per_trace: 2,
            ..TraceConfig::default()
        };
        let tracer = Tracer::new(config);
        {
            let _root = tracer.span("root");
            for _ in 0..5 {
                tracer.span("child").finish();
            }
        }
        let traces = tracer.recent_traces();
        assert_eq!(traces.len(), 1);
        // Two buffered children plus the root survive; three were shed.
        assert_eq!(traces[0].spans.len(), 3);
        assert_eq!(tracer.stats().pending_dropped, 3);
    }
}
