//! Log-bucketed histograms: fixed-size atomic bucket arrays with bounded
//! relative error, plus the frozen [`HistogramSnapshot`] and its quantile
//! math.
//!
//! Values are unit-agnostic `u64`s — the serving stack records latencies
//! in nanoseconds and sizes in bytes — and bucketing is "HDR-lite": values
//! below [`LINEAR_CUTOFF`] get one exact bucket each, and every power of
//! two above it is split into four sub-buckets, so a recorded value lands
//! in a bucket whose width is at most a quarter of its lower bound
//! (≤ 25 % relative error, exact below 8).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Values below this are bucketed exactly (one bucket per value).
const LINEAR_CUTOFF: u64 = 4;
/// Sub-buckets per power of two above the linear range.
const SUBS: usize = 4;
/// Total bucket count: indices `0..4` exactly cover `0..4`, and each of
/// the 62 octaves `[2^m, 2^(m+1))` for `m in 2..=63` contributes four.
pub const BUCKETS: usize = LINEAR_CUTOFF as usize + SUBS * 62;

/// The bucket a value is recorded into.
pub fn bucket_index(value: u64) -> usize {
    if value < LINEAR_CUTOFF {
        value as usize
    } else {
        let msb = 63 - value.leading_zeros() as usize; // >= 2
        let sub = ((value >> (msb - 2)) & 0b11) as usize;
        SUBS * (msb - 1) + sub
    }
}

/// The inclusive `(lower, upper)` value range of a bucket index.
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    assert!(index < BUCKETS, "bucket index {index} out of range");
    if index < LINEAR_CUTOFF as usize {
        (index as u64, index as u64)
    } else {
        let msb = index / SUBS + 1;
        let sub = (index % SUBS) as u64;
        let step = 1u64 << (msb - 2);
        let lower = (1u64 << msb) + sub * step;
        (lower, lower.saturating_add(step - 1))
    }
}

#[derive(Debug)]
pub(crate) struct HistogramCells {
    buckets: Vec<AtomicU64>, // BUCKETS entries
    sum: AtomicU64,
    min: AtomicU64, // u64::MAX until the first observation
    max: AtomicU64,
}

impl HistogramCells {
    pub(crate) fn new() -> Self {
        HistogramCells {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    // The hot path is two uncontended-read-friendly RMWs; the total count
    // is derived from the buckets at snapshot time, and min/max pay a
    // shared-cache-line write only while the record actually moves (a
    // plain load almost always short-circuits once the range settles).
    fn observe(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        if value < self.min.load(Ordering::Relaxed) {
            self.min.fetch_min(value, Ordering::Relaxed);
        }
        if value > self.max.load(Ordering::Relaxed) {
            self.max.fetch_max(value, Ordering::Relaxed);
        }
    }

    pub(crate) fn count(&self) -> u64 {
        self.buckets
            .iter()
            .map(|cell| cell.load(Ordering::Relaxed))
            .sum()
    }

    fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        let mut count = 0u64;
        for (index, cell) in self.buckets.iter().enumerate() {
            let bucket_count = cell.load(Ordering::Relaxed);
            if bucket_count > 0 {
                count += bucket_count;
                buckets.push((bucket_bounds(index).1, bucket_count));
            }
        }
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// A handle to one histogram series. Cheap to clone; records are lock-free
/// atomics. A handle from a disabled registry (or a default-constructed
/// one) is a no-op.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    pub(crate) cells: Option<Arc<HistogramCells>>,
}

impl Histogram {
    /// Records one value.
    pub fn observe(&self, value: u64) {
        if let Some(cells) = &self.cells {
            cells.observe(value);
        }
    }

    /// Records a duration as nanoseconds (saturating at `u64::MAX`).
    pub fn observe_duration(&self, duration: Duration) {
        self.observe(u64::try_from(duration.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Starts a [`crate::Span`] that records its elapsed nanoseconds into
    /// this histogram when dropped.
    #[must_use = "a span records when dropped; binding it to _ records immediately"]
    pub fn span(&self) -> crate::Span {
        crate::Span::new(self.clone())
    }

    /// Number of recorded values so far.
    pub fn count(&self) -> u64 {
        self.cells.as_ref().map_or(0, |c| c.count())
    }

    /// Freezes the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.cells
            .as_ref()
            .map_or_else(HistogramSnapshot::default, |c| c.snapshot())
    }
}

/// The frozen state of one histogram: exact `count`/`sum`/`min`/`max` and
/// the non-empty buckets as `(inclusive upper bound, count)` pairs in
/// ascending bound order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Values recorded.
    pub count: u64,
    /// Sum of recorded values (wrapping only past `u64::MAX` total).
    pub sum: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
    /// Non-empty buckets: `(inclusive upper bound, count)`, ascending.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// The bucketed `q`-quantile (`0.0 ..= 1.0`): the upper bound of the
    /// bucket holding the value of rank `ceil(q·n)`. Exact for values
    /// below 8, within 25 % above (the recorded value is never larger than
    /// the estimate's bucket upper bound). Returns 0 for an empty
    /// histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        let total: u64 = self.buckets.iter().map(|&(_, count)| count).sum();
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut cumulative = 0u64;
        for &(upper, count) in &self.buckets {
            cumulative += count;
            if cumulative >= rank {
                return upper;
            }
        }
        self.buckets.last().map_or(0, |&(upper, _)| upper)
    }

    /// Mean of the recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_contiguous_and_cover_u64() {
        // Bucket 0 starts at 0, each bucket starts right after the
        // previous one ends, and the last reaches u64::MAX.
        assert_eq!(bucket_bounds(0), (0, 0));
        for index in 1..BUCKETS {
            let (lower, _) = bucket_bounds(index);
            let (_, previous_upper) = bucket_bounds(index - 1);
            assert_eq!(
                lower,
                previous_upper + 1,
                "bucket {index} does not abut bucket {}",
                index - 1
            );
        }
        assert_eq!(bucket_bounds(BUCKETS - 1).1, u64::MAX);
    }

    #[test]
    fn every_value_lands_in_its_own_bucket() {
        let mut probes: Vec<u64> = (0..=4096).collect();
        for shift in 12..64 {
            let base = 1u64 << shift;
            probes.extend([base - 1, base, base + 1, base + base / 3]);
        }
        probes.push(u64::MAX);
        for value in probes {
            let index = bucket_index(value);
            let (lower, upper) = bucket_bounds(index);
            assert!(
                lower <= value && value <= upper,
                "{value} not in bucket {index} [{lower}, {upper}]"
            );
            // Relative error bound: bucket width <= lower/4 above the
            // exact range.
            if value >= 8 {
                assert!(upper - lower < lower.div_ceil(4) + 1);
            } else {
                assert_eq!(lower, upper, "values below 8 are exact");
            }
        }
    }

    #[test]
    fn quantiles_match_a_brute_force_reference() {
        // A deterministic value mix spanning several octaves.
        let mut values = Vec::new();
        let mut x: u64 = 0x2545_f491_4f6c_dd1d;
        for _ in 0..5000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            values.push(x % 1_000_000);
        }
        let histogram = Histogram {
            cells: Some(Arc::new(HistogramCells::new())),
        };
        for &value in &values {
            histogram.observe(value);
        }
        let snapshot = histogram.snapshot();
        assert_eq!(snapshot.count, values.len() as u64);
        assert_eq!(snapshot.sum, values.iter().sum::<u64>());
        assert_eq!(snapshot.min, *values.iter().min().unwrap());
        assert_eq!(snapshot.max, *values.iter().max().unwrap());

        let mut sorted = values.clone();
        sorted.sort_unstable();
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let truth = sorted[rank - 1];
            let estimate = snapshot.quantile(q);
            // The estimate is the upper bound of the bucket holding the
            // true rank value: never below the truth, and within the
            // bucket's 25 % relative width.
            assert_eq!(
                estimate,
                bucket_bounds(bucket_index(truth)).1,
                "q={q}: estimate {estimate} is not the bucket bound of {truth}"
            );
            assert!(estimate >= truth);
            assert!(estimate as f64 <= truth as f64 * 1.25 + 1.0);
        }
    }

    #[test]
    fn empty_and_disabled_histograms_are_inert() {
        let empty = Histogram {
            cells: Some(Arc::new(HistogramCells::new())),
        };
        let snapshot = empty.snapshot();
        assert_eq!((snapshot.count, snapshot.min, snapshot.max), (0, 0, 0));
        assert_eq!(snapshot.quantile(0.5), 0);
        assert_eq!(snapshot.mean(), 0.0);

        let disabled = Histogram::default();
        disabled.observe(123);
        disabled.observe_duration(Duration::from_millis(1));
        assert_eq!(disabled.count(), 0);
        assert_eq!(disabled.snapshot(), HistogramSnapshot::default());
    }
}
