//! A minimal JSON value model, parser and writer.
//!
//! Exists so snapshot export/import needs no external crate. Two properties
//! matter for metrics: integers survive a round-trip exactly (counts and
//! bucket bounds are `u64`s up to `u64::MAX`, which `f64` cannot hold), and
//! object key order is preserved, so rendering a parsed document is
//! deterministic.

use std::fmt::Write as _;

/// A parsed JSON value. Numbers keep their exact integer representation
/// when they have one: unsigned first, then signed, then `f64`.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A non-negative integer without fraction or exponent.
    U64(u64),
    /// A negative integer without fraction or exponent.
    I64(i64),
    /// Any other number.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object; key order is preserved.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as an `i64` (accepts in-range unsigned values too).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            JsonValue::I64(v) => Some(*v),
            JsonValue::U64(v) => i64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Renders the value as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::U64(v) => {
                let _ = write!(out, "{v}");
            }
            JsonValue::I64(v) => {
                let _ = write!(out, "{v}");
            }
            JsonValue::F64(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::Str(s) => write_escaped(out, s),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            JsonValue::Object(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, key);
                    out.push(':');
                    value.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON parse error: what went wrong and the byte offset it happened at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_owned(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => self.string().map(JsonValue::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.error("expected a value")),
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.error("bad \\u escape"))?;
                            // Surrogate pairs are not needed for metric
                            // names; reject them rather than mis-decode.
                            let c =
                                char::from_u32(hex).ok_or_else(|| self.error("bad \\u escape"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.error("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    let start = self.pos;
                    while let Some(b) = self.peek() {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.error("invalid utf-8 in string"))?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(JsonValue::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(JsonValue::I64(v));
            }
        }
        text.parse::<f64>()
            .map(JsonValue::F64)
            .map_err(|_| self.error("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_exact_integers() {
        let doc = format!("{{\"max\":{},\"neg\":-42,\"f\":1.5}}", u64::MAX);
        let value = parse(&doc).unwrap();
        assert_eq!(value.get("max").unwrap().as_u64(), Some(u64::MAX));
        assert_eq!(value.get("neg").unwrap().as_i64(), Some(-42));
        assert_eq!(value.get("f"), Some(&JsonValue::F64(1.5)));
        assert_eq!(parse(&value.render()).unwrap(), value);
    }

    #[test]
    fn strings_escape_and_unescape() {
        let original = JsonValue::Str("a\"b\\c\nd\te\u{1}é".to_owned());
        let rendered = original.render();
        assert_eq!(parse(&rendered).unwrap(), original);
    }

    #[test]
    fn structure_round_trips_and_preserves_key_order() {
        let doc = r#"{"z":[1,2,{"k":null}],"a":true,"m":{"x":"y"}}"#;
        let value = parse(doc).unwrap();
        assert_eq!(value.render(), doc.replace(" ", ""));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "nul",
            "1 2",
            "\"abc",
            "{\"a\" 1}",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }
}
