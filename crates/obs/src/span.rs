//! Scoped timers that record into a histogram on drop.

use crate::Histogram;
use std::time::Instant;

/// A scoped timer: created by [`Histogram::span`], it records the elapsed
/// wall-clock nanoseconds into its histogram when dropped. Spans from a
/// disabled registry still measure nothing observable and cost one
/// `Instant::now` call.
#[derive(Debug)]
pub struct Span {
    hist: Histogram,
    start: Instant,
    recorded: bool,
}

impl Span {
    pub(crate) fn new(hist: Histogram) -> Self {
        Span {
            hist,
            start: Instant::now(),
            recorded: false,
        }
    }

    /// Elapsed time since the span started.
    pub fn elapsed(&self) -> std::time::Duration {
        self.start.elapsed()
    }

    /// Records now and defuses the drop recording. Useful to exclude
    /// tear-down work from the measurement.
    pub fn finish(mut self) {
        self.record();
    }

    /// Drops the span without recording anything.
    pub fn cancel(mut self) {
        self.recorded = true;
    }

    fn record(&mut self) {
        if !self.recorded {
            self.recorded = true;
            self.hist.observe_duration(self.start.elapsed());
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.record();
    }
}

#[cfg(test)]
mod tests {
    use crate::MetricsRegistry;
    use std::time::Duration;

    #[test]
    fn span_records_once_on_drop() {
        let registry = MetricsRegistry::new();
        let hist = registry.histogram("h");
        {
            let _span = hist.span();
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(hist.count(), 1);
        let snapshot = hist.snapshot();
        assert!(
            snapshot.min >= 1_000_000,
            "slept >= 1ms, got {}",
            snapshot.min
        );
    }

    #[test]
    fn finish_and_cancel_behave() {
        let registry = MetricsRegistry::new();
        let hist = registry.histogram("h");
        hist.span().finish();
        assert_eq!(hist.count(), 1);
        hist.span().cancel();
        assert_eq!(hist.count(), 1, "cancelled span must not record");
    }
}
