//! Trace exporters and their parse-back validators: Chrome trace-event
//! JSON (loadable in Perfetto / `chrome://tracing`) and a JSON-Lines
//! structured event log.
//!
//! Both formats follow the crate's exporter contract: what
//! [`to_chrome_trace`] / [`to_jsonl`] render, [`parse_chrome_trace`] /
//! [`parse_jsonl`] parse back into the *same* [`SpanRecord`]s, so a CI
//! smoke test (or a suspicious operator) can validate a dump
//! byte-for-byte before shipping it to a viewer.
//!
//! The Chrome export uses complete (`"ph":"X"`) events on a single pid,
//! with `tid` set to the recording worker's thread index, so one request's
//! spans line up as nested bars per worker lane. Timestamps are
//! microseconds (the format's unit); the exact nanosecond endpoints ride
//! along in `args` (`start_ns`/`end_ns`) together with the span identity
//! (`trace_id`/`span_id`/`parent_span_id`) and every user attribute, so
//! the parse-back loses nothing.

use crate::json::{self, JsonValue};
use crate::trace::{AttrValue, SpanId, SpanRecord, TraceId};
use std::borrow::Cow;

/// Keys the Chrome exporter reserves in `args` for the span identity and
/// exact timestamps; user attributes must not collide with them.
const RESERVED_ARGS: [&str; 5] = [
    "trace_id",
    "span_id",
    "parent_span_id",
    "start_ns",
    "end_ns",
];

fn chrome_event(span: &SpanRecord) -> JsonValue {
    let mut args = vec![
        ("trace_id".to_owned(), JsonValue::U64(span.trace_id.raw())),
        ("span_id".to_owned(), JsonValue::U64(span.span_id.raw())),
    ];
    if let Some(parent) = span.parent {
        args.push(("parent_span_id".to_owned(), JsonValue::U64(parent.raw())));
    }
    args.push(("start_ns".to_owned(), JsonValue::U64(span.start_nanos)));
    args.push(("end_ns".to_owned(), JsonValue::U64(span.end_nanos)));
    for (key, value) in &span.attrs {
        args.push((key.clone().into_owned(), attr_json(value)));
    }
    JsonValue::Object(vec![
        (
            "name".to_owned(),
            JsonValue::Str(span.name.clone().into_owned()),
        ),
        ("cat".to_owned(), JsonValue::Str("omnisim".to_owned())),
        ("ph".to_owned(), JsonValue::Str("X".to_owned())),
        ("pid".to_owned(), JsonValue::U64(1)),
        ("tid".to_owned(), JsonValue::U64(span.tid)),
        ("ts".to_owned(), JsonValue::U64(span.start_nanos / 1_000)),
        (
            "dur".to_owned(),
            JsonValue::U64(span.duration_nanos() / 1_000),
        ),
        ("args".to_owned(), JsonValue::Object(args)),
    ])
}

/// Renders spans as a Chrome trace-event JSON document: complete
/// (`"ph":"X"`) events on one pid, `tid` = recording worker. Open the
/// output in [Perfetto](https://ui.perfetto.dev) or `chrome://tracing`.
pub fn to_chrome_trace(spans: &[SpanRecord]) -> String {
    JsonValue::Object(vec![(
        "traceEvents".to_owned(),
        JsonValue::Array(spans.iter().map(chrome_event).collect()),
    )])
    .render()
}

fn field<'a>(event: &'a JsonValue, key: &str, at: usize) -> Result<&'a JsonValue, String> {
    event
        .get(key)
        .ok_or_else(|| format!("event {at}: missing '{key}'"))
}

fn u64_field(event: &JsonValue, key: &str, at: usize) -> Result<u64, String> {
    field(event, key, at)?
        .as_u64()
        .ok_or_else(|| format!("event {at}: '{key}' is not an unsigned integer"))
}

fn str_field<'a>(event: &'a JsonValue, key: &str, at: usize) -> Result<&'a str, String> {
    field(event, key, at)?
        .as_str()
        .ok_or_else(|| format!("event {at}: '{key}' is not a string"))
}

fn span_identity(
    args: &JsonValue,
    at: usize,
) -> Result<(TraceId, SpanId, Option<SpanId>, u64, u64), String> {
    let trace_id = TraceId::from_raw(u64_field(args, "trace_id", at)?)
        .ok_or_else(|| format!("event {at}: zero trace_id"))?;
    let span_id = SpanId::from_raw(u64_field(args, "span_id", at)?)
        .ok_or_else(|| format!("event {at}: zero span_id"))?;
    let parent = match args.get("parent_span_id") {
        None => None,
        Some(value) => Some(
            value
                .as_u64()
                .and_then(SpanId::from_raw)
                .ok_or_else(|| format!("event {at}: bad parent_span_id"))?,
        ),
    };
    let start_nanos = u64_field(args, "start_ns", at)?;
    let end_nanos = u64_field(args, "end_ns", at)?;
    if end_nanos < start_nanos {
        return Err(format!("event {at}: end_ns precedes start_ns"));
    }
    Ok((trace_id, span_id, parent, start_nanos, end_nanos))
}

type Attrs = Vec<(Cow<'static, str>, AttrValue)>;

/// Renders one attribute value with its type preserved: text as a JSON
/// string, integers as JSON numbers, booleans as JSON booleans.
fn attr_json(value: &AttrValue) -> JsonValue {
    match value {
        AttrValue::Text(text) => JsonValue::Str(text.clone().into_owned()),
        AttrValue::Uint(v) => JsonValue::U64(*v),
        AttrValue::Int(v) => JsonValue::I64(*v),
        AttrValue::Bool(v) => JsonValue::Bool(*v),
    }
}

/// Parses one attribute value back by its JSON type; the inverse of
/// [`attr_json`].
fn attr_from_json(value: &JsonValue) -> Option<AttrValue> {
    match value {
        JsonValue::Str(text) => Some(AttrValue::Text(Cow::Owned(text.clone()))),
        JsonValue::U64(v) => Some(AttrValue::Uint(*v)),
        JsonValue::I64(v) => Some(AttrValue::Int(*v)),
        JsonValue::Bool(v) => Some(AttrValue::Bool(*v)),
        _ => None,
    }
}

fn user_attrs(args: &JsonValue, at: usize) -> Result<Attrs, String> {
    let JsonValue::Object(fields) = args else {
        return Err(format!("event {at}: 'args' is not an object"));
    };
    let mut attrs = Vec::new();
    for (key, value) in fields {
        if RESERVED_ARGS.contains(&key.as_str()) {
            continue;
        }
        let value = attr_from_json(value)
            .ok_or_else(|| format!("event {at}: attribute '{key}' is not a scalar"))?;
        attrs.push((Cow::Owned(key.clone()), value));
    }
    Ok(attrs)
}

/// Parses and validates a Chrome trace-event document produced by
/// [`to_chrome_trace`], reconstructing the exact spans: every event must
/// be a complete event on pid 1, its `ts`/`dur` must agree with the exact
/// `start_ns`/`end_ns` carried in `args`, and the span identity must be
/// well-formed.
///
/// # Errors
///
/// A description of the first malformed event (or JSON syntax error).
pub fn parse_chrome_trace(text: &str) -> Result<Vec<SpanRecord>, String> {
    let document = json::parse(text).map_err(|error| format!("bad JSON: {error}"))?;
    let events = document
        .get("traceEvents")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| "missing 'traceEvents' array".to_owned())?;
    let mut spans = Vec::with_capacity(events.len());
    for (at, event) in events.iter().enumerate() {
        if str_field(event, "ph", at)? != "X" {
            return Err(format!("event {at}: not a complete ('X') event"));
        }
        if u64_field(event, "pid", at)? != 1 {
            return Err(format!("event {at}: events must share pid 1"));
        }
        let name: Cow<'static, str> = Cow::Owned(str_field(event, "name", at)?.to_owned());
        if name.is_empty() {
            return Err(format!("event {at}: empty name"));
        }
        let tid = u64_field(event, "tid", at)?;
        let ts = u64_field(event, "ts", at)?;
        let dur = u64_field(event, "dur", at)?;
        let args = field(event, "args", at)?;
        let (trace_id, span_id, parent, start_nanos, end_nanos) = span_identity(args, at)?;
        if ts != start_nanos / 1_000 || dur != (end_nanos - start_nanos) / 1_000 {
            return Err(format!("event {at}: ts/dur disagree with start_ns/end_ns"));
        }
        spans.push(SpanRecord {
            trace_id,
            span_id,
            parent,
            name,
            start_nanos,
            end_nanos,
            tid,
            attrs: user_attrs(args, at)?,
        });
    }
    Ok(spans)
}

fn jsonl_line(span: &SpanRecord) -> JsonValue {
    let mut fields = vec![
        ("trace_id".to_owned(), JsonValue::U64(span.trace_id.raw())),
        ("span_id".to_owned(), JsonValue::U64(span.span_id.raw())),
        (
            "parent_span_id".to_owned(),
            match span.parent {
                Some(parent) => JsonValue::U64(parent.raw()),
                None => JsonValue::Null,
            },
        ),
        (
            "name".to_owned(),
            JsonValue::Str(span.name.clone().into_owned()),
        ),
        ("tid".to_owned(), JsonValue::U64(span.tid)),
        ("start_ns".to_owned(), JsonValue::U64(span.start_nanos)),
        ("end_ns".to_owned(), JsonValue::U64(span.end_nanos)),
    ];
    let attrs = span
        .attrs
        .iter()
        .map(|(key, value)| (key.clone().into_owned(), attr_json(value)))
        .collect();
    fields.push(("attrs".to_owned(), JsonValue::Object(attrs)));
    JsonValue::Object(fields)
}

/// Renders spans as a JSON-Lines structured event log: one compact JSON
/// object per span, exact `u64` timestamps, attributes as a nested
/// object. Greppable, appendable, and parsed back exactly by
/// [`parse_jsonl`].
pub fn to_jsonl(spans: &[SpanRecord]) -> String {
    let mut out = String::new();
    for span in spans {
        out.push_str(&jsonl_line(span).render());
        out.push('\n');
    }
    out
}

/// Parses a JSON-Lines span log produced by [`to_jsonl`], reconstructing
/// the exact spans. Blank lines are ignored.
///
/// # Errors
///
/// A description of the first malformed line.
pub fn parse_jsonl(text: &str) -> Result<Vec<SpanRecord>, String> {
    let mut spans = Vec::new();
    for (at, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let value = json::parse(line).map_err(|error| format!("line {at}: bad JSON: {error}"))?;
        let trace_id = TraceId::from_raw(u64_field(&value, "trace_id", at)?)
            .ok_or_else(|| format!("line {at}: zero trace_id"))?;
        let span_id = SpanId::from_raw(u64_field(&value, "span_id", at)?)
            .ok_or_else(|| format!("line {at}: zero span_id"))?;
        let parent = match field(&value, "parent_span_id", at)? {
            JsonValue::Null => None,
            other => Some(
                other
                    .as_u64()
                    .and_then(SpanId::from_raw)
                    .ok_or_else(|| format!("line {at}: bad parent_span_id"))?,
            ),
        };
        let name = Cow::Owned(str_field(&value, "name", at)?.to_owned());
        let tid = u64_field(&value, "tid", at)?;
        let start_nanos = u64_field(&value, "start_ns", at)?;
        let end_nanos = u64_field(&value, "end_ns", at)?;
        if end_nanos < start_nanos {
            return Err(format!("line {at}: end_ns precedes start_ns"));
        }
        let JsonValue::Object(attr_fields) = field(&value, "attrs", at)? else {
            return Err(format!("line {at}: 'attrs' is not an object"));
        };
        let mut attrs: Attrs = Vec::with_capacity(attr_fields.len());
        for (key, attr_value) in attr_fields {
            let attr_value = attr_from_json(attr_value)
                .ok_or_else(|| format!("line {at}: attribute '{key}' is not a scalar"))?;
            attrs.push((Cow::Owned(key.clone()), attr_value));
        }
        spans.push(SpanRecord {
            trace_id,
            span_id,
            parent,
            name,
            start_nanos,
            end_nanos,
            tid,
            attrs,
        });
    }
    Ok(spans)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_spans() -> Vec<SpanRecord> {
        let trace = TraceId::from_raw(0xabcd).unwrap();
        vec![
            SpanRecord {
                trace_id: trace,
                span_id: SpanId::from_raw(10).unwrap(),
                parent: None,
                name: "request".into(),
                start_nanos: 1_000_000,
                end_nanos: 9_999_999,
                tid: 1,
                attrs: vec![("outcome".into(), "warm \"quoted\"\n".into())],
            },
            SpanRecord {
                trace_id: trace,
                span_id: SpanId::from_raw(11).unwrap(),
                parent: SpanId::from_raw(10),
                name: "backend_run".into(),
                start_nanos: 2_000_000,
                end_nanos: 8_000_000,
                tid: 2,
                attrs: vec![
                    ("refinalizes".into(), AttrValue::Uint(3)),
                    ("resized".into(), AttrValue::Bool(false)),
                ],
            },
        ]
    }

    #[test]
    fn chrome_trace_round_trips_exactly() {
        let spans = sample_spans();
        let text = to_chrome_trace(&spans);
        assert_eq!(parse_chrome_trace(&text).unwrap(), spans);
        // The rendered events use the documented shape.
        let document = json::parse(&text).unwrap();
        let events = document.get("traceEvents").unwrap().as_array().unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(events[0].get("pid").unwrap().as_u64(), Some(1));
        assert_eq!(events[0].get("ts").unwrap().as_u64(), Some(1_000));
        assert_eq!(events[1].get("tid").unwrap().as_u64(), Some(2));
    }

    #[test]
    fn jsonl_round_trips_exactly() {
        let spans = sample_spans();
        let text = to_jsonl(&spans);
        assert_eq!(text.lines().count(), 2, "one object per line");
        assert_eq!(parse_jsonl(&text).unwrap(), spans);
        // Blank lines (e.g. from file concatenation) are tolerated.
        let padded = format!("\n{text}\n");
        assert_eq!(parse_jsonl(&padded).unwrap(), spans);
    }

    #[test]
    fn chrome_validator_rejects_malformed_documents() {
        let spans = sample_spans();
        let good = to_chrome_trace(&spans);
        for (needle, replacement, why) in [
            ("\"ph\":\"X\"", "\"ph\":\"B\"", "non-complete event"),
            ("\"pid\":1", "\"pid\":2", "foreign pid"),
            ("\"ts\":1000", "\"ts\":1001", "ts disagreeing with start_ns"),
            ("\"span_id\":10", "\"span_id\":0", "zero span id"),
        ] {
            let bad = good.replacen(needle, replacement, 1);
            assert_ne!(bad, good, "replacement for {why} must apply");
            assert!(parse_chrome_trace(&bad).is_err(), "accepted {why}");
        }
        assert!(parse_chrome_trace("{}").is_err());
        assert!(parse_chrome_trace("not json").is_err());
    }

    #[test]
    fn jsonl_validator_rejects_malformed_lines() {
        let good = to_jsonl(&sample_spans());
        let first = good.lines().next().unwrap();
        for bad in [
            "{\"trace_id\":1}".to_owned(),
            first.replacen("\"trace_id\":43981", "\"trace_id\":0", 1),
            first.replacen("\"start_ns\":1000000", "\"start_ns\":99999999", 1),
            "junk".to_owned(),
        ] {
            assert!(parse_jsonl(&bad).is_err(), "accepted {bad:?}");
        }
    }
}
