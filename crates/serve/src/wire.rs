//! The serving tier's wire protocol: length-prefixed, versioned binary
//! messages over any byte stream (the [`crate::Server`]/[`crate::Client`]
//! pair uses TCP).
//!
//! Every message is a `u32` little-endian length prefix followed by an
//! `omnisim-codec` frame (magic, version, payload, checksum), so a reader
//! can reject junk, truncation and version skew *before* interpreting a
//! single payload byte. Requests and responses share the frame format and
//! differ only in their leading tag byte.
//!
//! Designs travel as their canonical `omnisim-ir` wire encoding; reports
//! travel as [`WireReport`] — the process-independent projection of a
//! `SimReport`: outcome, outputs, cycle count and warnings, plus the
//! server-side per-phase [`SimTimings`] (nanosecond-encoded). Timings are
//! machine-local, so deterministic comparisons against an in-process run
//! go through [`WireReport::without_timings`]; everything else compares
//! bit-for-bit. Backend-specific extras stay off the wire.

use omnisim_analyze::AnalysisReport;
use omnisim_api::{RunConfig, SimOutcome, SimReport, SimTimings};
use omnisim_codec::{frame, unframe, ByteReader, ByteWriter, CodecError};
use omnisim_ir::design::OutputMap;
use omnisim_ir::wire::{decode_design, encode_design};
use omnisim_ir::Design;
use omnisim_obs::{SpanId, TraceContext, TraceId};
use std::collections::BTreeMap;
use std::io::{self, Read, Write};

use crate::service::ServiceStats;
use crate::store::StoreStats;

/// Magic bytes of a wire-protocol message: "OmniSim Wire Message".
pub const WIRE_MAGIC: [u8; 4] = *b"OSWM";
/// Current wire-protocol version. Version 5 added the
/// [`Request::Analyze`]/[`Response::AnalyzeReply`] pair carrying a static
/// [`AnalysisReport`]. Version 4 added the resident DSE program count to
/// the stats frame. Version 2 added per-phase report timings and the
/// [`Request::Metrics`]/[`Response::MetricsReply`] pair; version 3 added
/// the optional [`TraceContext`] carried ahead of every request and the
/// [`Request::Traces`]/[`Response::TracesReply`] pair.
pub const WIRE_VERSION: u16 = 5;
/// Upper bound on a single message, applied before allocating.
pub const MAX_MESSAGE_LEN: u32 = 256 * 1024 * 1024;

/// A client-to-server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Register (compile or warm-start) a design; answered by
    /// [`Response::Registered`] with its content-hash key.
    Register {
        /// The design to register.
        design: Design,
    },
    /// Run a batch of `(design key, run config)` requests; answered by
    /// [`Response::BatchResults`] in request order, or
    /// [`Response::Overloaded`] if admission control rejects the batch.
    RunBatch {
        /// The batch, as raw design keys and per-run parameters.
        requests: Vec<(u64, RunConfig)>,
    },
    /// Fetch the service's counters; answered by [`Response::StatsReply`].
    Stats,
    /// Ask the server to stop accepting connections and exit its serve
    /// loop; answered by [`Response::ShuttingDown`].
    Shutdown,
    /// Scrape the server's full metrics registry; answered by
    /// [`Response::MetricsReply`].
    Metrics,
    /// Fetch the spans of recently kept traces from the server's flight
    /// recorder; answered by [`Response::TracesReply`].
    Traces,
    /// Statically analyze a design (deadlock certificate, depth bounds,
    /// race and lint diagnostics) without simulating it; answered by
    /// [`Response::AnalyzeReply`].
    Analyze {
        /// The design to analyze.
        design: Design,
    },
}

impl Request {
    /// A short static name for this request type — the `type` label of the
    /// server's wire metrics and the name suffix of its request spans.
    pub fn kind(&self) -> &'static str {
        match self {
            Request::Register { .. } => "register",
            Request::RunBatch { .. } => "run_batch",
            Request::Stats => "stats",
            Request::Shutdown => "shutdown",
            Request::Metrics => "metrics",
            Request::Traces => "traces",
            Request::Analyze { .. } => "analyze",
        }
    }
}

/// A server-to-client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The design is registered under this content-hash key.
    Registered {
        /// Raw [`crate::DesignKey`] value.
        key: u64,
    },
    /// One result per batch request, in request order; failures carry the
    /// failure's display string.
    BatchResults {
        /// Per-request outcomes.
        results: Vec<Result<WireReport, String>>,
    },
    /// The service's counters.
    StatsReply {
        /// Snapshot of registry and store counters.
        stats: ServiceStats,
    },
    /// Admission control rejected the batch: accepting it would exceed the
    /// server's in-flight run budget. The client may retry later.
    Overloaded {
        /// The server's in-flight run budget.
        limit: usize,
    },
    /// Acknowledges a [`Request::Shutdown`]; the server exits after
    /// draining open connections.
    ShuttingDown,
    /// The request failed (unknown design, unsupported backend, …).
    Error {
        /// Human-readable failure description.
        message: String,
    },
    /// The server's metrics registry, frozen at scrape time.
    MetricsReply {
        /// An [`omnisim_obs::MetricsSnapshot`] in its structured-JSON
        /// encoding (`MetricsSnapshot::to_json` / `from_json`). JSON, not
        /// a bespoke binary codec, so non-Rust scrapers can consume it
        /// directly.
        snapshot_json: String,
    },
    /// Spans of the server's recently kept traces.
    TracesReply {
        /// The spans in the JSON-Lines encoding of
        /// [`omnisim_obs::to_jsonl`] / [`omnisim_obs::parse_jsonl`] — one
        /// span object per line, grouped back into per-trace trees by
        /// [`omnisim_obs::Trace::group`] on the client. Text, not a
        /// bespoke binary codec, so non-Rust collectors can tail it.
        spans_jsonl: String,
    },
    /// The static analysis of a [`Request::Analyze`] design.
    AnalyzeReply {
        /// The full typed report, in `omnisim-analyze`'s wire encoding.
        report: AnalysisReport,
    },
}

/// The process-independent projection of a `SimReport`, as sent over the
/// wire: everything deterministic (outcome, outputs, cycles, warnings)
/// plus the server-side per-phase timings. Backend-specific extras stay
/// off the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireReport {
    /// Name of the backend that produced the report.
    pub backend: String,
    /// How the run ended.
    pub outcome: WireOutcome,
    /// Final value of every testbench-visible output that was written.
    pub outputs: OutputMap,
    /// End-to-end latency in clock cycles, if the backend models time.
    pub total_cycles: Option<u64>,
    /// Warning messages and how often each occurred.
    pub warnings: BTreeMap<String, usize>,
    /// Per-phase wall-clock breakdown of the run, measured on the server.
    /// Machine-local: zero it via [`WireReport::without_timings`] before
    /// comparing a remote report against an in-process one.
    pub timings: SimTimings,
}

impl WireReport {
    /// This report with its machine-local timings zeroed — the
    /// deterministic projection two processes can compare with `==`.
    pub fn without_timings(mut self) -> WireReport {
        self.timings = SimTimings::default();
        self
    }
}

/// Wire form of a `SimOutcome`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireOutcome {
    /// Every task ran to completion.
    Completed,
    /// A design-level deadlock was detected.
    Deadlock {
        /// One human-readable entry per blocked task/FIFO pair.
        blocked: Vec<String>,
    },
    /// The simulated program itself crashed.
    Crashed {
        /// What went wrong.
        reason: String,
    },
    /// The backend's configured cycle limit was reached before completion.
    CycleLimit {
        /// The configured limit.
        limit: u64,
    },
}

impl From<&SimOutcome> for WireOutcome {
    fn from(outcome: &SimOutcome) -> WireOutcome {
        match outcome {
            SimOutcome::Completed => WireOutcome::Completed,
            SimOutcome::Deadlock { blocked } => WireOutcome::Deadlock {
                blocked: blocked.clone(),
            },
            SimOutcome::Crashed { reason } => WireOutcome::Crashed {
                reason: reason.clone(),
            },
            SimOutcome::CycleLimit { limit } => WireOutcome::CycleLimit { limit: *limit },
            // `SimOutcome` is non-exhaustive; an outcome this protocol
            // version does not know degrades to its description.
            other => WireOutcome::Crashed {
                reason: other.describe(),
            },
        }
    }
}

impl From<&SimReport> for WireReport {
    fn from(report: &SimReport) -> WireReport {
        WireReport {
            backend: report.backend.to_owned(),
            outcome: (&report.outcome).into(),
            outputs: report.outputs.clone(),
            total_cycles: report.total_cycles,
            warnings: report.warnings.clone(),
            timings: report.timings,
        }
    }
}

// Durations cross the wire as u64 nanoseconds: ~584 years of range, far
// beyond any simulation phase, and a fixed-width field either side.
fn write_timings(w: &mut ByteWriter, timings: SimTimings) {
    for phase in [timings.front_end, timings.execution, timings.finalize] {
        w.u64(u64::try_from(phase.as_nanos()).unwrap_or(u64::MAX));
    }
}

fn read_timings(r: &mut ByteReader) -> Result<SimTimings, CodecError> {
    Ok(SimTimings {
        front_end: std::time::Duration::from_nanos(r.u64()?),
        execution: std::time::Duration::from_nanos(r.u64()?),
        finalize: std::time::Duration::from_nanos(r.u64()?),
    })
}

fn write_run_config(w: &mut ByteWriter, config: &RunConfig) {
    w.opt(config.fifo_depths.as_ref(), |w, depths| {
        w.seq(depths.iter(), |w, &depth| w.usize(depth));
    });
    w.opt(config.max_cycles, |w, cycles| w.u64(cycles));
    w.opt(config.fuel, |w, fuel| w.u64(fuel));
}

fn read_run_config(r: &mut ByteReader) -> Result<RunConfig, CodecError> {
    Ok(RunConfig {
        fifo_depths: r.opt(|r| r.seq(|r| r.usize()))?,
        max_cycles: r.opt(|r| r.u64())?,
        fuel: r.opt(|r| r.u64())?,
    })
}

fn write_report(w: &mut ByteWriter, report: &WireReport) {
    w.str(&report.backend);
    match &report.outcome {
        WireOutcome::Completed => w.u8(0),
        WireOutcome::Deadlock { blocked } => {
            w.u8(1);
            w.seq(blocked.iter(), |w, entry| w.str(entry));
        }
        WireOutcome::Crashed { reason } => {
            w.u8(2);
            w.str(reason);
        }
        WireOutcome::CycleLimit { limit } => {
            w.u8(3);
            w.u64(*limit);
        }
    }
    w.seq(report.outputs.iter(), |w, (name, &value)| {
        w.str(name);
        w.i64(value);
    });
    w.opt(report.total_cycles, |w, cycles| w.u64(cycles));
    w.seq(report.warnings.iter(), |w, (message, &count)| {
        w.str(message);
        w.usize(count);
    });
    write_timings(w, report.timings);
}

fn read_report(r: &mut ByteReader) -> Result<WireReport, CodecError> {
    let backend = r.str()?;
    let outcome = match r.u8()? {
        0 => WireOutcome::Completed,
        1 => WireOutcome::Deadlock {
            blocked: r.seq(|r| r.str())?,
        },
        2 => WireOutcome::Crashed { reason: r.str()? },
        3 => WireOutcome::CycleLimit { limit: r.u64()? },
        tag => return Err(CodecError::Invalid(format!("unknown outcome tag {tag}"))),
    };
    let mut outputs = OutputMap::new();
    for _ in 0..r.len()? {
        let name = r.str()?;
        let value = r.i64()?;
        outputs.insert(name, value);
    }
    let total_cycles = r.opt(|r| r.u64())?;
    let mut warnings = BTreeMap::new();
    for _ in 0..r.len()? {
        let message = r.str()?;
        let count = r.usize()?;
        warnings.insert(message, count);
    }
    let timings = read_timings(r)?;
    Ok(WireReport {
        backend,
        outcome,
        outputs,
        total_cycles,
        warnings,
        timings,
    })
}

fn write_store_stats(w: &mut ByteWriter, stats: &StoreStats) {
    w.usize(stats.hits);
    w.usize(stats.misses);
    w.usize(stats.evictions);
    w.u64(stats.evicted_bytes);
    w.usize(stats.entries);
    w.u64(stats.bytes);
}

fn read_store_stats(r: &mut ByteReader) -> Result<StoreStats, CodecError> {
    Ok(StoreStats {
        hits: r.usize()?,
        misses: r.usize()?,
        evictions: r.usize()?,
        evicted_bytes: r.u64()?,
        entries: r.usize()?,
        bytes: r.u64()?,
    })
}

fn write_service_stats(w: &mut ByteWriter, stats: &ServiceStats) {
    w.usize(stats.designs);
    w.usize(stats.compiles);
    w.usize(stats.cache_hits);
    w.usize(stats.warm_starts);
    w.usize(stats.registry_evictions);
    w.usize(stats.dse_programs);
    w.opt(stats.store.as_ref(), write_store_stats);
}

fn read_service_stats(r: &mut ByteReader) -> Result<ServiceStats, CodecError> {
    Ok(ServiceStats {
        designs: r.usize()?,
        compiles: r.usize()?,
        cache_hits: r.usize()?,
        warm_starts: r.usize()?,
        registry_evictions: r.usize()?,
        dse_programs: r.usize()?,
        store: r.opt(read_store_stats)?,
    })
}

// A trace context crosses the wire as two raw u64 IDs plus a flags byte
// (bit 0 = head-sampled). IDs are non-zero by construction, so a zero on
// the wire is a malformed frame, not a valid context.
fn write_trace_context(w: &mut ByteWriter, ctx: TraceContext) {
    w.u64(ctx.trace_id.raw());
    w.u64(ctx.parent_span.raw());
    w.u8(u8::from(ctx.sampled));
}

fn read_trace_context(r: &mut ByteReader) -> Result<TraceContext, CodecError> {
    let trace_id = TraceId::from_raw(r.u64()?)
        .ok_or_else(|| CodecError::Invalid("zero trace id in trace context".into()))?;
    let parent_span = SpanId::from_raw(r.u64()?)
        .ok_or_else(|| CodecError::Invalid("zero parent span in trace context".into()))?;
    let flags = r.u8()?;
    if flags > 1 {
        return Err(CodecError::Invalid(format!(
            "unknown trace-context flags {flags:#04x}"
        )));
    }
    Ok(TraceContext {
        trace_id,
        parent_span,
        sampled: flags & 1 != 0,
    })
}

/// Encodes a request into one framed message (without the length prefix).
/// The optional [`TraceContext`] rides ahead of the request tag, so the
/// server can open its request span under the client's before decoding
/// the (possibly large) request body.
pub fn encode_request(request: &Request, trace: Option<TraceContext>) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.opt(trace, write_trace_context);
    match request {
        Request::Register { design } => {
            w.u8(0);
            w.bytes(&encode_design(design));
        }
        Request::RunBatch { requests } => {
            w.u8(1);
            w.seq(requests.iter(), |w, (key, config)| {
                w.u64(*key);
                write_run_config(w, config);
            });
        }
        Request::Stats => w.u8(2),
        Request::Shutdown => w.u8(3),
        Request::Metrics => w.u8(4),
        Request::Traces => w.u8(5),
        Request::Analyze { design } => {
            w.u8(6);
            w.bytes(&encode_design(design));
        }
    }
    frame(WIRE_MAGIC, WIRE_VERSION, &w.into_bytes())
}

/// Decodes a request (and the trace context it carries, if any) from one
/// framed message.
///
/// # Errors
///
/// Any [`CodecError`] (bad frame, unknown tag, malformed design, zero
/// trace/span IDs).
pub fn decode_request(bytes: &[u8]) -> Result<(Request, Option<TraceContext>), CodecError> {
    let payload = unframe(WIRE_MAGIC, WIRE_VERSION, bytes)?;
    let mut r = ByteReader::new(payload);
    let trace = r.opt(read_trace_context)?;
    let request = match r.u8()? {
        0 => Request::Register {
            design: decode_design(r.bytes()?)?,
        },
        1 => {
            let requests = r.seq(|r| {
                let key = r.u64()?;
                let config = read_run_config(r)?;
                Ok((key, config))
            })?;
            Request::RunBatch { requests }
        }
        2 => Request::Stats,
        3 => Request::Shutdown,
        4 => Request::Metrics,
        5 => Request::Traces,
        6 => Request::Analyze {
            design: decode_design(r.bytes()?)?,
        },
        tag => return Err(CodecError::Invalid(format!("unknown request tag {tag}"))),
    };
    r.finish()?;
    Ok((request, trace))
}

/// Encodes a response into one framed message (without the length prefix).
pub fn encode_response(response: &Response) -> Vec<u8> {
    let mut w = ByteWriter::new();
    match response {
        Response::Registered { key } => {
            w.u8(0);
            w.u64(*key);
        }
        Response::BatchResults { results } => {
            w.u8(1);
            w.seq(results.iter(), |w, result| match result {
                Ok(report) => {
                    w.u8(0);
                    write_report(w, report);
                }
                Err(message) => {
                    w.u8(1);
                    w.str(message);
                }
            });
        }
        Response::StatsReply { stats } => {
            w.u8(2);
            write_service_stats(&mut w, stats);
        }
        Response::Overloaded { limit } => {
            w.u8(3);
            w.usize(*limit);
        }
        Response::ShuttingDown => w.u8(4),
        Response::Error { message } => {
            w.u8(5);
            w.str(message);
        }
        Response::MetricsReply { snapshot_json } => {
            w.u8(6);
            w.str(snapshot_json);
        }
        Response::TracesReply { spans_jsonl } => {
            w.u8(7);
            w.str(spans_jsonl);
        }
        Response::AnalyzeReply { report } => {
            w.u8(8);
            omnisim_analyze::wire::write_report(&mut w, report);
        }
    }
    frame(WIRE_MAGIC, WIRE_VERSION, &w.into_bytes())
}

/// Decodes a response from one framed message.
///
/// # Errors
///
/// Any [`CodecError`] (bad frame, unknown tag).
pub fn decode_response(bytes: &[u8]) -> Result<Response, CodecError> {
    let payload = unframe(WIRE_MAGIC, WIRE_VERSION, bytes)?;
    let mut r = ByteReader::new(payload);
    let response = match r.u8()? {
        0 => Response::Registered { key: r.u64()? },
        1 => {
            let results = r.seq(|r| match r.u8()? {
                0 => Ok(Ok(read_report(r)?)),
                1 => Ok(Err(r.str()?)),
                tag => Err(CodecError::Invalid(format!(
                    "unknown batch-result tag {tag}"
                ))),
            })?;
            Response::BatchResults { results }
        }
        2 => Response::StatsReply {
            stats: read_service_stats(&mut r)?,
        },
        3 => Response::Overloaded { limit: r.usize()? },
        4 => Response::ShuttingDown,
        5 => Response::Error { message: r.str()? },
        6 => Response::MetricsReply {
            snapshot_json: r.str()?,
        },
        7 => Response::TracesReply {
            spans_jsonl: r.str()?,
        },
        8 => Response::AnalyzeReply {
            report: omnisim_analyze::wire::read_report(&mut r)?,
        },
        tag => return Err(CodecError::Invalid(format!("unknown response tag {tag}"))),
    };
    r.finish()?;
    Ok(response)
}

fn codec_io(error: CodecError) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, error.to_string())
}

/// Writes one length-prefixed message to a stream.
///
/// # Errors
///
/// Propagates stream failures; messages over [`MAX_MESSAGE_LEN`] are
/// rejected with [`io::ErrorKind::InvalidData`].
pub fn write_message<W: Write>(stream: &mut W, message: &[u8]) -> io::Result<()> {
    let len = u32::try_from(message.len())
        .ok()
        .filter(|&len| len <= MAX_MESSAGE_LEN)
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("message of {} bytes exceeds the wire limit", message.len()),
            )
        })?;
    stream.write_all(&len.to_le_bytes())?;
    stream.write_all(message)?;
    stream.flush()
}

/// Reads one length-prefixed message from a stream. Returns `Ok(None)` on
/// a clean end-of-stream (the peer closed between messages).
///
/// # Errors
///
/// Propagates stream failures; truncation mid-message and oversized
/// lengths surface as [`io::ErrorKind::UnexpectedEof`] /
/// [`io::ErrorKind::InvalidData`].
pub fn read_message<R: Read>(stream: &mut R) -> io::Result<Option<Vec<u8>>> {
    let mut prefix = [0u8; 4];
    // Distinguish "closed between messages" (clean) from "closed inside a
    // message" (an error): only a zero-byte first read is clean.
    let first = stream.read(&mut prefix)?;
    if first == 0 {
        return Ok(None);
    }
    stream.read_exact(&mut prefix[first..])?;
    let len = u32::from_le_bytes(prefix);
    if len > MAX_MESSAGE_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("incoming message of {len} bytes exceeds the wire limit"),
        ));
    }
    let mut message = vec![0u8; len as usize];
    stream.read_exact(&mut message)?;
    Ok(Some(message))
}

/// Writes one request (length prefix + frame) to a stream, carrying the
/// caller's trace context if one is supplied.
///
/// # Errors
///
/// See [`write_message`].
pub fn write_request<W: Write>(
    stream: &mut W,
    request: &Request,
    trace: Option<TraceContext>,
) -> io::Result<()> {
    write_message(stream, &encode_request(request, trace))
}

/// Reads one request (and its optional trace context) from a stream;
/// `Ok(None)` on clean end-of-stream.
///
/// # Errors
///
/// See [`read_message`]; malformed frames surface as
/// [`io::ErrorKind::InvalidData`].
pub fn read_request<R: Read>(
    stream: &mut R,
) -> io::Result<Option<(Request, Option<TraceContext>)>> {
    match read_message(stream)? {
        None => Ok(None),
        Some(message) => decode_request(&message).map(Some).map_err(codec_io),
    }
}

/// Writes one response (length prefix + frame) to a stream.
///
/// # Errors
///
/// See [`write_message`].
pub fn write_response<W: Write>(stream: &mut W, response: &Response) -> io::Result<()> {
    write_message(stream, &encode_response(response))
}

/// Reads one response from a stream; `Ok(None)` on clean end-of-stream.
///
/// # Errors
///
/// See [`read_message`]; malformed frames surface as
/// [`io::ErrorKind::InvalidData`].
pub fn read_response<R: Read>(stream: &mut R) -> io::Result<Option<Response>> {
    match read_message(stream)? {
        None => Ok(None),
        Some(message) => decode_response(&message).map(Some).map_err(codec_io),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> WireReport {
        let mut outputs = OutputMap::new();
        outputs.insert("sum".into(), -7);
        let mut warnings = BTreeMap::new();
        warnings.insert("read while empty".into(), 2);
        WireReport {
            backend: "omnisim".into(),
            outcome: WireOutcome::Deadlock {
                blocked: vec!["task 'p' blocked writing fifo 'q'".into()],
            },
            outputs,
            total_cycles: Some(99),
            warnings,
            timings: SimTimings {
                front_end: std::time::Duration::from_nanos(12),
                execution: std::time::Duration::from_micros(34),
                finalize: std::time::Duration::from_millis(5),
            },
        }
    }

    #[test]
    fn requests_round_trip() {
        let design = omnisim_designs::typea::vecadd_stream(8, 2);
        let trace = TraceContext {
            trace_id: TraceId::from_raw(0xfeed_beef).unwrap(),
            parent_span: SpanId::from_raw(42).unwrap(),
            sampled: true,
        };
        let requests = vec![
            Request::Register {
                design: design.clone(),
            },
            Request::RunBatch {
                requests: vec![
                    (7, RunConfig::default()),
                    (7, RunConfig::new().with_fifo_depths([3usize]).with_fuel(10)),
                ],
            },
            Request::Stats,
            Request::Shutdown,
            Request::Metrics,
            Request::Traces,
            Request::Analyze { design },
        ];
        for request in requests {
            // Every request type round-trips both bare and with a carried
            // trace context.
            for trace in [None, Some(trace)] {
                let bytes = encode_request(&request, trace);
                assert_eq!(decode_request(&bytes).unwrap(), (request.clone(), trace));
            }
        }
    }

    #[test]
    fn malformed_trace_contexts_are_rejected() {
        let ctx = TraceContext {
            trace_id: TraceId::from_raw(7).unwrap(),
            parent_span: SpanId::from_raw(9).unwrap(),
            sampled: false,
        };
        let good = encode_request(&Request::Stats, Some(ctx));
        assert!(decode_request(&good).is_ok());
        // Re-frame the payload with the trace id zeroed: the context bytes
        // start right after the one-byte present flag.
        let payload = unframe(WIRE_MAGIC, WIRE_VERSION, &good).unwrap();
        let mut tampered = payload.to_vec();
        tampered[1..9].fill(0);
        let reframed = frame(WIRE_MAGIC, WIRE_VERSION, &tampered);
        assert!(decode_request(&reframed).is_err());
    }

    #[test]
    fn responses_round_trip() {
        let responses = vec![
            Response::Registered { key: 0xfeed },
            Response::BatchResults {
                results: vec![Ok(sample_report()), Err("backend 'x' failed: boom".into())],
            },
            Response::StatsReply {
                stats: ServiceStats {
                    designs: 2,
                    compiles: 3,
                    cache_hits: 4,
                    warm_starts: 5,
                    registry_evictions: 6,
                    dse_programs: 7,
                    store: Some(StoreStats {
                        hits: 1,
                        misses: 2,
                        evictions: 3,
                        evicted_bytes: 700,
                        entries: 4,
                        bytes: 5,
                    }),
                },
            },
            Response::Overloaded { limit: 64 },
            Response::ShuttingDown,
            Response::Error {
                message: "no design registered".into(),
            },
            Response::MetricsReply {
                snapshot_json: "{\"metrics\":[]}".into(),
            },
            Response::TracesReply {
                spans_jsonl: "{\"name\":\"x\"}\n".into(),
            },
            Response::AnalyzeReply {
                report: omnisim_analyze::analyze(&omnisim_designs::typea::vecadd_stream(8, 2)),
            },
        ];
        for response in responses {
            let bytes = encode_response(&response);
            assert_eq!(decode_response(&bytes).unwrap(), response);
        }
    }

    #[test]
    fn stream_framing_round_trips_and_detects_truncation() {
        let mut buffer = Vec::new();
        write_request(&mut buffer, &Request::Stats, None).unwrap();
        write_response(&mut buffer, &Response::ShuttingDown).unwrap();
        let mut cursor = &buffer[..];
        assert_eq!(
            read_request(&mut cursor).unwrap(),
            Some((Request::Stats, None))
        );
        assert_eq!(
            read_response(&mut cursor).unwrap(),
            Some(Response::ShuttingDown)
        );
        // Clean end-of-stream.
        assert_eq!(read_request(&mut cursor).unwrap(), None);
        // Truncation inside a message is an error, not a clean close.
        let mut truncated = &buffer[..buffer.len() - 2];
        read_request(&mut truncated).unwrap();
        assert!(read_response(&mut truncated).is_err());
        // A tampered frame is rejected by the checksum.
        let mut tampered = buffer.clone();
        let last = tampered.len() - 9; // inside the second payload
        tampered[last] ^= 0x40;
        let mut cursor = &tampered[..];
        read_request(&mut cursor).unwrap();
        assert!(read_response(&mut cursor).is_err());
    }
}
