//! `SimService`: the concurrent compile-once / run-many serving layer.
//!
//! The expensive half of every query (front-end elaboration, trace or
//! event-graph construction) depends only on the design, so the service
//! keeps a registry of compiled artifacts keyed by design content hash:
//!
//! * [`SimService::register`] content-hashes the design and compiles it
//!   through the configured backend **once**; re-registering the same
//!   design (same structure, any allocation) is a cache hit and returns
//!   the same [`DesignKey`]. With an attached [`ArtifactStore`], a registry
//!   miss first tries to *decode* a previously persisted artifact — a warm
//!   start that skips compilation entirely, even across process restarts.
//! * [`SimService::run`] answers one request against the shared
//!   `Arc<dyn CompiledSim>` artifact — [`CompiledSim`] is `Send + Sync`,
//!   so any number of requests can run concurrently against one artifact.
//! * [`SimService::run_batch`] fans a request list out across scoped
//!   worker threads (the same pool the batch DSE solver uses), with the
//!   worker count tunable via [`SimService::with_workers`] and defaulting
//!   to one per core.
//!
//! [`SimService::with_capacity`] bounds the in-memory registry: inserting
//! past the capacity evicts the least-recently-used design. Evicted
//! artifacts stay in the attached store (if any), so a later register
//! warm-starts from disk instead of recompiling.

use crate::store::ArtifactStore;
use omnisim_api::{CompiledSim, RunConfig, RunPath, SimFailure, SimReport, SimTimings, Simulator};
use omnisim_codec::fnv1a64;
use omnisim_dse::{pool, CompiledPlan, IncrementalOutcome, SweepPlan};
use omnisim_ir::wire::encode_design;
use omnisim_ir::Design;
use omnisim_obs::{Counter, Gauge, Histogram, MetricsRegistry, MetricsSnapshot, Trace, Tracer};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Instant;

/// Handle to a design registered with a [`SimService`] — its content hash.
///
/// Two structurally identical designs (same modules, FIFOs, arrays,
/// schedules and testbench environment) hash to the same key, so callers
/// submitting the same design independently share one compiled artifact.
/// The hash is FNV-1a-64 over the design's canonical wire encoding
/// (`omnisim_ir::wire::encode_design`), so keys are durable: the same
/// design hashes to the same key in every process, which is what lets the
/// [`ArtifactStore`] address artifacts on disk and lets remote clients
/// quote keys over the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DesignKey(u64);

/// Store kind the service persists lowered DSE bytecode programs under
/// (next to the backend-named session artifacts they were lowered from).
const DSE_STORE_KIND: &str = "dse";

impl DesignKey {
    /// The raw 64-bit content hash.
    pub fn raw(&self) -> u64 {
        self.0
    }

    /// Reconstructs a key from its raw hash (e.g. received over the wire).
    pub fn from_raw(raw: u64) -> Self {
        DesignKey(raw)
    }
}

/// Content hash of a design: FNV-1a-64 over its canonical wire encoding.
///
/// Durable across processes and Rust releases — the encoding is the
/// versioned `omnisim-ir` wire format, not an unspecified `Debug`/hasher
/// pair — so the same key addresses the same design in the registry, on
/// disk and over the wire.
pub fn design_key(design: &Design) -> DesignKey {
    DesignKey(fnv1a64(&encode_design(design)))
}

struct Entry {
    artifact: Arc<dyn CompiledSim>,
    last_used: AtomicU64,
}

/// Point-in-time counters of a [`SimService`] (plus its store, if any).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServiceStats {
    /// Designs currently resident in the in-memory registry.
    pub designs: usize,
    /// Compilations performed (registry misses not answered by the store).
    pub compiles: usize,
    /// Register calls answered by the in-memory registry.
    pub cache_hits: usize,
    /// Register calls answered by decoding a persisted artifact.
    pub warm_starts: usize,
    /// Designs evicted from the in-memory registry by the LRU capacity.
    pub registry_evictions: usize,
    /// Lowered DSE bytecode programs currently resident.
    pub dse_programs: usize,
    /// Counters of the attached [`ArtifactStore`], if any.
    pub store: Option<crate::store::StoreStats>,
}

impl ServiceStats {
    /// Fraction of register calls answered without compiling — in-memory
    /// hits plus store warm starts over all resolutions (0.0 before the
    /// first register).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.cache_hits + self.warm_starts + self.compiles;
        if total == 0 {
            0.0
        } else {
            (self.cache_hits + self.warm_starts) as f64 / total as f64
        }
    }
}

/// The service's metric handles, re-buildable against any registry.
#[derive(Debug)]
struct ServiceMetrics {
    register_hit: Counter,
    register_warm: Counter,
    register_compile: Counter,
    register_hit_nanos: Histogram,
    register_warm_nanos: Histogram,
    register_compile_nanos: Histogram,
    dse_hit: Counter,
    dse_warm: Counter,
    dse_compile: Counter,
    dse_points: Histogram,
    analyze_free: Counter,
    analyze_deadlock: Counter,
    analyze_unknown: Counter,
    analyze_nanos: Histogram,
    runs: Counter,
    run_nanos: Histogram,
    batch_size: Histogram,
    batch_nanos: Histogram,
    batch_workers: Gauge,
    registry_evictions: Counter,
    designs: Gauge,
    compile_front_end: Histogram,
    compile_execution: Histogram,
    compile_finalize: Histogram,
    run_execution: Histogram,
    run_finalize: Histogram,
}

impl ServiceMetrics {
    fn bind(registry: &MetricsRegistry) -> Self {
        let register_nanos =
            |outcome| registry.histogram_with("service_register_nanos", &[("outcome", outcome)]);
        let compile_phase =
            |phase| registry.histogram_with("compile_phase_nanos", &[("phase", phase)]);
        let run_phase = |phase| registry.histogram_with("run_phase_nanos", &[("phase", phase)]);
        ServiceMetrics {
            register_hit: registry.counter_with("service_register_total", &[("outcome", "hit")]),
            register_warm: registry.counter_with("service_register_total", &[("outcome", "warm")]),
            register_compile: registry
                .counter_with("service_register_total", &[("outcome", "compile")]),
            register_hit_nanos: register_nanos("hit"),
            register_warm_nanos: register_nanos("warm"),
            register_compile_nanos: register_nanos("compile"),
            dse_hit: registry.counter_with("service_dse_total", &[("outcome", "hit")]),
            dse_warm: registry.counter_with("service_dse_total", &[("outcome", "warm")]),
            dse_compile: registry.counter_with("service_dse_total", &[("outcome", "compile")]),
            dse_points: registry.histogram("service_dse_points"),
            analyze_free: registry
                .counter_with("service_analyze_total", &[("verdict", "certified_free")]),
            analyze_deadlock: registry.counter_with(
                "service_analyze_total",
                &[("verdict", "certified_deadlock")],
            ),
            analyze_unknown: registry
                .counter_with("service_analyze_total", &[("verdict", "unknown")]),
            analyze_nanos: registry.histogram("service_analyze_nanos"),
            runs: registry.counter("service_runs_total"),
            run_nanos: registry.histogram("service_run_nanos"),
            batch_size: registry.histogram("service_batch_size"),
            batch_nanos: registry.histogram("service_batch_nanos"),
            batch_workers: registry.gauge("service_batch_workers"),
            registry_evictions: registry.counter("service_registry_evictions_total"),
            designs: registry.gauge("service_designs_resident"),
            compile_front_end: compile_phase("front_end"),
            compile_execution: compile_phase("execution"),
            compile_finalize: compile_phase("finalize"),
            run_execution: run_phase("execution"),
            run_finalize: run_phase("finalize"),
        }
    }

    fn migrate_counters(&self, fresh: &ServiceMetrics) {
        fresh.register_hit.add(self.register_hit.value());
        fresh.register_warm.add(self.register_warm.value());
        fresh.register_compile.add(self.register_compile.value());
        fresh.dse_hit.add(self.dse_hit.value());
        fresh.dse_warm.add(self.dse_warm.value());
        fresh.dse_compile.add(self.dse_compile.value());
        fresh.analyze_free.add(self.analyze_free.value());
        fresh.analyze_deadlock.add(self.analyze_deadlock.value());
        fresh.analyze_unknown.add(self.analyze_unknown.value());
        fresh.runs.add(self.runs.value());
        fresh
            .registry_evictions
            .add(self.registry_evictions.value());
    }

    fn observe_compile(&self, timings: SimTimings) {
        self.compile_front_end.observe_duration(timings.front_end);
        self.compile_execution.observe_duration(timings.execution);
        self.compile_finalize.observe_duration(timings.finalize);
    }

    // An exactly-zero phase means the backend never timed it (e.g. a
    // cached replay with no execution leg) — skipping it keeps the
    // per-run histograms meaningful and the hot path cheap.
    fn observe_run(&self, timings: SimTimings) {
        if !timings.execution.is_zero() {
            self.run_execution.observe_duration(timings.execution);
        }
        if !timings.finalize.is_zero() {
            self.run_finalize.observe_duration(timings.finalize);
        }
    }
}

/// A concurrent compile-once / run-many simulation service over one
/// backend. See the [module docs](self) for the design.
pub struct SimService {
    backend: Box<dyn Simulator>,
    artifacts: RwLock<HashMap<DesignKey, Entry>>,
    /// Lowered DSE bytecode programs, keyed like the artifacts they were
    /// lowered from. Kept alongside (not inside) the artifact registry:
    /// programs are derived on first use, not at register time, so designs
    /// that never take a DSE query pay nothing.
    dse_programs: RwLock<HashMap<DesignKey, Arc<CompiledPlan>>>,
    workers: Option<usize>,
    capacity: Option<usize>,
    store: Option<ArtifactStore>,
    clock: AtomicU64,
    registry: Arc<MetricsRegistry>,
    metrics: ServiceMetrics,
    tracer: Tracer,
}

impl SimService {
    /// Creates a service over the given backend, with one worker per core
    /// for batched requests, no registry capacity bound and no store.
    pub fn new(backend: Box<dyn Simulator>) -> Self {
        let registry = Arc::new(MetricsRegistry::new());
        let metrics = ServiceMetrics::bind(&registry);
        SimService {
            backend,
            artifacts: RwLock::new(HashMap::new()),
            dse_programs: RwLock::new(HashMap::new()),
            workers: None,
            capacity: None,
            store: None,
            clock: AtomicU64::new(0),
            registry,
            metrics,
            tracer: Tracer::disabled(),
        }
    }

    /// Swaps the service's metrics registry — e.g. for a shared registry
    /// spanning several services, or an
    /// [`omnisim_obs::MetricsRegistry::disabled`] one to measure the
    /// uninstrumented path. Accumulated counter values carry across, and an
    /// attached store is re-homed into the same registry.
    pub fn with_metrics(mut self, registry: Arc<MetricsRegistry>) -> Self {
        let fresh = ServiceMetrics::bind(&registry);
        self.metrics.migrate_counters(&fresh);
        self.metrics = fresh;
        if let Some(store) = &mut self.store {
            store.bind_metrics(Arc::clone(&registry));
        }
        self.registry = registry;
        self
    }

    /// Pins the number of worker threads used by [`SimService::run_batch`]
    /// (clamped to at least one).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers.max(1));
        self
    }

    /// Bounds the in-memory registry to `designs` artifacts (clamped to at
    /// least one); registering past the bound evicts the least-recently-used
    /// design. Evicted artifacts remain in the attached store, so they
    /// warm-start instead of recompiling on their next register.
    pub fn with_capacity(mut self, designs: usize) -> Self {
        self.capacity = Some(designs.max(1));
        self
    }

    /// Attaches a persistent artifact store: registrations consult it
    /// before compiling and persist freshly compiled artifacts into it.
    pub fn with_store(mut self, mut store: ArtifactStore) -> Self {
        store.bind_metrics(Arc::clone(&self.registry));
        store.bind_tracer(self.tracer.clone());
        self.store = Some(store);
        self
    }

    /// Attaches a tracer: register, run and batch calls open
    /// `service_*`/`backend_run` spans under the caller's current span
    /// (or the remote context the server joined), the attached store's
    /// disk operations nest inside them, and the tracer's own counters
    /// (`dropped_spans_total`, kept/discarded traces) are published into
    /// the service's metrics registry.
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        tracer.bind_metrics(&self.registry);
        if let Some(store) = &mut self.store {
            store.bind_tracer(tracer.clone());
        }
        self.tracer = tracer;
        self
    }

    /// The tracer the service records request spans into.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Recently kept traces from the tracer's flight recorder — sampled
    /// survivors grouped into per-trace span trees.
    pub fn recent_traces(&self) -> Vec<Trace> {
        self.tracer.recent_traces()
    }

    /// The metrics registry shared by the service, its store and (when
    /// served over TCP) the wire layer.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// Name of the backend this service compiles and runs with.
    pub fn backend_name(&self) -> &'static str {
        self.backend.name()
    }

    /// The attached artifact store, if any.
    pub fn store(&self) -> Option<&ArtifactStore> {
        self.store.as_ref()
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    /// Registers a design: compiles it if its content hash is new, returns
    /// the existing artifact's key otherwise.
    ///
    /// Resolution order on a registry miss: with a store attached, a
    /// persisted artifact is loaded and decoded (a *warm start*); a
    /// truncated, corrupted or version-mismatched artifact falls back to a
    /// fresh compile, removing the bad file so the new encoding replaces
    /// it. Freshly compiled artifacts of serializable backends are encoded
    /// and persisted.
    ///
    /// Compilation happens outside the registry lock, so registering a new
    /// design never blocks concurrent [`SimService::run`] calls (two
    /// concurrent first registrations of the same design may both compile;
    /// artifacts are deterministic, so either result is kept).
    ///
    /// # Errors
    ///
    /// Propagates the backend's [`Simulator::compile`] failure
    /// ([`SimFailure::Unsupported`] designs are not cached — a later
    /// register retries).
    pub fn register(&self, design: &Design) -> Result<DesignKey, SimFailure> {
        let started = Instant::now();
        let key = design_key(design);
        let mut tspan = self.tracer.span("service_register");
        tspan.set_attr("design_key", format!("{:#018x}", key.raw()));
        if let Some(entry) = self
            .artifacts
            .read()
            .expect("service registry poisoned")
            .get(&key)
        {
            entry.last_used.store(self.tick(), Ordering::Relaxed);
            self.metrics.register_hit.inc();
            self.metrics
                .register_hit_nanos
                .observe_duration(started.elapsed());
            tspan.set_attr("outcome", "hit");
            return Ok(key);
        }
        if let Some(store) = &self.store {
            if let Some(bytes) = store.load(self.backend.name(), key.raw()) {
                match self.backend.decode_artifact(design, &bytes) {
                    Ok(artifact) => {
                        self.metrics.register_warm.inc();
                        self.install(key, Arc::from(artifact));
                        self.metrics
                            .register_warm_nanos
                            .observe_duration(started.elapsed());
                        tspan.set_attr("outcome", "warm");
                        return Ok(key);
                    }
                    // A bad persisted artifact must never take the service
                    // down: drop the file and recompile below.
                    Err(_) => store.remove(self.backend.name(), key.raw()),
                }
            }
        }
        let artifact: Arc<dyn CompiledSim> = match self.backend.compile(design) {
            Ok(artifact) => Arc::from(artifact),
            Err(failure) => {
                tspan.set_attr("outcome", "rejected");
                return Err(failure);
            }
        };
        self.metrics.register_compile.inc();
        self.metrics.observe_compile(artifact.compile_timings());
        if let Some(store) = &self.store {
            if let Some(bytes) = artifact.encode() {
                // Persisting is best-effort: a full disk degrades warm
                // starts, it does not fail registration.
                let _ = store.save(self.backend.name(), key.raw(), &bytes);
            }
        }
        self.install(key, artifact);
        self.metrics
            .register_compile_nanos
            .observe_duration(started.elapsed());
        tspan.set_attr("outcome", "compile");
        Ok(key)
    }

    /// Statically analyzes a design — deadlock certificate, FIFO depth
    /// lower bounds, race and lint diagnostics — without compiling or
    /// simulating anything.
    ///
    /// The analyzer is pure CPU work over the design's structure, so this
    /// takes no registry locks, touches no artifact and never fails;
    /// clients use it as a cheap pre-flight before paying for a register
    /// (a `certified-deadlock` design will never complete on any backend).
    /// Outcomes are counted in `service_analyze_total` (labelled by
    /// verdict) and timed in `service_analyze_nanos`.
    pub fn analyze(&self, design: &Design) -> omnisim_analyze::AnalysisReport {
        let started = Instant::now();
        let mut tspan = self.tracer.span("service_analyze");
        let report = omnisim_analyze::analyze(design);
        match report.verdict {
            omnisim_analyze::DeadlockVerdict::CertifiedFree => self.metrics.analyze_free.inc(),
            omnisim_analyze::DeadlockVerdict::CertifiedDeadlock => {
                self.metrics.analyze_deadlock.inc()
            }
            omnisim_analyze::DeadlockVerdict::Unknown => self.metrics.analyze_unknown.inc(),
        }
        self.metrics
            .analyze_nanos
            .observe_duration(started.elapsed());
        tspan.set_attr("verdict", report.verdict.to_string());
        tspan.set_attr("diagnostics", report.diagnostics.len().to_string());
        report
    }

    fn install(&self, key: DesignKey, artifact: Arc<dyn CompiledSim>) {
        let mut evicted = Vec::new();
        {
            let mut map = self.artifacts.write().expect("service registry poisoned");
            map.entry(key).or_insert_with(|| Entry {
                artifact,
                last_used: AtomicU64::new(self.tick()),
            });
            if let Some(capacity) = self.capacity {
                while map.len() > capacity {
                    let victim = map
                        .iter()
                        .filter(|(candidate, _)| **candidate != key)
                        .min_by_key(|(_, entry)| entry.last_used.load(Ordering::Relaxed))
                        .map(|(candidate, _)| *candidate);
                    let Some(victim) = victim else { break };
                    map.remove(&victim);
                    self.metrics.registry_evictions.inc();
                    evicted.push(victim);
                }
            }
            self.metrics.designs.set(map.len() as i64);
        }
        // An evicted design takes its derived DSE program with it, so the
        // capacity bound bounds both registries. (Locks are never nested
        // the other way around: DSE resolution drops the program lock
        // before touching the artifact registry.)
        if !evicted.is_empty() {
            let mut programs = self
                .dse_programs
                .write()
                .expect("service dse registry poisoned");
            for victim in evicted {
                programs.remove(&victim);
            }
        }
    }

    /// The shared artifact for a registered design, if present. Callers can
    /// hold the `Arc` and run against it directly (e.g. to downcast the
    /// engine's artifact into a DSE `SweepPlan`).
    pub fn artifact(&self, key: DesignKey) -> Option<Arc<dyn CompiledSim>> {
        let map = self.artifacts.read().expect("service registry poisoned");
        let entry = map.get(&key)?;
        entry.last_used.store(self.tick(), Ordering::Relaxed);
        Some(Arc::clone(&entry.artifact))
    }

    /// Resolves the lowered DSE bytecode program of a registered design
    /// ([`CompiledPlan`]), lowering and caching it on first use.
    ///
    /// Resolution order mirrors [`SimService::register`]: the in-memory
    /// program cache first; then, with a store attached, a persisted
    /// program is decoded (a warm start that skips both simulation and
    /// lowering, even across process restarts — a corrupt file falls
    /// through and is replaced); finally the resident session artifact is
    /// frozen through [`SweepPlan::from_compiled`] and lowered with
    /// [`SweepPlan::compile_bytecode`], and the fresh encoding is
    /// persisted best-effort under the store kind `"dse"`.
    ///
    /// Two concurrent first resolutions may both lower; programs are
    /// deterministic, so either result is kept.
    ///
    /// # Errors
    ///
    /// Returns [`SimFailure::Execution`] for an unknown key or a cyclic
    /// baseline, and [`SimFailure::Unsupported`] when the backend's
    /// artifact carries no frozen incremental state to lower (see
    /// `Capabilities::compiled_dse`).
    pub fn dse_program(&self, key: DesignKey) -> Result<Arc<CompiledPlan>, SimFailure> {
        let mut tspan = self.tracer.span("service_dse_program");
        if let Some(program) = self
            .dse_programs
            .read()
            .expect("service dse registry poisoned")
            .get(&key)
        {
            self.metrics.dse_hit.inc();
            tspan.set_attr("outcome", "hit");
            return Ok(Arc::clone(program));
        }
        if let Some(store) = &self.store {
            if let Some(bytes) = store.load(DSE_STORE_KIND, key.raw()) {
                match CompiledPlan::decode(&bytes) {
                    Ok(program) => {
                        let program = Arc::new(program);
                        self.metrics.dse_warm.inc();
                        self.install_program(key, Arc::clone(&program));
                        tspan.set_attr("outcome", "warm");
                        return Ok(program);
                    }
                    // Same discipline as artifacts: a bad persisted
                    // program must never take the service down.
                    Err(_) => store.remove(DSE_STORE_KIND, key.raw()),
                }
            }
        }
        let Some(artifact) = self.artifact(key) else {
            tspan.set_attr("outcome", "unknown_key");
            return Err(SimFailure::execution(
                self.backend.name(),
                format!("no design registered under key {:#018x}", key.raw()),
            ));
        };
        let Some(plan) = SweepPlan::from_compiled(artifact.as_ref()) else {
            tspan.set_attr("outcome", "unsupported");
            return Err(SimFailure::unsupported(
                self.backend.name(),
                "artifact carries no frozen incremental state to lower into a DSE program",
            ));
        };
        let plan = match plan {
            Ok(plan) => plan,
            Err(cycle) => {
                tspan.set_attr("outcome", "rejected");
                return Err(SimFailure::execution(
                    self.backend.name(),
                    cycle.to_string(),
                ));
            }
        };
        let program = Arc::new(plan.compile_bytecode());
        self.metrics.dse_compile.inc();
        if let Some(store) = &self.store {
            // Best-effort, like artifact persistence.
            let _ = store.save(DSE_STORE_KIND, key.raw(), &program.encode());
        }
        self.install_program(key, Arc::clone(&program));
        tspan.set_attr("outcome", "compile");
        Ok(program)
    }

    fn install_program(&self, key: DesignKey, program: Arc<CompiledPlan>) {
        self.dse_programs
            .write()
            .expect("service dse registry poisoned")
            .entry(key)
            .or_insert(program);
    }

    /// Evaluates a batch of FIFO-depth points against a registered
    /// design's DSE program, in request order — the serving-tier face of
    /// [`CompiledPlan::evaluate_batch`]. The service's pinned worker count
    /// ([`SimService::with_workers`]) is honored; without one the program
    /// decides serial vs. parallel from the batch's estimated work.
    ///
    /// # Errors
    ///
    /// Program-resolution failures as in [`SimService::dse_program`]; a
    /// wrong-arity or zero-depth point maps to [`SimFailure::Execution`]
    /// and fails the batch as a whole.
    pub fn dse_batch<P>(
        &self,
        key: DesignKey,
        points: &[P],
    ) -> Result<Vec<IncrementalOutcome>, SimFailure>
    where
        P: AsRef<[usize]> + Sync,
    {
        let mut tspan = self.tracer.span("service_dse_batch");
        tspan.set_attr("points", points.len());
        let program = self.dse_program(key)?;
        self.metrics.dse_points.observe(points.len() as u64);
        let result = match self.workers {
            Some(workers) => program.evaluate_batch_workers(points, workers),
            None => program.evaluate_batch(points, true),
        };
        match result {
            Ok(outcomes) => {
                tspan.set_attr("outcome", "ok");
                Ok(outcomes)
            }
            Err(error) => {
                tspan.set_attr("outcome", "invalid_point");
                Err(SimFailure::execution(
                    self.backend.name(),
                    error.to_string(),
                ))
            }
        }
    }

    /// Serves one run request against a registered design.
    ///
    /// # Errors
    ///
    /// Returns [`SimFailure::Execution`] for an unknown key, and the
    /// artifact's own failure otherwise.
    pub fn run(&self, key: DesignKey, config: &RunConfig) -> Result<SimReport, SimFailure> {
        let span = self.metrics.run_nanos.span();
        // A fragment root: under `run_batch` each request settles into
        // the flight recorder as its own small fragment when it finishes
        // (still parented under the batch span), rather than thousands of
        // request spans accumulating under the batch root.
        let mut tspan = self.tracer.span_fragment("service_run");
        let Some(artifact) = self.artifact(key) else {
            // The key only goes on the span when something needs
            // explaining — formatting it on every run is measurable at
            // replay throughput.
            tspan.set_attr("design_key", format!("{:#018x}", key.raw()));
            tspan.set_attr("outcome", "unknown_key");
            return Err(SimFailure::execution(
                self.backend.name(),
                format!("no design registered under key {:#018x}", key.raw()),
            ));
        };
        let mut run_span = self.tracer.span("backend_run");
        run_span.set_attr("backend", artifact.backend());
        let result = artifact.run(config);
        match &result {
            Ok(report) => {
                // Which engine path answered this run (certified replay,
                // re-finalize, full re-simulation, …) — the per-run view of
                // the cumulative `CompiledSim::counters` scraped below.
                if let Some(path) = report.extras.get::<RunPath>() {
                    run_span.set_attr("path", path.as_str());
                }
                run_span.set_attr("outcome", "ok");
            }
            Err(failure) => run_span.set_attr(
                "outcome",
                if failure.is_unsupported() {
                    "unsupported"
                } else {
                    "failed"
                },
            ),
        }
        for (event, count) in artifact.counters() {
            run_span.set_attr(event, count);
        }
        run_span.finish();
        let report = result?;
        self.metrics.runs.inc();
        self.metrics.observe_run(report.timings);
        tspan.set_attr("outcome", "ok");
        span.finish();
        Ok(report)
    }

    /// Serves a batch of run requests across scoped worker threads,
    /// returning one result per request in request order. Requests may mix
    /// designs and run configurations freely.
    pub fn run_batch(
        &self,
        requests: &[(DesignKey, RunConfig)],
    ) -> Vec<Result<SimReport, SimFailure>> {
        let span = self.metrics.batch_nanos.span();
        let mut tspan = self.tracer.span("service_run_batch");
        tspan.set_attr("requests", requests.len());
        let workers = pool::resolve_workers(self.workers);
        self.metrics.batch_size.observe(requests.len() as u64);
        self.metrics.batch_workers.set(workers as i64);
        // Each pool worker re-attaches the batch span's context, so the
        // per-request `service_run` spans land under this batch span even
        // though they record from other threads.
        let context = self.tracer.local_context();
        let results = pool::parallel_map(requests, workers, |(key, config)| {
            let _guard = context.map(|context| self.tracer.attach(context));
            self.run(*key, config)
        });
        span.finish();
        results
    }

    /// Number of designs currently registered.
    pub fn len(&self) -> usize {
        self.artifacts
            .read()
            .expect("service registry poisoned")
            .len()
    }

    /// True if no design has been registered yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of compilations performed (registry misses not answered by
    /// the store).
    pub fn compiles(&self) -> usize {
        self.metrics.register_compile.value() as usize
    }

    /// Number of [`SimService::register`] calls answered from the registry.
    pub fn cache_hits(&self) -> usize {
        self.metrics.register_hit.value() as usize
    }

    /// Number of [`SimService::register`] calls answered by decoding a
    /// persisted artifact instead of compiling.
    pub fn warm_starts(&self) -> usize {
        self.metrics.register_warm.value() as usize
    }

    /// Number of designs evicted from the in-memory registry by the LRU
    /// capacity bound.
    pub fn registry_evictions(&self) -> usize {
        self.metrics.registry_evictions.value() as usize
    }

    /// Number of lowered DSE bytecode programs currently resident.
    pub fn dse_programs(&self) -> usize {
        self.dse_programs
            .read()
            .expect("service dse registry poisoned")
            .len()
    }

    /// A point-in-time snapshot of every counter, including the attached
    /// store's.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            designs: self.len(),
            compiles: self.compiles(),
            cache_hits: self.cache_hits(),
            warm_starts: self.warm_starts(),
            registry_evictions: self.registry_evictions(),
            dse_programs: self.dse_programs(),
            store: self.store.as_ref().map(ArtifactStore::stats),
        }
    }

    /// Freezes the shared metrics registry, first scraping every resident
    /// artifact's engine-level [`CompiledSim::counters`] (which run path
    /// answered each request: certified replay, re-finalize, re-simulation
    /// fallback, …) into `engine_events{backend=…,event=…}` gauges. Gauges,
    /// not counters: artifacts evicted from the LRU registry take their
    /// lifetime totals with them, so the scrape is a point-in-time view of
    /// the resident set.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        if self.registry.is_enabled() {
            let mut totals: BTreeMap<&'static str, u64> = BTreeMap::new();
            let map = self.artifacts.read().expect("service registry poisoned");
            for entry in map.values() {
                for (event, count) in entry.artifact.counters() {
                    *totals.entry(event).or_insert(0) += count;
                }
            }
            drop(map);
            for (event, total) in totals {
                self.registry
                    .gauge_with(
                        "engine_events",
                        &[("backend", self.backend.name()), ("event", event)],
                    )
                    .set(total as i64);
            }
        }
        self.registry.snapshot()
    }
}

impl std::fmt::Debug for SimService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimService")
            .field("backend", &self.backend.name())
            .field("designs", &self.len())
            .field("compiles", &self.compiles())
            .field("cache_hits", &self.cache_hits())
            .field("warm_starts", &self.warm_starts())
            .field("registry_evictions", &self.registry_evictions())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omnisim::OmniBackend;
    use omnisim_designs::{fig4, typea};
    use std::path::PathBuf;

    fn service() -> SimService {
        SimService::new(Box::new(OmniBackend::default()))
    }

    fn temp_dir(tag: &str) -> PathBuf {
        use std::sync::atomic::AtomicUsize;
        static UNIQUE: AtomicUsize = AtomicUsize::new(0);
        let n = UNIQUE.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("omnisim-svc-dse-{tag}-{}-{n}", std::process::id()))
    }

    #[test]
    fn registering_the_same_design_compiles_once() {
        let service = service();
        assert!(service.is_empty());
        let design = typea::vecadd_stream(24, 2);
        let key = service.register(&design).unwrap();
        // A structurally identical, separately-built design shares the key.
        let again = service.register(&typea::vecadd_stream(24, 2)).unwrap();
        assert_eq!(key, again);
        assert_eq!(service.len(), 1);
        assert_eq!(service.compiles(), 1);
        assert_eq!(service.cache_hits(), 1);
        // A different design gets its own artifact.
        let other = service.register(&typea::vecadd_stream(25, 2)).unwrap();
        assert_ne!(key, other);
        assert_eq!(service.compiles(), 2);
    }

    #[test]
    fn design_keys_are_durable_content_hashes() {
        let design = typea::vecadd_stream(24, 2);
        let key = design_key(&design);
        // Recomputing from scratch (fresh allocations) reproduces the key…
        assert_eq!(design_key(&typea::vecadd_stream(24, 2)), key);
        // …and it matches the documented definition, so on-disk artifact
        // names are reproducible in any process.
        assert_eq!(key.raw(), fnv1a64(&encode_design(&design)));
        assert_eq!(DesignKey::from_raw(key.raw()), key);
    }

    #[test]
    fn run_answers_requests_and_rejects_unknown_keys() {
        let service = service();
        let design = typea::vecadd_stream(24, 2);
        let key = service.register(&design).unwrap();
        let report = service.run(key, &RunConfig::default()).unwrap();
        assert!(report.outcome.is_completed());

        let bogus = DesignKey(0xdead_beef);
        let failure = service.run(bogus, &RunConfig::default()).unwrap_err();
        assert!(failure.to_string().contains("no design registered"));
    }

    #[test]
    fn batched_requests_match_sequential_runs_at_any_worker_count() {
        let design = typea::vecadd_stream(32, 2);
        let fifos = design.fifos.len();
        let requests: Vec<(DesignKey, RunConfig)> = {
            let service = service();
            let key = service.register(&design).unwrap();
            (1..=6)
                .map(|d| (key, RunConfig::new().with_fifo_depths(vec![d; fifos])))
                .collect()
        };
        let mut per_worker_counts: Vec<Vec<Option<u64>>> = Vec::new();
        for workers in [1usize, 3, 8] {
            let service = service().with_workers(workers);
            service.register(&design).unwrap();
            let reports = service.run_batch(&requests);
            per_worker_counts.push(
                reports
                    .into_iter()
                    .map(|r| r.unwrap().total_cycles)
                    .collect(),
            );
        }
        assert_eq!(per_worker_counts[0], per_worker_counts[1]);
        assert_eq!(per_worker_counts[0], per_worker_counts[2]);
    }

    #[test]
    fn rejected_designs_are_not_cached() {
        let service = SimService::new(Box::new(omnisim_lightning::LightningBackend));
        // Type C: lightning refuses to compile it.
        let design = omnisim_designs::fig4::ex5_with_depths(32, 2, 2);
        let failure = service.register(&design).unwrap_err();
        assert!(failure.is_unsupported());
        assert!(service.is_empty());
        assert_eq!(service.compiles(), 0);
    }

    #[test]
    fn capacity_evicts_least_recently_used_design() {
        let service = service().with_capacity(2);
        let designs: Vec<_> = (0..3).map(|i| typea::vecadd_stream(16 + i, 2)).collect();
        let a = service.register(&designs[0]).unwrap();
        let b = service.register(&designs[1]).unwrap();
        // Touch `a` so `b` becomes the LRU victim.
        assert!(service.artifact(a).is_some());
        let c = service.register(&designs[2]).unwrap();
        assert_eq!(service.len(), 2);
        assert_eq!(service.registry_evictions(), 1);
        assert!(service.artifact(a).is_some(), "recently used survives");
        assert!(service.artifact(b).is_none(), "LRU design evicted");
        assert!(service.artifact(c).is_some(), "new design resident");
        // Re-registering the evicted design recompiles (no store attached).
        service.register(&designs[1]).unwrap();
        assert_eq!(service.compiles(), 4);
        let stats = service.stats();
        assert_eq!(stats.designs, 2);
        assert_eq!(stats.registry_evictions, 2);
        assert_eq!(stats.store, None);
    }

    #[test]
    fn metrics_snapshot_covers_service_and_engine_layers() {
        let service = service();
        let design = typea::vecadd_stream(24, 2);
        let key = service.register(&design).unwrap();
        service.register(&design).unwrap();
        service.run(key, &RunConfig::default()).unwrap();
        service
            .run_batch(&[(key, RunConfig::default()), (key, RunConfig::default())])
            .into_iter()
            .for_each(|r| assert!(r.is_ok()));

        let snapshot = service.metrics_snapshot();
        let outcome = |o| snapshot.counter_with("service_register_total", &[("outcome", o)]);
        assert_eq!(outcome("compile"), Some(1));
        assert_eq!(outcome("hit"), Some(1));
        // All outcome series are pre-registered at bind time, so a scraper
        // sees a stable schema; unused outcomes read zero, not absent.
        assert_eq!(outcome("warm"), Some(0), "no store, no warm starts");
        assert_eq!(snapshot.counter("service_runs_total"), Some(3));
        let runs = snapshot.histogram("service_run_nanos").unwrap();
        assert_eq!(runs.count, 3);
        let batch = snapshot.histogram("service_batch_size").unwrap();
        assert_eq!((batch.count, batch.min, batch.max), (1, 2, 2));
        assert_eq!(snapshot.gauge("service_designs_resident"), Some(1));
        // Compile phases were observed once, run phases once per run.
        let phase = |p| snapshot.histogram_with("compile_phase_nanos", &[("phase", p)]);
        assert_eq!(phase("front_end").unwrap().count, 1);
        assert_eq!(phase("execution").unwrap().count, 1);
        // Engine-level path counters surface as gauges: one baseline replay
        // (the first default run) and the rest answered by the engine's own
        // dispatch — their sum is the run count.
        let event = |e| {
            snapshot
                .gauge_with("engine_events", &[("backend", "omnisim"), ("event", e)])
                .unwrap_or(0)
        };
        let total = event("baseline_replays") + event("refinalizes") + event("resim_fallbacks");
        assert_eq!(total, 3);

        // `hit_ratio` summarizes the same counters the snapshot carries.
        let stats = service.stats();
        assert!((stats.hit_ratio() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn with_metrics_rehomes_counters_and_disables_cleanly() {
        let design = typea::vecadd_stream(24, 2);
        let service = service();
        service.register(&design).unwrap();
        // Swapping registries mid-life carries the accumulated counts over.
        let shared = Arc::new(MetricsRegistry::new());
        let service = service.with_metrics(Arc::clone(&shared));
        service.register(&design).unwrap();
        assert_eq!(service.compiles(), 1);
        assert_eq!(service.cache_hits(), 1);
        let snapshot = shared.snapshot();
        assert_eq!(
            snapshot.counter_with("service_register_total", &[("outcome", "compile")]),
            Some(1)
        );

        // A disabled registry records nothing but the service still works.
        let dark = SimService::new(Box::new(OmniBackend::default()))
            .with_metrics(Arc::new(MetricsRegistry::disabled()));
        let key = dark.register(&design).unwrap();
        dark.run(key, &RunConfig::default()).unwrap();
        assert!(dark.metrics_snapshot().samples.is_empty());
        // Registry-backed accessors read zero when dark — the documented
        // cost of running uninstrumented.
        assert_eq!(dark.compiles(), 0);
    }

    #[test]
    fn dse_batch_matches_engine_runs_and_caches_the_program() {
        let service = service();
        let design = fig4::ex5_with_depths(32, 2, 2);
        let key = service.register(&design).unwrap();
        let points: Vec<[usize; 2]> = (1..=6).flat_map(|a| (1..=4).map(move |b| [a, b])).collect();
        let outcomes = service.dse_batch(key, &points).unwrap();
        assert_eq!(outcomes.len(), points.len());
        // Every certified-valid point agrees with a full engine run of the
        // same depth vector — the serving tier's differential anchor.
        let mut valid = 0;
        for (point, outcome) in points.iter().zip(&outcomes) {
            if let IncrementalOutcome::Valid { total_cycles } = outcome {
                valid += 1;
                let config = RunConfig::new().with_fifo_depths(point.to_vec());
                let report = service.run(key, &config).unwrap();
                assert_eq!(report.total_cycles, Some(*total_cycles), "point {point:?}");
            }
        }
        assert!(valid > 0, "grid must certify at least one point");

        // The second batch reuses the cached program; both observations
        // land in the DSE metrics.
        assert_eq!(service.dse_programs(), 1);
        assert_eq!(service.stats().dse_programs, 1);
        assert_eq!(service.dse_batch(key, &points).unwrap(), outcomes);
        let snapshot = service.metrics_snapshot();
        let outcome = |o| snapshot.counter_with("service_dse_total", &[("outcome", o)]);
        assert_eq!(outcome("compile"), Some(1));
        assert_eq!(outcome("hit"), Some(1));
        assert_eq!(outcome("warm"), Some(0), "no store, no warm starts");
        let points_hist = snapshot.histogram("service_dse_points").unwrap();
        assert_eq!(points_hist.count, 2);

        // A malformed point fails the batch as a whole, cleanly.
        let failure = service.dse_batch(key, &[vec![1usize]]).unwrap_err();
        assert!(failure.to_string().contains("compiled for"), "{failure}");
    }

    #[test]
    fn dse_program_rejects_unknown_keys_and_non_omni_artifacts() {
        let service = service();
        let failure = service
            .dse_batch(DesignKey(0xbad), &[[1usize, 1]])
            .unwrap_err();
        assert!(failure.to_string().contains("no design registered"));

        // Lightning artifacts carry no frozen incremental state to lower.
        let lightning = SimService::new(Box::new(omnisim_lightning::LightningBackend));
        let key = lightning.register(&typea::vecadd_stream(24, 2)).unwrap();
        let failure = lightning.dse_program(key).unwrap_err();
        assert!(failure.is_unsupported());
        assert_eq!(lightning.dse_programs(), 0);
    }

    #[test]
    fn dse_programs_warm_start_from_the_store_across_restarts() {
        let dir = temp_dir("warm");
        let design = fig4::ex5_with_depths(24, 2, 2);
        let points = [[2usize, 2], [3, 1], [1, 4]];
        let key;
        let baseline;
        {
            let first = service().with_store(ArtifactStore::open(&dir).unwrap());
            key = first.register(&design).unwrap();
            baseline = first.dse_batch(key, &points).unwrap();
        }
        // A fresh service over the same store answers from the persisted
        // program — no registration, no simulation, no re-lowering.
        let second = service().with_store(ArtifactStore::open(&dir).unwrap());
        assert_eq!(second.dse_batch(key, &points).unwrap(), baseline);
        let snapshot = second.metrics_snapshot();
        let outcome = |o| snapshot.counter_with("service_dse_total", &[("outcome", o)]);
        assert_eq!(outcome("warm"), Some(1), "program decoded from the store");
        assert_eq!(outcome("compile"), Some(0), "no re-lowering after restart");

        // A corrupt persisted program falls through to a fresh lowering
        // (after re-registering the design) and replaces the bad file.
        let store = ArtifactStore::open(&dir).unwrap();
        store.save(DSE_STORE_KIND, key.raw(), b"garbage").unwrap();
        let third = service().with_store(store);
        third.register(&design).unwrap();
        assert_eq!(third.dse_batch(key, &points).unwrap(), baseline);
        let snapshot = third.metrics_snapshot();
        assert_eq!(
            snapshot.counter_with("service_dse_total", &[("outcome", "compile")]),
            Some(1)
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn evicting_a_design_purges_its_dse_program() {
        let service = service().with_capacity(1);
        let key = service.register(&fig4::ex5_with_depths(16, 2, 2)).unwrap();
        service.dse_batch(key, &[[1usize, 1]]).unwrap();
        assert_eq!(service.dse_programs(), 1);
        // Registering a second design evicts the first — and its program.
        service.register(&typea::vecadd_stream(16, 2)).unwrap();
        assert_eq!(service.dse_programs(), 0, "program evicted with its design");
        // With no store attached, the evicted key cannot be resolved.
        let failure = service.dse_program(key).unwrap_err();
        assert!(failure.to_string().contains("no design registered"));
    }
}
