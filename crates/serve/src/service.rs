//! `SimService`: the concurrent compile-once / run-many serving layer.
//!
//! The expensive half of every query (front-end elaboration, trace or
//! event-graph construction) depends only on the design, so the service
//! keeps a registry of compiled artifacts keyed by design content hash:
//!
//! * [`SimService::register`] content-hashes the design and compiles it
//!   through the configured backend **once**; re-registering the same
//!   design (same structure, any allocation) is a cache hit and returns
//!   the same [`DesignKey`]. With an attached [`ArtifactStore`], a registry
//!   miss first tries to *decode* a previously persisted artifact — a warm
//!   start that skips compilation entirely, even across process restarts.
//! * [`SimService::run`] answers one request against the shared
//!   `Arc<dyn CompiledSim>` artifact — [`CompiledSim`] is `Send + Sync`,
//!   so any number of requests can run concurrently against one artifact.
//! * [`SimService::run_batch`] fans a request list out across scoped
//!   worker threads (the same pool the batch DSE solver uses), with the
//!   worker count tunable via [`SimService::with_workers`] and defaulting
//!   to one per core.
//!
//! [`SimService::with_capacity`] bounds the in-memory registry: inserting
//! past the capacity evicts the least-recently-used design. Evicted
//! artifacts stay in the attached store (if any), so a later register
//! warm-starts from disk instead of recompiling.

use crate::store::ArtifactStore;
use omnisim_api::{CompiledSim, RunConfig, SimFailure, SimReport, Simulator};
use omnisim_codec::fnv1a64;
use omnisim_dse::pool;
use omnisim_ir::wire::encode_design;
use omnisim_ir::Design;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};

/// Handle to a design registered with a [`SimService`] — its content hash.
///
/// Two structurally identical designs (same modules, FIFOs, arrays,
/// schedules and testbench environment) hash to the same key, so callers
/// submitting the same design independently share one compiled artifact.
/// The hash is FNV-1a-64 over the design's canonical wire encoding
/// (`omnisim_ir::wire::encode_design`), so keys are durable: the same
/// design hashes to the same key in every process, which is what lets the
/// [`ArtifactStore`] address artifacts on disk and lets remote clients
/// quote keys over the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DesignKey(u64);

impl DesignKey {
    /// The raw 64-bit content hash.
    pub fn raw(&self) -> u64 {
        self.0
    }

    /// Reconstructs a key from its raw hash (e.g. received over the wire).
    pub fn from_raw(raw: u64) -> Self {
        DesignKey(raw)
    }
}

/// Content hash of a design: FNV-1a-64 over its canonical wire encoding.
///
/// Durable across processes and Rust releases — the encoding is the
/// versioned `omnisim-ir` wire format, not an unspecified `Debug`/hasher
/// pair — so the same key addresses the same design in the registry, on
/// disk and over the wire.
pub fn design_key(design: &Design) -> DesignKey {
    DesignKey(fnv1a64(&encode_design(design)))
}

struct Entry {
    artifact: Arc<dyn CompiledSim>,
    last_used: AtomicU64,
}

/// Point-in-time counters of a [`SimService`] (plus its store, if any).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServiceStats {
    /// Designs currently resident in the in-memory registry.
    pub designs: usize,
    /// Compilations performed (registry misses not answered by the store).
    pub compiles: usize,
    /// Register calls answered by the in-memory registry.
    pub cache_hits: usize,
    /// Register calls answered by decoding a persisted artifact.
    pub warm_starts: usize,
    /// Designs evicted from the in-memory registry by the LRU capacity.
    pub registry_evictions: usize,
    /// Counters of the attached [`ArtifactStore`], if any.
    pub store: Option<crate::store::StoreStats>,
}

/// A concurrent compile-once / run-many simulation service over one
/// backend. See the [module docs](self) for the design.
pub struct SimService {
    backend: Box<dyn Simulator>,
    artifacts: RwLock<HashMap<DesignKey, Entry>>,
    workers: Option<usize>,
    capacity: Option<usize>,
    store: Option<ArtifactStore>,
    clock: AtomicU64,
    compiles: AtomicUsize,
    cache_hits: AtomicUsize,
    warm_starts: AtomicUsize,
    registry_evictions: AtomicUsize,
}

impl SimService {
    /// Creates a service over the given backend, with one worker per core
    /// for batched requests, no registry capacity bound and no store.
    pub fn new(backend: Box<dyn Simulator>) -> Self {
        SimService {
            backend,
            artifacts: RwLock::new(HashMap::new()),
            workers: None,
            capacity: None,
            store: None,
            clock: AtomicU64::new(0),
            compiles: AtomicUsize::new(0),
            cache_hits: AtomicUsize::new(0),
            warm_starts: AtomicUsize::new(0),
            registry_evictions: AtomicUsize::new(0),
        }
    }

    /// Pins the number of worker threads used by [`SimService::run_batch`]
    /// (clamped to at least one).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers.max(1));
        self
    }

    /// Bounds the in-memory registry to `designs` artifacts (clamped to at
    /// least one); registering past the bound evicts the least-recently-used
    /// design. Evicted artifacts remain in the attached store, so they
    /// warm-start instead of recompiling on their next register.
    pub fn with_capacity(mut self, designs: usize) -> Self {
        self.capacity = Some(designs.max(1));
        self
    }

    /// Attaches a persistent artifact store: registrations consult it
    /// before compiling and persist freshly compiled artifacts into it.
    pub fn with_store(mut self, store: ArtifactStore) -> Self {
        self.store = Some(store);
        self
    }

    /// Name of the backend this service compiles and runs with.
    pub fn backend_name(&self) -> &'static str {
        self.backend.name()
    }

    /// The attached artifact store, if any.
    pub fn store(&self) -> Option<&ArtifactStore> {
        self.store.as_ref()
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    /// Registers a design: compiles it if its content hash is new, returns
    /// the existing artifact's key otherwise.
    ///
    /// Resolution order on a registry miss: with a store attached, a
    /// persisted artifact is loaded and decoded (a *warm start*); a
    /// truncated, corrupted or version-mismatched artifact falls back to a
    /// fresh compile, removing the bad file so the new encoding replaces
    /// it. Freshly compiled artifacts of serializable backends are encoded
    /// and persisted.
    ///
    /// Compilation happens outside the registry lock, so registering a new
    /// design never blocks concurrent [`SimService::run`] calls (two
    /// concurrent first registrations of the same design may both compile;
    /// artifacts are deterministic, so either result is kept).
    ///
    /// # Errors
    ///
    /// Propagates the backend's [`Simulator::compile`] failure
    /// ([`SimFailure::Unsupported`] designs are not cached — a later
    /// register retries).
    pub fn register(&self, design: &Design) -> Result<DesignKey, SimFailure> {
        let key = design_key(design);
        if let Some(entry) = self
            .artifacts
            .read()
            .expect("service registry poisoned")
            .get(&key)
        {
            entry.last_used.store(self.tick(), Ordering::Relaxed);
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(key);
        }
        if let Some(store) = &self.store {
            if let Some(bytes) = store.load(self.backend.name(), key.raw()) {
                match self.backend.decode_artifact(design, &bytes) {
                    Ok(artifact) => {
                        self.warm_starts.fetch_add(1, Ordering::Relaxed);
                        self.install(key, Arc::from(artifact));
                        return Ok(key);
                    }
                    // A bad persisted artifact must never take the service
                    // down: drop the file and recompile below.
                    Err(_) => store.remove(self.backend.name(), key.raw()),
                }
            }
        }
        let artifact: Arc<dyn CompiledSim> = Arc::from(self.backend.compile(design)?);
        self.compiles.fetch_add(1, Ordering::Relaxed);
        if let Some(store) = &self.store {
            if let Some(bytes) = artifact.encode() {
                // Persisting is best-effort: a full disk degrades warm
                // starts, it does not fail registration.
                let _ = store.save(self.backend.name(), key.raw(), &bytes);
            }
        }
        self.install(key, artifact);
        Ok(key)
    }

    fn install(&self, key: DesignKey, artifact: Arc<dyn CompiledSim>) {
        let mut map = self.artifacts.write().expect("service registry poisoned");
        map.entry(key).or_insert_with(|| Entry {
            artifact,
            last_used: AtomicU64::new(self.tick()),
        });
        if let Some(capacity) = self.capacity {
            while map.len() > capacity {
                let victim = map
                    .iter()
                    .filter(|(candidate, _)| **candidate != key)
                    .min_by_key(|(_, entry)| entry.last_used.load(Ordering::Relaxed))
                    .map(|(candidate, _)| *candidate);
                let Some(victim) = victim else { break };
                map.remove(&victim);
                self.registry_evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// The shared artifact for a registered design, if present. Callers can
    /// hold the `Arc` and run against it directly (e.g. to downcast the
    /// engine's artifact into a DSE `SweepPlan`).
    pub fn artifact(&self, key: DesignKey) -> Option<Arc<dyn CompiledSim>> {
        let map = self.artifacts.read().expect("service registry poisoned");
        let entry = map.get(&key)?;
        entry.last_used.store(self.tick(), Ordering::Relaxed);
        Some(Arc::clone(&entry.artifact))
    }

    /// Serves one run request against a registered design.
    ///
    /// # Errors
    ///
    /// Returns [`SimFailure::Execution`] for an unknown key, and the
    /// artifact's own failure otherwise.
    pub fn run(&self, key: DesignKey, config: &RunConfig) -> Result<SimReport, SimFailure> {
        let artifact = self.artifact(key).ok_or_else(|| {
            SimFailure::execution(
                self.backend.name(),
                format!("no design registered under key {:#018x}", key.raw()),
            )
        })?;
        artifact.run(config)
    }

    /// Serves a batch of run requests across scoped worker threads,
    /// returning one result per request in request order. Requests may mix
    /// designs and run configurations freely.
    pub fn run_batch(
        &self,
        requests: &[(DesignKey, RunConfig)],
    ) -> Vec<Result<SimReport, SimFailure>> {
        let workers = pool::resolve_workers(self.workers);
        pool::parallel_map(requests, workers, |(key, config)| self.run(*key, config))
    }

    /// Number of designs currently registered.
    pub fn len(&self) -> usize {
        self.artifacts
            .read()
            .expect("service registry poisoned")
            .len()
    }

    /// True if no design has been registered yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of compilations performed (registry misses not answered by
    /// the store).
    pub fn compiles(&self) -> usize {
        self.compiles.load(Ordering::Relaxed)
    }

    /// Number of [`SimService::register`] calls answered from the registry.
    pub fn cache_hits(&self) -> usize {
        self.cache_hits.load(Ordering::Relaxed)
    }

    /// Number of [`SimService::register`] calls answered by decoding a
    /// persisted artifact instead of compiling.
    pub fn warm_starts(&self) -> usize {
        self.warm_starts.load(Ordering::Relaxed)
    }

    /// Number of designs evicted from the in-memory registry by the LRU
    /// capacity bound.
    pub fn registry_evictions(&self) -> usize {
        self.registry_evictions.load(Ordering::Relaxed)
    }

    /// A point-in-time snapshot of every counter, including the attached
    /// store's.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            designs: self.len(),
            compiles: self.compiles(),
            cache_hits: self.cache_hits(),
            warm_starts: self.warm_starts(),
            registry_evictions: self.registry_evictions(),
            store: self.store.as_ref().map(ArtifactStore::stats),
        }
    }
}

impl std::fmt::Debug for SimService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimService")
            .field("backend", &self.backend.name())
            .field("designs", &self.len())
            .field("compiles", &self.compiles())
            .field("cache_hits", &self.cache_hits())
            .field("warm_starts", &self.warm_starts())
            .field("registry_evictions", &self.registry_evictions())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omnisim::OmniBackend;
    use omnisim_designs::typea;

    fn service() -> SimService {
        SimService::new(Box::new(OmniBackend::default()))
    }

    #[test]
    fn registering_the_same_design_compiles_once() {
        let service = service();
        assert!(service.is_empty());
        let design = typea::vecadd_stream(24, 2);
        let key = service.register(&design).unwrap();
        // A structurally identical, separately-built design shares the key.
        let again = service.register(&typea::vecadd_stream(24, 2)).unwrap();
        assert_eq!(key, again);
        assert_eq!(service.len(), 1);
        assert_eq!(service.compiles(), 1);
        assert_eq!(service.cache_hits(), 1);
        // A different design gets its own artifact.
        let other = service.register(&typea::vecadd_stream(25, 2)).unwrap();
        assert_ne!(key, other);
        assert_eq!(service.compiles(), 2);
    }

    #[test]
    fn design_keys_are_durable_content_hashes() {
        let design = typea::vecadd_stream(24, 2);
        let key = design_key(&design);
        // Recomputing from scratch (fresh allocations) reproduces the key…
        assert_eq!(design_key(&typea::vecadd_stream(24, 2)), key);
        // …and it matches the documented definition, so on-disk artifact
        // names are reproducible in any process.
        assert_eq!(key.raw(), fnv1a64(&encode_design(&design)));
        assert_eq!(DesignKey::from_raw(key.raw()), key);
    }

    #[test]
    fn run_answers_requests_and_rejects_unknown_keys() {
        let service = service();
        let design = typea::vecadd_stream(24, 2);
        let key = service.register(&design).unwrap();
        let report = service.run(key, &RunConfig::default()).unwrap();
        assert!(report.outcome.is_completed());

        let bogus = DesignKey(0xdead_beef);
        let failure = service.run(bogus, &RunConfig::default()).unwrap_err();
        assert!(failure.to_string().contains("no design registered"));
    }

    #[test]
    fn batched_requests_match_sequential_runs_at_any_worker_count() {
        let design = typea::vecadd_stream(32, 2);
        let fifos = design.fifos.len();
        let requests: Vec<(DesignKey, RunConfig)> = {
            let service = service();
            let key = service.register(&design).unwrap();
            (1..=6)
                .map(|d| (key, RunConfig::new().with_fifo_depths(vec![d; fifos])))
                .collect()
        };
        let mut per_worker_counts: Vec<Vec<Option<u64>>> = Vec::new();
        for workers in [1usize, 3, 8] {
            let service = service().with_workers(workers);
            service.register(&design).unwrap();
            let reports = service.run_batch(&requests);
            per_worker_counts.push(
                reports
                    .into_iter()
                    .map(|r| r.unwrap().total_cycles)
                    .collect(),
            );
        }
        assert_eq!(per_worker_counts[0], per_worker_counts[1]);
        assert_eq!(per_worker_counts[0], per_worker_counts[2]);
    }

    #[test]
    fn rejected_designs_are_not_cached() {
        let service = SimService::new(Box::new(omnisim_lightning::LightningBackend));
        // Type C: lightning refuses to compile it.
        let design = omnisim_designs::fig4::ex5_with_depths(32, 2, 2);
        let failure = service.register(&design).unwrap_err();
        assert!(failure.is_unsupported());
        assert!(service.is_empty());
        assert_eq!(service.compiles(), 0);
    }

    #[test]
    fn capacity_evicts_least_recently_used_design() {
        let service = service().with_capacity(2);
        let designs: Vec<_> = (0..3).map(|i| typea::vecadd_stream(16 + i, 2)).collect();
        let a = service.register(&designs[0]).unwrap();
        let b = service.register(&designs[1]).unwrap();
        // Touch `a` so `b` becomes the LRU victim.
        assert!(service.artifact(a).is_some());
        let c = service.register(&designs[2]).unwrap();
        assert_eq!(service.len(), 2);
        assert_eq!(service.registry_evictions(), 1);
        assert!(service.artifact(a).is_some(), "recently used survives");
        assert!(service.artifact(b).is_none(), "LRU design evicted");
        assert!(service.artifact(c).is_some(), "new design resident");
        // Re-registering the evicted design recompiles (no store attached).
        service.register(&designs[1]).unwrap();
        assert_eq!(service.compiles(), 4);
        let stats = service.stats();
        assert_eq!(stats.designs, 2);
        assert_eq!(stats.registry_evictions, 2);
        assert_eq!(stats.store, None);
    }
}
