//! # omnisim-serve
//!
//! The persistent serving tier of the OmniSim reproduction: a concurrent
//! compile-once / run-many [`SimService`], a disk-backed [`ArtifactStore`]
//! that warm-starts registrations across process restarts, and a std-only
//! TCP [`Server`]/[`Client`] pair speaking a length-prefixed binary wire
//! protocol over batched runs.
//!
//! The ROADMAP's north star is serving heavy simulation traffic — many
//! users, many queries, few distinct designs. The expensive half of every
//! query (front-end elaboration, trace/event-graph construction) depends
//! only on the design, so this crate amortizes it at three scopes:
//!
//! 1. **In process** — [`SimService`] keeps a registry of compiled
//!    artifacts keyed by design content hash; re-registering a design is a
//!    cache hit. An optional LRU capacity ([`SimService::with_capacity`])
//!    bounds registry memory.
//! 2. **Across processes, over time** — an [`ArtifactStore`] persists each
//!    backend's serialized artifact (see `omnisim-codec` and the per-backend
//!    `encode`/`decode_artifact` codecs) to disk under a content-hash file
//!    name. A fresh process registering a known design *decodes* instead of
//!    compiling — a warm start that skips the front end entirely.
//! 3. **Across machines, concurrently** — [`Server`] exposes a service over
//!    TCP with admission control (bounded in-flight runs, typed
//!    [`wire::Response::Overloaded`] rejection) and graceful shutdown;
//!    [`Client`] is the thin blocking counterpart.
//!
//! Every layer reports into one shared `omnisim-obs` [`MetricsRegistry`]
//! ([`SimService::metrics`]): register/run/batch latencies and outcomes
//! from the service, save/load/evict traffic from the store, per-request
//! wire latencies and connection lifecycle from the server, and
//! engine-level run-path counters scraped from resident artifacts. A
//! remote scrape ([`Client::metrics`], [`wire::Request::Metrics`]) returns
//! the same [`MetricsSnapshot`] the process sees locally.
//!
//! Individual requests are explained by the same stack's distributed
//! tracing: attach a [`Tracer`] to the service
//! ([`SimService::with_tracer`]) and the client
//! ([`Client::with_tracer`]), and every request grows a span tree —
//! client call → wire decode → service resolution (hit/warm/compile
//! outcome) → backend run (engine run path and counters) → store I/O —
//! stitched across the TCP hop by the wire protocol's trace context.
//! Kept traces come back via [`Client::traces`] /
//! [`wire::Request::Traces`] and export as Chrome trace-event JSON or
//! JSON-Lines (`omnisim_obs::to_chrome_trace` / `to_jsonl`).
//!
//! ```
//! use omnisim_serve::SimService;
//! use omnisim_api::{RunConfig, Simulator};
//!
//! let backend: Box<dyn Simulator> = Box::new(omnisim::OmniBackend::default());
//! let service = SimService::new(backend);
//! let design = omnisim_designs::typea::vecadd_stream(16, 2);
//! let key = service.register(&design).unwrap();
//! let report = service.run(key, &RunConfig::default()).unwrap();
//! assert!(report.outcome.is_completed());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod client;
mod server;
mod service;
mod store;
pub mod wire;

pub use client::{Client, ClientError};
pub use server::{Server, ServerHandle};
pub use service::{design_key, DesignKey, ServiceStats, SimService};
pub use store::{ArtifactStore, StoreStats};

// The observability vocabulary callers need to consume this crate's
// metrics and traces, re-exported so `omnisim-serve` is self-contained.
pub use omnisim_obs::{MetricsRegistry, MetricsSnapshot, Trace, TraceConfig, TraceContext, Tracer};
