//! The multi-process front: a std-only TCP server exposing a
//! [`SimService`] through the [`crate::wire`] protocol.
//!
//! One thread per connection, each serving a sequence of length-prefixed
//! requests. Admission control bounds the number of *runs* in flight
//! across all connections: a batch that would push the total past the
//! budget is rejected with a typed [`Response::Overloaded`] instead of
//! queueing unboundedly — the client decides whether to retry, shrink the
//! batch or go elsewhere. Optional per-connection socket timeouts
//! ([`Server::with_client_timeouts`]) double as idle timeouts, so silent
//! or wedged peers cannot pin connection threads. Shutdown is graceful: a [`Request::Shutdown`]
//! (or [`ServerHandle::shutdown`]) stops the accept loop, and the server
//! drains open connections before returning.

use crate::service::{DesignKey, SimService};
use crate::wire::{read_request, write_response, Request, Response, WireReport};
use omnisim_obs::{to_jsonl, Counter, Gauge, Histogram, MetricsRegistry, SpanRecord};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Default bound on runs in flight across all connections.
pub const DEFAULT_MAX_IN_FLIGHT: usize = 1024;

/// The wire layer's own metric handles, bound to the service's registry so
/// one scrape covers the whole stack.
struct WireMetrics {
    requests_register: Counter,
    requests_run_batch: Counter,
    requests_stats: Counter,
    requests_shutdown: Counter,
    requests_metrics: Counter,
    requests_traces: Counter,
    requests_analyze: Counter,
    request_nanos_register: Histogram,
    request_nanos_run_batch: Histogram,
    request_nanos_stats: Histogram,
    request_nanos_shutdown: Histogram,
    request_nanos_metrics: Histogram,
    request_nanos_traces: Histogram,
    request_nanos_analyze: Histogram,
    admission_rejections: Counter,
    in_flight_runs: Gauge,
    connections_opened: Counter,
    connections_closed: Counter,
    connections_active: Gauge,
}

impl WireMetrics {
    fn bind(registry: &MetricsRegistry) -> Self {
        let requests = |kind| registry.counter_with("wire_requests_total", &[("type", kind)]);
        let nanos = |kind| registry.histogram_with("wire_request_nanos", &[("type", kind)]);
        let connections =
            |event| registry.counter_with("wire_connections_total", &[("event", event)]);
        WireMetrics {
            requests_register: requests("register"),
            requests_run_batch: requests("run_batch"),
            requests_stats: requests("stats"),
            requests_shutdown: requests("shutdown"),
            requests_metrics: requests("metrics"),
            requests_traces: requests("traces"),
            requests_analyze: requests("analyze"),
            request_nanos_register: nanos("register"),
            request_nanos_run_batch: nanos("run_batch"),
            request_nanos_stats: nanos("stats"),
            request_nanos_shutdown: nanos("shutdown"),
            request_nanos_metrics: nanos("metrics"),
            request_nanos_traces: nanos("traces"),
            request_nanos_analyze: nanos("analyze"),
            admission_rejections: registry.counter("wire_admission_rejections_total"),
            in_flight_runs: registry.gauge("wire_in_flight_runs"),
            connections_opened: connections("opened"),
            connections_closed: connections("closed"),
            connections_active: registry.gauge("wire_connections_active"),
        }
    }

    fn for_request(&self, request: &Request) -> (&Counter, &Histogram) {
        match request {
            Request::Register { .. } => (&self.requests_register, &self.request_nanos_register),
            Request::RunBatch { .. } => (&self.requests_run_batch, &self.request_nanos_run_batch),
            Request::Stats => (&self.requests_stats, &self.request_nanos_stats),
            Request::Shutdown => (&self.requests_shutdown, &self.request_nanos_shutdown),
            Request::Metrics => (&self.requests_metrics, &self.request_nanos_metrics),
            Request::Traces => (&self.requests_traces, &self.request_nanos_traces),
            Request::Analyze { .. } => (&self.requests_analyze, &self.request_nanos_analyze),
        }
    }
}

struct Shared {
    service: SimService,
    local_addr: SocketAddr,
    max_in_flight: usize,
    read_timeout: Option<Duration>,
    write_timeout: Option<Duration>,
    in_flight: AtomicUsize,
    shutdown: AtomicBool,
    metrics: WireMetrics,
}

/// A TCP server wrapping a [`SimService`]. Created with [`Server::bind`];
/// [`Server::serve`] blocks until shut down.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

/// A cloneable handle to a running (or about-to-run) [`Server`], used to
/// shut it down from another thread.
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl Server {
    /// Binds a listener and wraps the service, with the default in-flight
    /// budget. Binding to port 0 picks a free port; see
    /// [`Server::local_addr`].
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(service: SimService, addr: impl ToSocketAddrs) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let metrics = WireMetrics::bind(service.metrics());
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                service,
                local_addr,
                max_in_flight: DEFAULT_MAX_IN_FLIGHT,
                read_timeout: None,
                write_timeout: None,
                in_flight: AtomicUsize::new(0),
                shutdown: AtomicBool::new(false),
                metrics,
            }),
        })
    }

    /// Replaces the in-flight run budget (clamped to at least one run).
    pub fn with_max_in_flight(mut self, runs: usize) -> Self {
        let shared = Arc::get_mut(&mut self.shared)
            .expect("budget is configured before the server is shared");
        shared.max_in_flight = runs.max(1);
        self
    }

    /// Applies per-connection socket timeouts (`None` blocks forever — the
    /// default). The read timeout doubles as the idle timeout: a client
    /// that connects and then goes silent holds its connection thread for
    /// at most this long before the server closes the connection, so a
    /// handful of wedged peers cannot pin the thread pool. The write
    /// timeout bounds response delivery to a peer that stops draining its
    /// receive buffer.
    pub fn with_client_timeouts(mut self, read: Option<Duration>, write: Option<Duration>) -> Self {
        let shared = Arc::get_mut(&mut self.shared)
            .expect("timeouts are configured before the server is shared");
        shared.read_timeout = read;
        shared.write_timeout = write;
        self
    }

    /// The bound address (useful after binding port 0).
    ///
    /// # Errors
    ///
    /// Never fails in practice; mirrors [`TcpListener::local_addr`].
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle for shutting the server down from another thread.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Accepts and serves connections until shut down, then drains open
    /// connections and returns.
    ///
    /// # Errors
    ///
    /// Propagates accept failures (per-connection I/O errors only end that
    /// connection).
    pub fn serve(self) -> io::Result<()> {
        let mut connections = Vec::new();
        loop {
            let (stream, _) = self.listener.accept()?;
            if self.shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            // A connection whose socket options cannot be set is closed
            // immediately rather than served without its timeouts.
            if stream.set_read_timeout(self.shared.read_timeout).is_err()
                || stream.set_write_timeout(self.shared.write_timeout).is_err()
            {
                continue;
            }
            let shared = Arc::clone(&self.shared);
            connections.push(std::thread::spawn(move || {
                let _ = serve_connection(&shared, stream);
            }));
        }
        for connection in connections {
            let _ = connection.join();
        }
        Ok(())
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.shared.local_addr)
            .field("backend", &self.shared.service.backend_name())
            .field("max_in_flight", &self.shared.max_in_flight)
            .finish()
    }
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("addr", &self.shared.local_addr)
            .finish()
    }
}

impl ServerHandle {
    /// The server's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    /// Requests shutdown: the accept loop exits on its next wake-up. Safe
    /// to call from any thread, any number of times.
    pub fn shutdown(&self) {
        trigger_shutdown(&self.shared);
    }
}

fn trigger_shutdown(shared: &Shared) {
    shared.shutdown.store(true, Ordering::SeqCst);
    // The accept loop blocks in `accept`; poke it awake with a throwaway
    // connection so the flag is observed promptly.
    let _ = TcpStream::connect(shared.local_addr);
}

fn serve_connection(shared: &Shared, mut stream: TcpStream) -> io::Result<()> {
    shared.metrics.connections_opened.inc();
    shared.metrics.connections_active.add(1);
    let result = serve_requests(shared, &mut stream);
    shared.metrics.connections_closed.inc();
    shared.metrics.connections_active.sub(1);
    result
}

fn serve_requests(shared: &Shared, stream: &mut TcpStream) -> io::Result<()> {
    while let Some((request, trace)) = read_request(stream)? {
        let shutting_down = matches!(request, Request::Shutdown);
        let (requests, nanos) = shared.metrics.for_request(&request);
        requests.inc();
        let span = nanos.span();
        // The wire span joins the client's trace when the request carried
        // a context, and starts a server-local trace otherwise; either way
        // the service/store/backend spans of `respond` nest under it.
        let tracer = shared.service.tracer();
        let mut tspan = match &trace {
            Some(context) => tracer.span_remote("wire_request", context),
            None => tracer.span("wire_request"),
        };
        tspan.set_attr("type", request.kind());
        let response = respond(shared, request);
        tspan.finish();
        span.finish();
        write_response(stream, &response)?;
        if shutting_down {
            break;
        }
    }
    Ok(())
}

fn respond(shared: &Shared, request: Request) -> Response {
    match request {
        Request::Register { design } => match shared.service.register(&design) {
            Ok(key) => Response::Registered { key: key.raw() },
            Err(failure) => Response::Error {
                message: failure.to_string(),
            },
        },
        Request::RunBatch { requests } => {
            let batch = requests.len();
            let before = shared.in_flight.fetch_add(batch, Ordering::SeqCst);
            if before + batch > shared.max_in_flight {
                shared.in_flight.fetch_sub(batch, Ordering::SeqCst);
                shared.metrics.admission_rejections.inc();
                return Response::Overloaded {
                    limit: shared.max_in_flight,
                };
            }
            shared.metrics.in_flight_runs.set((before + batch) as i64);
            let requests: Vec<(DesignKey, _)> = requests
                .into_iter()
                .map(|(key, config)| (DesignKey::from_raw(key), config))
                .collect();
            let results = shared
                .service
                .run_batch(&requests)
                .iter()
                .map(|result| match result {
                    Ok(report) => Ok(WireReport::from(report)),
                    Err(failure) => Err(failure.to_string()),
                })
                .collect();
            let remaining = shared.in_flight.fetch_sub(batch, Ordering::SeqCst) - batch;
            shared.metrics.in_flight_runs.set(remaining as i64);
            Response::BatchResults { results }
        }
        Request::Stats => Response::StatsReply {
            stats: shared.service.stats(),
        },
        Request::Shutdown => {
            trigger_shutdown(shared);
            Response::ShuttingDown
        }
        Request::Metrics => Response::MetricsReply {
            snapshot_json: shared.service.metrics_snapshot().to_json(),
        },
        Request::Traces => {
            let spans: Vec<SpanRecord> = shared
                .service
                .recent_traces()
                .into_iter()
                .flat_map(|trace| trace.spans)
                .collect();
            Response::TracesReply {
                spans_jsonl: to_jsonl(&spans),
            }
        }
        Request::Analyze { design } => Response::AnalyzeReply {
            report: shared.service.analyze(&design),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Client, ClientError};
    use omnisim_api::RunConfig;
    use omnisim_designs::typea;

    fn start(service: SimService) -> (ServerHandle, std::thread::JoinHandle<()>) {
        let server = Server::bind(service, ("127.0.0.1", 0))
            .unwrap()
            .with_max_in_flight(4);
        let handle = server.handle();
        let join = std::thread::spawn(move || server.serve().unwrap());
        (handle, join)
    }

    #[test]
    fn serves_register_batch_stats_and_shutdown() {
        let service = SimService::new(Box::new(omnisim::OmniBackend::default()));
        let (handle, join) = start(service);
        let mut client = Client::connect(handle.addr()).unwrap();

        let design = typea::vecadd_stream(16, 2);
        let key = client.register(&design).unwrap();
        assert_eq!(key, crate::design_key(&design), "keys are content hashes");

        let requests = vec![
            (key, RunConfig::default()),
            (
                key,
                RunConfig::new().with_fifo_depths(vec![1; design.fifos.len()]),
            ),
            (DesignKey::from_raw(0xbad), RunConfig::default()),
        ];
        let results = client.run_batch(&requests).unwrap();
        assert_eq!(results.len(), 3);
        let first = results[0].as_ref().unwrap();
        assert!(matches!(first.outcome, crate::wire::WireOutcome::Completed));
        assert!(results[1].is_ok());
        assert!(results[2]
            .as_ref()
            .unwrap_err()
            .contains("no design registered"));

        // An oversized batch is rejected with a typed Overloaded, not queued.
        let flood: Vec<_> = (0..5).map(|_| (key, RunConfig::default())).collect();
        match client.run_batch(&flood) {
            Err(ClientError::Overloaded { limit }) => assert_eq!(limit, 4),
            other => panic!("expected Overloaded, got {other:?}"),
        }

        let stats = client.stats().unwrap();
        assert_eq!(stats.designs, 1);
        assert_eq!(stats.compiles, 1);

        client.shutdown().unwrap();
        join.join().unwrap();
    }

    #[test]
    fn serves_static_analysis_and_counts_it() {
        let service = SimService::new(Box::new(omnisim::OmniBackend::default()));
        let (handle, join) = start(service);
        let mut client = Client::connect(handle.addr()).unwrap();

        // The remote report must equal an in-process analysis bit for bit
        // (the analyzer is deterministic and the report round-trips).
        let design = typea::vecadd_stream(16, 2);
        let remote = client.analyze(&design).unwrap();
        assert_eq!(remote, omnisim_analyze::analyze(&design));
        assert_eq!(
            remote.verdict,
            omnisim_analyze::DeadlockVerdict::CertifiedFree
        );

        // Both the wire layer and the service counted the request.
        let snapshot = client.metrics().unwrap();
        assert_eq!(
            snapshot.get("wire_requests_total", &[("type", "analyze")]),
            Some(&omnisim_obs::SampleValue::Counter(1))
        );
        assert_eq!(
            snapshot.get("service_analyze_total", &[("verdict", "certified_free")]),
            Some(&omnisim_obs::SampleValue::Counter(1))
        );

        client.shutdown().unwrap();
        join.join().unwrap();
    }

    #[test]
    fn client_timeout_unsticks_a_call_against_a_silent_peer() {
        // A "server" that accepts the connection and then never sends a
        // byte. Without a socket timeout, `stats` would block forever.
        let silent = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = silent.local_addr().unwrap();
        let mut client = Client::connect_with_timeouts(
            addr,
            Some(Duration::from_millis(100)),
            Some(Duration::from_millis(100)),
        )
        .unwrap();
        let _held = silent.accept().unwrap(); // keep the peer socket open
        match client.stats() {
            Err(ClientError::TimedOut) => {}
            other => panic!("expected TimedOut, got {other:?}"),
        }
        // The typed error is distinguishable from I/O failures.
        assert!(ClientError::TimedOut.to_string().contains("timed out"));
    }

    #[test]
    fn server_idle_timeout_disconnects_silent_clients_but_serves_live_ones() {
        use std::io::Read;

        let service = SimService::new(Box::new(omnisim::OmniBackend::default()));
        let server = Server::bind(service, ("127.0.0.1", 0))
            .unwrap()
            .with_client_timeouts(Some(Duration::from_millis(100)), None);
        let handle = server.handle();
        let join = std::thread::spawn(move || server.serve().unwrap());

        // A client that connects and goes mute is dropped after the idle
        // timeout instead of pinning its connection thread forever.
        let mut mute = TcpStream::connect(handle.addr()).unwrap();
        mute.set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut buf = [0u8; 1];
        match mute.read(&mut buf) {
            Ok(0) => {} // clean close
            Err(error)
                if error.kind() != io::ErrorKind::WouldBlock
                    && error.kind() != io::ErrorKind::TimedOut => {} // reset
            other => panic!("server kept the silent connection open: {other:?}"),
        }

        // Prompt clients on the same server are unaffected.
        let mut client = Client::connect(handle.addr()).unwrap();
        let design = typea::vecadd_stream(16, 2);
        let key = client.register(&design).unwrap();
        let results = client.run_batch(&[(key, RunConfig::default())]).unwrap();
        assert!(results[0].is_ok());

        client.shutdown().unwrap();
        join.join().unwrap();
    }
}
