//! `ArtifactStore`: the disk-backed half of the persistent serving tier.
//!
//! Artifacts are addressed by backend name and design content hash —
//! `dir/<backend>/<key as 16 hex digits>.art` — so any process that can
//! hash a design (see [`crate::design_key`]) can find its persisted
//! artifact. Writes are atomic (write to a temporary file in the same
//! directory, then rename), so a crashed or concurrent writer never leaves
//! a half-written artifact where a reader can load it; readers verify the
//! codec frame's checksum anyway, so even torn bytes degrade to a cache
//! miss, never a panic.
//!
//! An optional byte budget bounds the store: after every save, oldest
//! artifacts (by modification time) are evicted until the store fits. The
//! freshly saved artifact is never evicted by its own save.
//!
//! Every operation records into an [`omnisim_obs::MetricsRegistry`]: load
//! hits/misses, eviction counts and evicted bytes as counters, save/load
//! latency and sizes as histograms. A standalone store owns a private
//! registry; [`ArtifactStore::bind_metrics`] re-homes the series into a
//! shared one (the `SimService` does this on attach), carrying accumulated
//! counts across.

use omnisim_obs::{Counter, Histogram, MetricsRegistry, Tracer};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::SystemTime;

/// Point-in-time counters and usage of an [`ArtifactStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// Loads that found a persisted artifact.
    pub hits: usize,
    /// Loads that found nothing.
    pub misses: usize,
    /// Artifacts evicted by the byte budget.
    pub evictions: usize,
    /// Total bytes reclaimed by budget evictions.
    pub evicted_bytes: u64,
    /// Artifacts currently on disk.
    pub entries: usize,
    /// Total size of persisted artifacts, in bytes.
    pub bytes: u64,
}

impl StoreStats {
    /// Fraction of loads answered from disk (0.0 when no loads happened).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The store's metric handles, re-buildable against any registry.
#[derive(Debug)]
struct StoreMetrics {
    loads_hit: Counter,
    loads_miss: Counter,
    evictions: Counter,
    evicted_bytes: Counter,
    saved_bytes: Counter,
    save_nanos: Histogram,
    load_nanos: Histogram,
}

impl StoreMetrics {
    fn bind(registry: &MetricsRegistry) -> Self {
        StoreMetrics {
            loads_hit: registry.counter_with("store_loads_total", &[("outcome", "hit")]),
            loads_miss: registry.counter_with("store_loads_total", &[("outcome", "miss")]),
            evictions: registry.counter("store_evictions_total"),
            evicted_bytes: registry.counter("store_evicted_bytes_total"),
            saved_bytes: registry.counter("store_saved_bytes_total"),
            save_nanos: registry.histogram_with("store_op_nanos", &[("op", "save")]),
            load_nanos: registry.histogram_with("store_op_nanos", &[("op", "load")]),
        }
    }
}

/// A disk-backed store of serialized compiled artifacts, keyed by backend
/// name and design content hash. See the [module docs](self) for layout
/// and atomicity.
#[derive(Debug)]
pub struct ArtifactStore {
    dir: PathBuf,
    byte_budget: Option<u64>,
    registry: Arc<MetricsRegistry>,
    metrics: StoreMetrics,
    tracer: Tracer,
}

impl ArtifactStore {
    /// Opens (creating if needed) a store rooted at `dir`, with no byte
    /// budget, recording into a private metrics registry.
    ///
    /// # Errors
    ///
    /// Propagates the directory-creation failure.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let registry = Arc::new(MetricsRegistry::new());
        let metrics = StoreMetrics::bind(&registry);
        Ok(ArtifactStore {
            dir,
            byte_budget: None,
            registry,
            metrics,
            tracer: Tracer::disabled(),
        })
    }

    /// Bounds the store to `bytes` of persisted artifacts; every save
    /// evicts oldest-first until the store fits.
    pub fn with_byte_budget(mut self, bytes: u64) -> Self {
        self.byte_budget = Some(bytes);
        self
    }

    /// Re-homes the store's metric series into `registry` (the registry a
    /// `SimService` shares across its layers), carrying accumulated counter
    /// values across. Histogram history stays with the old registry — only
    /// future records land in the new series.
    pub fn bind_metrics(&mut self, registry: Arc<MetricsRegistry>) {
        let fresh = StoreMetrics::bind(&registry);
        fresh.loads_hit.add(self.metrics.loads_hit.value());
        fresh.loads_miss.add(self.metrics.loads_miss.value());
        fresh.evictions.add(self.metrics.evictions.value());
        fresh.evicted_bytes.add(self.metrics.evicted_bytes.value());
        fresh.saved_bytes.add(self.metrics.saved_bytes.value());
        self.metrics = fresh;
        self.registry = registry;
    }

    /// Re-homes the store's spans into `tracer` (the tracer a `SimService`
    /// shares across its layers): every subsequent load and save opens a
    /// `store_load`/`store_save` span under the thread's current span, so
    /// disk latency shows up inside the request's trace tree.
    pub fn bind_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The registry this store records into.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The configured byte budget, if any.
    pub fn byte_budget(&self) -> Option<u64> {
        self.byte_budget
    }

    fn path(&self, backend: &str, key: u64) -> PathBuf {
        self.dir.join(backend).join(format!("{key:016x}.art"))
    }

    /// Loads the persisted artifact for `(backend, key)`, if present,
    /// counting a hit or miss.
    pub fn load(&self, backend: &str, key: u64) -> Option<Vec<u8>> {
        let span = self.metrics.load_nanos.span();
        let mut tspan = self.tracer.span("store_load");
        let loaded = match fs::read(self.path(backend, key)) {
            Ok(bytes) => {
                self.metrics.loads_hit.inc();
                tspan.set_attr("outcome", "hit");
                tspan.set_attr("bytes", bytes.len());
                Some(bytes)
            }
            Err(_) => {
                self.metrics.loads_miss.inc();
                tspan.set_attr("outcome", "miss");
                None
            }
        };
        tspan.finish();
        span.finish();
        loaded
    }

    /// Persists an encoded artifact under `(backend, key)` atomically
    /// (write-then-rename), replacing any previous entry, then enforces
    /// the byte budget.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures; budget enforcement is best-effort
    /// and never fails the save.
    pub fn save(&self, backend: &str, key: u64, bytes: &[u8]) -> io::Result<()> {
        let span = self.metrics.save_nanos.span();
        let mut tspan = self.tracer.span("store_save");
        tspan.set_attr("bytes", bytes.len());
        let path = self.path(backend, key);
        let parent = path.parent().expect("store paths have a parent");
        fs::create_dir_all(parent)?;
        // The temporary name includes the pid so concurrent processes
        // sharing one store directory never clobber each other's staging
        // file; the final rename is atomic either way.
        let tmp = parent.join(format!("{key:016x}.tmp{}", std::process::id()));
        fs::write(&tmp, bytes)?;
        fs::rename(&tmp, &path)?;
        self.metrics.saved_bytes.add(bytes.len() as u64);
        self.enforce_budget(&path);
        span.finish();
        Ok(())
    }

    /// Removes the persisted artifact for `(backend, key)`, if present —
    /// e.g. after its bytes failed to decode.
    pub fn remove(&self, backend: &str, key: u64) {
        let _ = fs::remove_file(self.path(backend, key));
    }

    /// Every persisted artifact as `(path, size, mtime)`, across all
    /// backend subdirectories.
    fn entries_on_disk(&self) -> Vec<(PathBuf, u64, SystemTime)> {
        let mut entries = Vec::new();
        let Ok(backends) = fs::read_dir(&self.dir) else {
            return entries;
        };
        for backend in backends.flatten() {
            let Ok(files) = fs::read_dir(backend.path()) else {
                continue;
            };
            for file in files.flatten() {
                let path = file.path();
                if path.extension().is_none_or(|ext| ext != "art") {
                    continue;
                }
                let Ok(meta) = file.metadata() else { continue };
                let mtime = meta.modified().unwrap_or(SystemTime::UNIX_EPOCH);
                entries.push((path, meta.len(), mtime));
            }
        }
        entries
    }

    fn enforce_budget(&self, protect: &Path) {
        let Some(budget) = self.byte_budget else {
            return;
        };
        let mut entries = self.entries_on_disk();
        let mut total: u64 = entries.iter().map(|(_, size, _)| size).sum();
        if total <= budget {
            return;
        }
        // Oldest first; ties broken by path so eviction is deterministic.
        entries.sort_by(|a, b| a.2.cmp(&b.2).then_with(|| a.0.cmp(&b.0)));
        for (path, size, _) in entries {
            if total <= budget {
                break;
            }
            if path == protect {
                continue;
            }
            if fs::remove_file(&path).is_ok() {
                total = total.saturating_sub(size);
                self.metrics.evictions.inc();
                self.metrics.evicted_bytes.add(size);
            }
        }
    }

    /// Loads that found a persisted artifact.
    pub fn hits(&self) -> usize {
        self.metrics.loads_hit.value() as usize
    }

    /// Loads that found nothing.
    pub fn misses(&self) -> usize {
        self.metrics.loads_miss.value() as usize
    }

    /// Artifacts evicted by the byte budget.
    pub fn evictions(&self) -> usize {
        self.metrics.evictions.value() as usize
    }

    /// Total bytes reclaimed by budget evictions.
    pub fn evicted_bytes(&self) -> u64 {
        self.metrics.evicted_bytes.value()
    }

    /// A point-in-time snapshot of counters and on-disk usage.
    pub fn stats(&self) -> StoreStats {
        let entries = self.entries_on_disk();
        StoreStats {
            hits: self.hits(),
            misses: self.misses(),
            evictions: self.evictions(),
            evicted_bytes: self.evicted_bytes(),
            entries: entries.len(),
            bytes: entries.iter().map(|(_, size, _)| size).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static UNIQUE: AtomicUsize = AtomicUsize::new(0);
        let n = UNIQUE.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("omnisim-store-{tag}-{}-{n}", std::process::id()))
    }

    #[test]
    fn save_load_remove_round_trip() {
        let dir = temp_dir("roundtrip");
        let store = ArtifactStore::open(&dir).unwrap();
        assert_eq!(store.load("omnisim", 7), None);
        store.save("omnisim", 7, b"artifact bytes").unwrap();
        assert_eq!(
            store.load("omnisim", 7).as_deref(),
            Some(&b"artifact bytes"[..])
        );
        // Re-saving replaces atomically.
        store.save("omnisim", 7, b"newer").unwrap();
        assert_eq!(store.load("omnisim", 7).as_deref(), Some(&b"newer"[..]));
        // Backends are namespaced.
        assert_eq!(store.load("lightning", 7), None);
        store.remove("omnisim", 7);
        assert_eq!(store.load("omnisim", 7), None);
        let stats = store.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (2, 3, 0));
        assert_eq!(stats.hit_ratio(), 0.4);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn byte_budget_evicts_oldest_but_never_the_fresh_save() {
        let dir = temp_dir("budget");
        let store = ArtifactStore::open(&dir).unwrap().with_byte_budget(250);
        for key in 0..3u64 {
            store.save("omnisim", key, &[0u8; 100]).unwrap();
            // Distinct mtimes even on coarse filesystems.
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        // 300 bytes > 250: the oldest entry was evicted by the last save.
        assert_eq!(store.evictions(), 1);
        assert_eq!(store.evicted_bytes(), 100);
        assert_eq!(store.load("omnisim", 0), None, "oldest evicted");
        assert!(store.load("omnisim", 2).is_some(), "fresh save survives");
        let stats = store.stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.bytes, 200);
        assert_eq!(stats.evicted_bytes, 100);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn operations_record_into_the_metrics_registry() {
        let dir = temp_dir("metrics");
        let mut store = ArtifactStore::open(&dir).unwrap();
        store.save("omnisim", 1, b"abcde").unwrap();
        store.load("omnisim", 1);
        store.load("omnisim", 2);

        // Standalone: the private registry carries everything.
        let snapshot = store.metrics().snapshot();
        assert_eq!(
            snapshot.counter_with("store_loads_total", &[("outcome", "hit")]),
            Some(1)
        );
        assert_eq!(snapshot.counter("store_saved_bytes_total"), Some(5));
        assert_eq!(
            snapshot
                .histogram_with("store_op_nanos", &[("op", "load")])
                .unwrap()
                .count,
            2
        );

        // Re-homing into a shared registry carries the counts across.
        let shared = Arc::new(MetricsRegistry::new());
        store.bind_metrics(Arc::clone(&shared));
        store.load("omnisim", 1);
        let snapshot = shared.snapshot();
        assert_eq!(
            snapshot.counter_with("store_loads_total", &[("outcome", "hit")]),
            Some(2)
        );
        assert_eq!(
            snapshot.counter_with("store_loads_total", &[("outcome", "miss")]),
            Some(1)
        );
        assert_eq!(store.hits(), 2, "stats view reads the shared series");
        let _ = fs::remove_dir_all(&dir);
    }
}
