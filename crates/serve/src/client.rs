//! The thin blocking client of the serving tier: one TCP connection, one
//! request/response exchange at a time.

use crate::service::{DesignKey, ServiceStats};
use crate::wire::{read_response, write_request, Request, Response, WireReport};
use omnisim_api::RunConfig;
use omnisim_ir::Design;
use omnisim_obs::{parse_jsonl, Trace, Tracer};
use std::fmt;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The connection failed or was closed mid-exchange.
    Io(io::Error),
    /// The peer went silent: a configured socket timeout
    /// ([`Client::set_timeouts`]) elapsed before the exchange completed.
    /// Unlike [`ClientError::Io`], the connection itself may still be
    /// alive — the caller decides whether to retry or drop the client.
    TimedOut,
    /// The server rejected the batch under admission control; the caller
    /// may retry later or shrink the batch.
    Overloaded {
        /// The server's in-flight run budget.
        limit: usize,
    },
    /// The server reported a request-level failure (unknown design,
    /// unsupported backend, …).
    Server(String),
    /// The server answered with a response the call did not expect.
    Protocol(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(error) => write!(f, "connection failed: {error}"),
            ClientError::TimedOut => {
                write!(
                    f,
                    "timed out: the peer sent nothing within the socket timeout"
                )
            }
            ClientError::Overloaded { limit } => {
                write!(f, "server overloaded (in-flight budget {limit})")
            }
            ClientError::Server(message) => write!(f, "server error: {message}"),
            ClientError::Protocol(message) => write!(f, "protocol error: {message}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(error: io::Error) -> Self {
        // Platforms disagree on the kind a timed-out socket read reports
        // (`TimedOut` on Windows, `WouldBlock` on Unix); both mean the
        // configured timeout elapsed, so both become the typed variant.
        match error.kind() {
            io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock => ClientError::TimedOut,
            _ => ClientError::Io(error),
        }
    }
}

/// A blocking client of a [`crate::Server`]. Calls are sequential: each
/// sends one request and waits for its response.
///
/// With a [`Tracer`] attached ([`Client::with_tracer`]) every call opens a
/// `client_<type>` span — joining the thread's current trace if one is
/// open, originating a fresh trace otherwise — and forwards its context on
/// the wire, so the server's decode/resolve/run spans land in the same
/// tree the caller sees.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    tracer: Tracer,
}

impl Client {
    /// Connects to a serving-tier server. Tracing starts disabled; attach
    /// a tracer with [`Client::with_tracer`].
    ///
    /// # Errors
    ///
    /// Propagates the connection failure.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        Ok(Client {
            stream: TcpStream::connect(addr)?,
            tracer: Tracer::disabled(),
        })
    }

    /// Connects and applies socket timeouts in one step — the safe default
    /// for clients that must never hang on a silent or wedged server. See
    /// [`Client::set_timeouts`].
    ///
    /// # Errors
    ///
    /// Propagates the connection or socket-option failure.
    pub fn connect_with_timeouts(
        addr: impl ToSocketAddrs,
        read: Option<Duration>,
        write: Option<Duration>,
    ) -> io::Result<Self> {
        let client = Client::connect(addr)?;
        client.set_timeouts(read, write)?;
        Ok(client)
    }

    /// Applies socket-level read/write timeouts to the connection (`None`
    /// blocks forever — the default). A call whose exchange exceeds a
    /// timeout fails with [`ClientError::TimedOut`] instead of hanging the
    /// calling thread indefinitely.
    ///
    /// The read timeout bounds each wait for response bytes, not the whole
    /// exchange: budget it for the slowest single request (a large
    /// `run_batch` is served in full before the first response byte).
    ///
    /// # Errors
    ///
    /// Propagates the socket-option failure (e.g. a zero duration).
    pub fn set_timeouts(&self, read: Option<Duration>, write: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(read)?;
        self.stream.set_write_timeout(write)
    }

    /// Attaches a tracer: every subsequent call is wrapped in a
    /// `client_<type>` span whose context rides the wire to the server.
    #[must_use]
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// The tracer this client records its call spans into.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    fn exchange(&mut self, request: &Request) -> Result<Response, ClientError> {
        let mut span = self.tracer.span(format!("client_{}", request.kind()));
        write_request(&mut self.stream, request, span.context())?;
        let response = read_response(&mut self.stream)?.ok_or_else(|| {
            ClientError::Protocol("server closed the connection before responding".into())
        });
        span.set_attr(
            "outcome",
            match &response {
                Ok(Response::Error { .. }) => "server_error",
                Ok(Response::Overloaded { .. }) => "overloaded",
                Ok(_) => "ok",
                Err(ClientError::TimedOut) => "timeout",
                Err(_) => "disconnected",
            },
        );
        response
    }

    /// Registers a design with the remote service, returning its key.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] when the backend rejects the design.
    pub fn register(&mut self, design: &Design) -> Result<DesignKey, ClientError> {
        match self.exchange(&Request::Register {
            design: design.clone(),
        })? {
            Response::Registered { key } => Ok(DesignKey::from_raw(key)),
            Response::Error { message } => Err(ClientError::Server(message)),
            other => Err(ClientError::Protocol(format!(
                "unexpected response to register: {other:?}"
            ))),
        }
    }

    /// Statically analyzes a design on the server — deadlock certificate,
    /// FIFO depth lower bounds, race and lint diagnostics — without
    /// registering or simulating it.
    ///
    /// # Errors
    ///
    /// [`ClientError::Protocol`] on an unexpected response.
    pub fn analyze(
        &mut self,
        design: &Design,
    ) -> Result<omnisim_analyze::AnalysisReport, ClientError> {
        match self.exchange(&Request::Analyze {
            design: design.clone(),
        })? {
            Response::AnalyzeReply { report } => Ok(report),
            Response::Error { message } => Err(ClientError::Server(message)),
            other => Err(ClientError::Protocol(format!(
                "unexpected response to analyze: {other:?}"
            ))),
        }
    }

    /// Runs a batch of requests remotely, returning one result per request
    /// in request order (failures as the server's failure strings).
    ///
    /// # Errors
    ///
    /// [`ClientError::Overloaded`] when admission control rejects the
    /// batch.
    pub fn run_batch(
        &mut self,
        requests: &[(DesignKey, RunConfig)],
    ) -> Result<Vec<Result<WireReport, String>>, ClientError> {
        let raw: Vec<(u64, RunConfig)> = requests
            .iter()
            .map(|(key, config)| (key.raw(), config.clone()))
            .collect();
        match self.exchange(&Request::RunBatch { requests: raw })? {
            Response::BatchResults { results } => Ok(results),
            Response::Overloaded { limit } => Err(ClientError::Overloaded { limit }),
            Response::Error { message } => Err(ClientError::Server(message)),
            other => Err(ClientError::Protocol(format!(
                "unexpected response to run_batch: {other:?}"
            ))),
        }
    }

    /// Fetches the remote service's counters.
    ///
    /// # Errors
    ///
    /// [`ClientError::Protocol`] on an unexpected response.
    pub fn stats(&mut self) -> Result<ServiceStats, ClientError> {
        match self.exchange(&Request::Stats)? {
            Response::StatsReply { stats } => Ok(stats),
            other => Err(ClientError::Protocol(format!(
                "unexpected response to stats: {other:?}"
            ))),
        }
    }

    /// Scrapes the remote server's full metrics registry — service, store,
    /// wire layer and engine-event gauges — frozen server-side at scrape
    /// time. Render it with [`omnisim_obs::MetricsSnapshot::to_prometheus`]
    /// or inspect it directly.
    ///
    /// # Errors
    ///
    /// [`ClientError::Protocol`] on an unexpected response or a snapshot
    /// payload that fails to parse.
    pub fn metrics(&mut self) -> Result<omnisim_obs::MetricsSnapshot, ClientError> {
        match self.exchange(&Request::Metrics)? {
            Response::MetricsReply { snapshot_json } => {
                omnisim_obs::MetricsSnapshot::from_json(&snapshot_json).map_err(|error| {
                    ClientError::Protocol(format!("malformed metrics snapshot: {error}"))
                })
            }
            other => Err(ClientError::Protocol(format!(
                "unexpected response to metrics: {other:?}"
            ))),
        }
    }

    /// Fetches the server's recently kept traces — the flight recorder's
    /// sampled survivors, each a parent-linked span tree covering the wire
    /// decode, service resolution and backend run of one request (plus the
    /// originating client span when the caller traced it).
    ///
    /// # Errors
    ///
    /// [`ClientError::Protocol`] on an unexpected response or a trace
    /// payload that fails the JSON-Lines parse-back.
    pub fn traces(&mut self) -> Result<Vec<Trace>, ClientError> {
        match self.exchange(&Request::Traces)? {
            Response::TracesReply { spans_jsonl } => {
                let spans = parse_jsonl(&spans_jsonl).map_err(|error| {
                    ClientError::Protocol(format!("malformed trace payload: {error}"))
                })?;
                Ok(Trace::group(spans))
            }
            other => Err(ClientError::Protocol(format!(
                "unexpected response to traces: {other:?}"
            ))),
        }
    }

    /// Asks the server to shut down, consuming the client.
    ///
    /// # Errors
    ///
    /// [`ClientError::Protocol`] on an unexpected response.
    pub fn shutdown(mut self) -> Result<(), ClientError> {
        match self.exchange(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(ClientError::Protocol(format!(
                "unexpected response to shutdown: {other:?}"
            ))),
        }
    }
}
