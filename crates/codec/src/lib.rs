//! # omnisim-codec
//!
//! Hand-rolled little-endian binary serialization for the persistent
//! artifact store (`omnisim-serve`) and its wire protocol.
//!
//! The workspace builds in a container without crates.io access, so this
//! crate is deliberately primitive: fixed-width little-endian integers, a
//! length-prefixed byte/string form, and a framing layer with a 4-byte
//! magic, a `u16` format version and a word-wise FNV-style integrity
//! checksum over the payload (see [`checksum64`]). Every artifact format in
//! the workspace is built from these pieces, so "can this file be trusted"
//! is answered in one place:
//!
//! ```text
//! magic[4] | version u16 | payload_len u64 | payload bytes | checksum64(payload) u64
//! ```
//!
//! Decoders are total: every failure path returns a [`CodecError`], never a
//! panic, so a truncated or corrupted artifact file degrades to a fresh
//! compile instead of taking the serving process down.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::fmt;

/// Why a byte stream could not be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The stream ended before the expected value was complete.
    UnexpectedEof,
    /// The frame does not start with the expected magic bytes.
    BadMagic {
        /// Magic the decoder expected.
        expected: [u8; 4],
        /// Magic actually found (zero-padded if the stream was short).
        found: [u8; 4],
    },
    /// The frame's format version is not one this build can decode.
    UnsupportedVersion {
        /// Version the decoder supports.
        expected: u16,
        /// Version found in the frame header.
        found: u16,
    },
    /// The payload checksum does not match — the frame is corrupted.
    ChecksumMismatch,
    /// A decoded value is structurally invalid (bad tag, overlong length…).
    Invalid(String),
    /// The frame decoded cleanly but bytes remain after the last value.
    TrailingBytes,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEof => write!(f, "unexpected end of input"),
            CodecError::BadMagic { expected, found } => {
                write!(f, "bad magic: expected {expected:?}, found {found:?}")
            }
            CodecError::UnsupportedVersion { expected, found } => {
                write!(
                    f,
                    "unsupported format version {found} (expected {expected})"
                )
            }
            CodecError::ChecksumMismatch => write!(f, "payload checksum mismatch"),
            CodecError::Invalid(detail) => write!(f, "invalid encoding: {detail}"),
            CodecError::TrailingBytes => write!(f, "trailing bytes after final value"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Streaming FNV-1a 64-bit hash. Used both as the artifact-frame checksum
/// and as the durable design content hash ([`DesignKey`] in
/// `omnisim-serve`): the algorithm is fixed by this crate, so hashes are
/// stable across processes, builds and Rust releases — unlike
/// `std::collections::hash_map::DefaultHasher`.
///
/// [`DesignKey`]: https://en.wikipedia.org/wiki/Fowler%E2%80%93Noll%E2%80%93Vo_hash_function
#[derive(Debug, Clone, Copy)]
pub struct Fnv1a64 {
    state: u64,
}

impl Fnv1a64 {
    const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// Creates a hasher at the standard FNV offset basis.
    pub fn new() -> Self {
        Fnv1a64 {
            state: Self::OFFSET_BASIS,
        }
    }

    /// Feeds bytes into the hash.
    pub fn write(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.state ^= u64::from(byte);
            self.state = self.state.wrapping_mul(Self::PRIME);
        }
    }

    /// The hash of everything written so far.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for Fnv1a64 {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot FNV-1a 64-bit hash of a byte slice.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hasher = Fnv1a64::new();
    hasher.write(bytes);
    hasher.finish()
}

/// Fast 64-bit integrity checksum used by [`frame`]/[`unframe`].
///
/// FNV-1a's xor-then-multiply structure lifted from bytes to 8-byte
/// little-endian words, with the input length folded into the seed so a
/// zero-padded tail cannot collide with a shorter input. One multiply per
/// word makes it ~8x faster than [`fnv1a64`] on artifact-sized payloads,
/// which matters because every store load and save checksums the whole
/// artifact. This is *not* FNV-1a: use [`fnv1a64`] where the standard
/// byte-wise hash (and its published test vectors) is wanted.
pub fn checksum64(bytes: &[u8]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut state = 0xcbf2_9ce4_8422_2325u64 ^ (bytes.len() as u64);
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        state = (state ^ word).wrapping_mul(PRIME);
    }
    let mut tail = [0u8; 8];
    tail[..chunks.remainder().len()].copy_from_slice(chunks.remainder());
    (state ^ u64::from_le_bytes(tail)).wrapping_mul(PRIME)
}

/// Append-only little-endian byte sink.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a writer with pre-allocated capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        ByteWriter {
            buf: Vec::with_capacity(capacity),
        }
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one byte.
    pub fn u8(&mut self, value: u8) {
        self.buf.push(value);
    }

    /// Writes a bool as one byte (0 or 1).
    pub fn bool(&mut self, value: bool) {
        self.buf.push(u8::from(value));
    }

    /// Writes a little-endian `u16`.
    pub fn u16(&mut self, value: u16) {
        self.buf.extend_from_slice(&value.to_le_bytes());
    }

    /// Writes a little-endian `u32`.
    pub fn u32(&mut self, value: u32) {
        self.buf.extend_from_slice(&value.to_le_bytes());
    }

    /// Writes a little-endian `u64`.
    pub fn u64(&mut self, value: u64) {
        self.buf.extend_from_slice(&value.to_le_bytes());
    }

    /// Writes a little-endian `i64`.
    pub fn i64(&mut self, value: i64) {
        self.buf.extend_from_slice(&value.to_le_bytes());
    }

    /// Writes a `usize` as a little-endian `u64` (portable across widths).
    pub fn usize(&mut self, value: usize) {
        self.u64(value as u64);
    }

    /// Writes raw bytes with no length prefix.
    pub fn raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Writes a `u64` length prefix followed by the bytes.
    pub fn bytes(&mut self, bytes: &[u8]) {
        self.usize(bytes.len());
        self.buf.extend_from_slice(bytes);
    }

    /// Writes a UTF-8 string as length-prefixed bytes.
    pub fn str(&mut self, value: &str) {
        self.bytes(value.as_bytes());
    }

    /// Writes `Some`/`None` as a presence byte followed by the value.
    pub fn opt<T>(&mut self, value: Option<T>, mut write: impl FnMut(&mut Self, T)) {
        match value {
            Some(value) => {
                self.bool(true);
                write(self, value);
            }
            None => self.bool(false),
        }
    }

    /// Writes a `u64` element count followed by each item.
    pub fn seq<T>(
        &mut self,
        items: impl ExactSizeIterator<Item = T>,
        mut write: impl FnMut(&mut Self, T),
    ) {
        self.usize(items.len());
        for item in items {
            write(self, item);
        }
    }
}

/// Sanity cap on decoded collection lengths: no artifact in this workspace
/// approaches a billion elements, and a corrupted length prefix must not
/// drive a pre-allocation of petabytes.
const MAX_DECODED_LEN: u64 = 1 << 30;

/// Cursor over a byte slice with little-endian typed reads.
#[derive(Debug, Clone)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Creates a reader at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Number of unread bytes.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Fails with [`CodecError::TrailingBytes`] unless fully consumed.
    pub fn finish(&self) -> Result<(), CodecError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(CodecError::TrailingBytes)
        }
    }

    fn take(&mut self, len: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < len {
            return Err(CodecError::UnexpectedEof);
        }
        let slice = &self.buf[self.pos..self.pos + len];
        self.pos += len;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a bool encoded as 0 or 1 (anything else is invalid).
    pub fn bool(&mut self) -> Result<bool, CodecError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(CodecError::Invalid(format!("bool byte {other}"))),
        }
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, CodecError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64, CodecError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a `usize` encoded as a little-endian `u64`.
    pub fn usize(&mut self) -> Result<usize, CodecError> {
        let value = self.u64()?;
        usize::try_from(value).map_err(|_| CodecError::Invalid(format!("usize {value}")))
    }

    /// Reads a collection length: a `u64` bounded both by a global sanity
    /// cap and by the bytes actually remaining (each element needs ≥ 1
    /// byte... except zero-sized ones, hence the explicit cap as well).
    // Decodes a length prefix from the stream; not a container-size
    // accessor, so there is no `is_empty` counterpart.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&mut self) -> Result<usize, CodecError> {
        let value = self.u64()?;
        if value > MAX_DECODED_LEN {
            return Err(CodecError::Invalid(format!("implausible length {value}")));
        }
        usize::try_from(value).map_err(|_| CodecError::Invalid(format!("length {value}")))
    }

    /// Reads length-prefixed raw bytes.
    pub fn bytes(&mut self) -> Result<&'a [u8], CodecError> {
        let len = self.len()?;
        self.take(len)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, CodecError> {
        let bytes = self.bytes()?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| CodecError::Invalid("non-UTF-8 string".into()))
    }

    /// Reads an `Option` written by [`ByteWriter::opt`].
    pub fn opt<T>(
        &mut self,
        mut read: impl FnMut(&mut Self) -> Result<T, CodecError>,
    ) -> Result<Option<T>, CodecError> {
        if self.bool()? {
            Ok(Some(read(self)?))
        } else {
            Ok(None)
        }
    }

    /// Reads a sequence written by [`ByteWriter::seq`].
    pub fn seq<T>(
        &mut self,
        mut read: impl FnMut(&mut Self) -> Result<T, CodecError>,
    ) -> Result<Vec<T>, CodecError> {
        let len = self.len()?;
        // Cap the pre-allocation by what the buffer could possibly hold.
        let mut items = Vec::with_capacity(len.min(self.remaining().max(16)));
        for _ in 0..len {
            items.push(read(self)?);
        }
        Ok(items)
    }
}

/// Wraps a payload in the standard artifact frame:
/// `magic | version | payload_len | payload | checksum`.
pub fn frame(magic: [u8; 4], version: u16, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 22);
    out.extend_from_slice(&magic);
    out.extend_from_slice(&version.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&checksum64(payload).to_le_bytes());
    out
}

/// Validates a frame written by [`frame`] and returns the payload slice.
///
/// # Errors
///
/// [`CodecError::BadMagic`] / [`CodecError::UnsupportedVersion`] for a frame
/// of the wrong kind or vintage, [`CodecError::UnexpectedEof`] /
/// [`CodecError::TrailingBytes`] for one of the wrong size, and
/// [`CodecError::ChecksumMismatch`] for one whose payload was corrupted.
pub fn unframe(magic: [u8; 4], version: u16, bytes: &[u8]) -> Result<&[u8], CodecError> {
    if bytes.len() < 4 {
        return Err(CodecError::UnexpectedEof);
    }
    if bytes[..4] != magic {
        let mut found = [0u8; 4];
        found.copy_from_slice(&bytes[..4]);
        return Err(CodecError::BadMagic {
            expected: magic,
            found,
        });
    }
    let mut reader = ByteReader::new(&bytes[4..]);
    let found_version = reader.u16()?;
    if found_version != version {
        return Err(CodecError::UnsupportedVersion {
            expected: version,
            found: found_version,
        });
    }
    let payload_len = reader.usize()?;
    if reader.remaining() < payload_len + 8 {
        return Err(CodecError::UnexpectedEof);
    }
    let payload = reader.take(payload_len)?;
    let checksum = reader.u64()?;
    reader.finish()?;
    if checksum64(payload) != checksum {
        return Err(CodecError::ChecksumMismatch);
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = ByteWriter::new();
        w.u8(0xab);
        w.bool(true);
        w.bool(false);
        w.u16(0x1234);
        w.u32(0xdead_beef);
        w.u64(u64::MAX - 3);
        w.i64(-42);
        w.usize(7);
        w.str("héllo");
        w.bytes(&[1, 2, 3]);
        w.opt(Some(5u64), |w, v| w.u64(v));
        w.opt(None::<u64>, |w, v| w.u64(v));
        w.seq([10u64, 20, 30].into_iter(), |w, v| w.u64(v));

        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 0xab);
        assert!(r.bool().unwrap());
        assert!(!r.bool().unwrap());
        assert_eq!(r.u16().unwrap(), 0x1234);
        assert_eq!(r.u32().unwrap(), 0xdead_beef);
        assert_eq!(r.u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.i64().unwrap(), -42);
        assert_eq!(r.usize().unwrap(), 7);
        assert_eq!(r.str().unwrap(), "héllo");
        assert_eq!(r.bytes().unwrap(), &[1, 2, 3]);
        assert_eq!(r.opt(|r| r.u64()).unwrap(), Some(5));
        assert_eq!(r.opt(|r| r.u64()).unwrap(), None);
        assert_eq!(r.seq(|r| r.u64()).unwrap(), vec![10, 20, 30]);
        r.finish().unwrap();
    }

    #[test]
    fn truncated_reads_fail_cleanly() {
        let mut w = ByteWriter::new();
        w.u64(99);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes[..5]);
        assert_eq!(r.u64().unwrap_err(), CodecError::UnexpectedEof);
        // Bad bool byte.
        let mut r = ByteReader::new(&[7]);
        assert!(matches!(r.bool().unwrap_err(), CodecError::Invalid(_)));
        // Implausible sequence length does not allocate.
        let mut w = ByteWriter::new();
        w.u64(u64::MAX / 2);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(
            r.seq(|r| r.u8()).unwrap_err(),
            CodecError::Invalid(_)
        ));
    }

    #[test]
    fn frame_round_trips_and_rejects_tampering() {
        const MAGIC: [u8; 4] = *b"OSAT";
        let payload = b"the compiled artifact".to_vec();
        let framed = frame(MAGIC, 3, &payload);
        assert_eq!(unframe(MAGIC, 3, &framed).unwrap(), payload.as_slice());

        // Wrong magic.
        assert!(matches!(
            unframe(*b"XXXX", 3, &framed).unwrap_err(),
            CodecError::BadMagic { .. }
        ));
        // Wrong version.
        assert_eq!(
            unframe(MAGIC, 4, &framed).unwrap_err(),
            CodecError::UnsupportedVersion {
                expected: 4,
                found: 3
            }
        );
        // Truncation.
        assert_eq!(
            unframe(MAGIC, 3, &framed[..framed.len() - 3]).unwrap_err(),
            CodecError::UnexpectedEof
        );
        // Flip a payload byte: checksum catches it.
        let mut corrupt = framed.clone();
        corrupt[16] ^= 0x40;
        assert_eq!(
            unframe(MAGIC, 3, &corrupt).unwrap_err(),
            CodecError::ChecksumMismatch
        );
        // Extra trailing byte.
        let mut long = framed.clone();
        long.push(0);
        assert_eq!(
            unframe(MAGIC, 3, &long).unwrap_err(),
            CodecError::TrailingBytes
        );
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
        // Streaming matches one-shot.
        let mut h = Fnv1a64::new();
        h.write(b"foo");
        h.write(b"bar");
        assert_eq!(h.finish(), fnv1a64(b"foobar"));
    }

    #[test]
    fn checksum64_detects_single_byte_damage_at_every_offset() {
        // A payload long enough to exercise full words and a partial tail.
        let payload: Vec<u8> = (0u16..43).map(|i| (i * 31 % 251) as u8).collect();
        let reference = checksum64(&payload);
        assert_eq!(checksum64(&payload), reference, "deterministic");
        for offset in 0..payload.len() {
            for flip in [0x01u8, 0x80, 0x5a] {
                let mut damaged = payload.clone();
                damaged[offset] ^= flip;
                assert_ne!(
                    checksum64(&damaged),
                    reference,
                    "flip {flip:#04x} at byte {offset} must change the checksum"
                );
            }
        }
    }

    #[test]
    fn checksum64_separates_zero_padding_from_length() {
        // The tail is zero-padded to a full word, so the input length must
        // keep `[1]` and `[1, 0]` (and `[]` vs `[0; 8]`) apart.
        assert_ne!(checksum64(&[1]), checksum64(&[1, 0]));
        assert_ne!(checksum64(&[]), checksum64(&[0u8; 8]));
        assert_ne!(checksum64(&[0u8; 7]), checksum64(&[0u8; 8]));
    }
}
