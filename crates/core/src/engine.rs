//! The OmniSim engine: front-end elaboration, multi-threaded execution
//! (Fig. 7 of the paper) and finalization.

use crate::config::SimConfig;
use crate::fifo_table::{FifoTable, PendingRead, PendingWrite};
use crate::incremental::{Constraint, IncrementalState};
use crate::query::{Query, QueryKind, QueryPool, Resolution};
use crate::report::{OmniError, OmniOutcome, OmniReport, SimStats, SimTimings};
use crate::request::{Request, Response, ThreadId};
use crate::runtime::FuncRuntime;
use omnisim_graph::{Edge, EventGraph, NodeId};
use omnisim_interp::{Interpreter, SimError};
use omnisim_ir::design::OutputMap;
use omnisim_ir::optimize::eliminate_dead_fifo_checks;
use omnisim_ir::taxonomy::{classify, TaxonomyReport};
use omnisim_ir::Design;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, sync_channel, Receiver, SyncSender};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// The OmniSim simulator for one design.
///
/// Construction performs the *front-end* work (design elaboration, the
/// redundant-FIFO-check elision pass of §7.3.2 and taxonomy classification);
/// [`OmniSimulator::run`] performs the multi-threaded execution and
/// finalization. The two are separated so the Fig. 8(c) runtime breakdown
/// (front-end vs multi-threaded execution) can be measured.
#[derive(Debug)]
pub struct OmniSimulator<'d> {
    source: &'d Design,
    design: Design,
    config: SimConfig,
    taxonomy: TaxonomyReport,
    front_end_time: Duration,
}

impl<'d> OmniSimulator<'d> {
    /// Elaborates a design with the default configuration.
    pub fn new(design: &'d Design) -> Self {
        Self::with_config(design, SimConfig::default())
    }

    /// Elaborates a design with an explicit configuration.
    pub fn with_config(design: &'d Design, config: SimConfig) -> Self {
        let started = Instant::now();
        let mut elaborated = design.clone();
        if config.eliminate_dead_checks {
            let _stats = eliminate_dead_fifo_checks(&mut elaborated);
        }
        let taxonomy = classify(&elaborated);
        let front_end_time = started.elapsed();
        OmniSimulator {
            source: design,
            design: elaborated,
            config,
            taxonomy,
            front_end_time,
        }
    }

    /// The original (un-elaborated) design.
    pub fn source_design(&self) -> &'d Design {
        self.source
    }

    /// The elaborated design actually simulated.
    pub fn design(&self) -> &Design {
        &self.design
    }

    /// The taxonomy classification of the design (Type A / B / C).
    pub fn taxonomy(&self) -> &TaxonomyReport {
        &self.taxonomy
    }

    /// Wall-clock time spent in front-end elaboration.
    pub fn front_end_time(&self) -> Duration {
        self.front_end_time
    }

    /// Runs the multi-threaded simulation to completion.
    ///
    /// # Errors
    ///
    /// Returns [`OmniError::Task`] if a Func Sim thread fails (out-of-bounds
    /// access, fuel exhaustion), [`OmniError::ThreadPanic`] if one panics, or
    /// [`OmniError::Graph`] if finalization detects a cyclic constraint set
    /// (an engine bug). Design deadlocks are *not* errors: they are reported
    /// through [`OmniOutcome::Deadlock`].
    pub fn run(&self) -> Result<OmniReport, OmniError> {
        let exec_start = Instant::now();
        let design = &self.design;
        let tasks = design.dataflow_tasks();
        let thread_count = tasks.len();
        let depths = design.fifo_depths();

        let arrays: Vec<Mutex<Vec<i64>>> = design
            .arrays
            .iter()
            .map(|a| Mutex::new(a.init.clone()))
            .collect();

        let (req_tx, req_rx) = channel::<Request>();
        let mut resp_senders = Vec::with_capacity(thread_count);
        let mut resp_receivers = Vec::with_capacity(thread_count);
        for _ in 0..thread_count {
            let (tx, rx) = sync_channel::<Response>(1);
            resp_senders.push(tx);
            resp_receivers.push(rx);
        }

        let task_names: Vec<String> = tasks
            .iter()
            .map(|&m| design.module(m).name.clone())
            .collect();
        let mut perf = PerfState::new(design, &depths, task_names, resp_senders);
        let fuel = self.config.fuel;

        std::thread::scope(|scope| {
            for (thread_id, (&task, resp_rx)) in tasks.iter().zip(resp_receivers).enumerate() {
                let req_tx = req_tx.clone();
                let arrays = &arrays;
                scope.spawn(move || {
                    let result = catch_unwind(AssertUnwindSafe(|| {
                        let mut runtime =
                            FuncRuntime::new(thread_id, design, req_tx.clone(), resp_rx, arrays);
                        let mut interp = Interpreter::with_fuel(design, fuel);
                        let outcome = interp.run_module(task, &[], &mut runtime);
                        (outcome, runtime.end_cycle())
                    }));
                    match result {
                        Ok((Ok(outcome), end_cycle)) => {
                            let _ = req_tx.send(Request::TaskFinished {
                                thread: thread_id,
                                end_cycle,
                                ops_executed: outcome.ops_executed,
                            });
                        }
                        Ok((Err(SimError::Aborted { .. }), _)) => {
                            // Engine-initiated shutdown: the Perf Sim thread
                            // already accounted for this thread.
                        }
                        Ok((Err(error), _)) => {
                            let _ = req_tx.send(Request::TaskFailed {
                                thread: thread_id,
                                error,
                            });
                        }
                        Err(_) => {
                            let _ = req_tx.send(Request::TaskFailed {
                                thread: thread_id,
                                error: SimError::Aborted {
                                    reason: "functionality-simulation thread panicked".to_owned(),
                                },
                            });
                        }
                    }
                });
            }
            drop(req_tx);
            perf.run(&req_rx);
        });

        let execution = exec_start.elapsed();

        if let Some((thread, error)) = perf.failure.take() {
            if matches!(error, SimError::Aborted { ref reason } if reason.contains("panicked")) {
                return Err(OmniError::ThreadPanic);
            }
            return Err(OmniError::Task {
                task: perf.task_names[thread].clone(),
                error,
            });
        }

        let finalize_start = Instant::now();
        let queries_created = perf.queries_created;
        let forced_false = perf.pool.forced_false();
        let fifo_accesses = perf.fifo_accesses;
        let ops_executed = perf.ops_executed;
        let outputs = std::mem::take(&mut perf.outputs);
        let deadlock = perf.deadlock.take();

        let incremental = canonicalize_incremental(
            IncrementalState {
                graph: std::mem::take(&mut perf.graph),
                fifo_write_nodes: perf
                    .tables
                    .iter()
                    .map(|t| t.write_nodes().to_vec())
                    .collect(),
                fifo_write_blocking: perf
                    .tables
                    .iter()
                    .map(|t| t.write_blocking_flags().to_vec())
                    .collect(),
                fifo_read_nodes: perf
                    .tables
                    .iter()
                    .map(|t| t.read_nodes().to_vec())
                    .collect(),
                end_nodes: std::mem::take(&mut perf.end_nodes),
                constraints: std::mem::take(&mut perf.constraints),
                original_depths: depths.clone(),
            },
            &std::mem::take(&mut perf.node_owner),
        );

        let (outcome, total_cycles) = match deadlock {
            Some(blocked) => {
                let cycles = incremental.graph.max_time();
                (OmniOutcome::Deadlock { blocked }, cycles)
            }
            None => {
                let cycles = incremental.finalize_latency(&depths)?;
                (OmniOutcome::Completed, cycles)
            }
        };
        let finalize = finalize_start.elapsed();

        let stats = SimStats {
            threads: thread_count,
            graph_nodes: incremental.graph.len(),
            graph_edges: incremental.graph.edge_count(),
            fifo_accesses,
            queries: queries_created,
            queries_forced_false: forced_false,
            constraints: incremental.constraints.len(),
            ops_executed,
        };

        Ok(OmniReport {
            outcome,
            outputs,
            total_cycles,
            timings: SimTimings {
                front_end: self.front_end_time,
                execution,
                finalize,
            },
            stats,
            incremental,
        })
    }
}

/// Renumbers a freshly frozen [`IncrementalState`] into canonical node
/// order.
///
/// Node ids are handed out in cross-thread *arrival* order, which varies
/// from run to run with OS scheduling; everything *about* a node is
/// deterministic — its creating thread, its position in that thread's
/// program order, its in-edges (all recorded in the same request-handling
/// step that creates the node) and its online time (final before the node
/// can ever serve as an edge source). Renumbering nodes by
/// `(thread, per-thread creation order)` therefore maps every compile of a
/// design onto one canonical `IncrementalState`, which is what lets the
/// artifact store trust content-hash keys: equal designs produce
/// byte-identical encoded artifacts. The same pass sorts the recorded
/// constraints by canonical node id — each query owns exactly one node, so
/// the order is total — fixing the constraint-recording-order
/// nondeterminism noted in the ROADMAP.
fn canonicalize_incremental(state: IncrementalState, node_owner: &[ThreadId]) -> IncrementalState {
    let nodes = state.graph.len();
    debug_assert_eq!(node_owner.len(), nodes);
    // Stable sort by owning thread: ties keep creation order, which within
    // one thread is its program order.
    let mut order: Vec<u32> = (0..u32::try_from(nodes).expect("node count fits u32")).collect();
    order.sort_by_key(|&old| node_owner[old as usize]);
    let mut remap: Vec<NodeId> = vec![NodeId(0); nodes];
    for (new, &old) in order.iter().enumerate() {
        remap[old as usize] = NodeId::from_index(new);
    }
    let map = |node: NodeId| remap[node.index()];

    let mut base = Vec::with_capacity(nodes);
    let mut time = Vec::with_capacity(nodes);
    for &old in &order {
        base.push(state.graph.base(NodeId(old)));
        time.push(state.graph.time(NodeId(old)));
    }
    // Re-emit edges grouped by canonical target node, preserving each
    // node's in-edge order.
    let mut per_target: Vec<Vec<Edge>> = vec![Vec::new(); nodes];
    for edge in state.graph.edges() {
        per_target[edge.to.index()].push(Edge::new(map(edge.from), map(edge.to), edge.weight));
    }
    let graph = EventGraph::from_parts(
        base,
        time,
        order
            .iter()
            .flat_map(|&old| per_target[old as usize].iter().copied()),
    );

    let mut constraints = state.constraints;
    for constraint in &mut constraints {
        constraint.node = map(constraint.node);
    }
    constraints.sort_by_key(|constraint| constraint.node);

    IncrementalState {
        graph,
        fifo_write_nodes: state
            .fifo_write_nodes
            .into_iter()
            .map(|nodes| nodes.into_iter().map(map).collect())
            .collect(),
        fifo_write_blocking: state.fifo_write_blocking,
        fifo_read_nodes: state
            .fifo_read_nodes
            .into_iter()
            .map(|nodes| nodes.into_iter().map(map).collect())
            .collect(),
        end_nodes: state
            .end_nodes
            .into_iter()
            .map(|node| node.map(map))
            .collect(),
        constraints,
        original_depths: state.original_depths,
    }
}

/// All state owned by the Perf Sim thread.
struct PerfState<'d> {
    design: &'d Design,
    depths: Vec<usize>,
    task_names: Vec<String>,
    responders: Vec<SyncSender<Response>>,

    tables: Vec<FifoTable>,
    graph: EventGraph,
    /// Creating thread of every graph node, in creation order. Node ids are
    /// handed out in cross-thread *arrival* order, which is scheduler
    /// nondeterministic; this is the evidence the freeze step uses to
    /// renumber them into canonical `(thread, program-order)` order.
    node_owner: Vec<ThreadId>,
    last_node: Vec<Option<(NodeId, u64)>>,
    /// Per `[thread][bus]`: the event node of every issued AXI read-burst
    /// request, in issue order — beats anchor to their burst's request node.
    axi_read_req_nodes: Vec<Vec<Vec<NodeId>>>,
    /// Per `[thread][bus]`: the event node of the last AXI write beat — the
    /// write response anchors `request_latency` cycles after it.
    axi_last_write_beat: Vec<Vec<Option<NodeId>>>,
    pool: QueryPool,
    constraints: Vec<Constraint>,
    outputs: OutputMap,
    end_nodes: Vec<Option<NodeId>>,
    paused: Vec<bool>,
    /// Forward-progress frontier of each paused thread: no future FIFO
    /// access of that thread can be scheduled strictly before this cycle.
    frontier: Vec<u64>,

    total_threads: usize,
    active: usize,
    finished: usize,
    aborted: usize,
    failed: usize,
    shutdown: bool,
    failure: Option<(ThreadId, SimError)>,
    deadlock: Option<Vec<String>>,

    fifo_accesses: u64,
    queries_created: usize,
    ops_executed: u64,
}

impl std::fmt::Debug for PerfState<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PerfState")
            .field("active", &self.active)
            .field("finished", &self.finished)
            .field("pending_queries", &self.pool.pending())
            .finish_non_exhaustive()
    }
}

impl<'d> PerfState<'d> {
    fn new(
        design: &'d Design,
        depths: &[usize],
        task_names: Vec<String>,
        responders: Vec<SyncSender<Response>>,
    ) -> Self {
        let threads = responders.len();
        PerfState {
            design,
            depths: depths.to_vec(),
            task_names,
            responders,
            tables: (0..design.fifos.len()).map(|_| FifoTable::new()).collect(),
            graph: EventGraph::new(),
            node_owner: Vec::new(),
            last_node: vec![None; threads],
            axi_read_req_nodes: vec![vec![Vec::new(); design.axi_ports.len()]; threads],
            axi_last_write_beat: vec![vec![None; design.axi_ports.len()]; threads],
            pool: QueryPool::new(),
            constraints: Vec::new(),
            outputs: OutputMap::new(),
            end_nodes: vec![None; threads],
            paused: vec![false; threads],
            frontier: vec![0; threads],
            total_threads: threads,
            active: threads,
            finished: 0,
            aborted: 0,
            failed: 0,
            shutdown: false,
            failure: None,
            deadlock: None,
            fifo_accesses: 0,
            queries_created: 0,
            ops_executed: 0,
        }
    }

    fn accounted(&self) -> usize {
        self.finished + self.aborted + self.failed
    }

    /// The Perf Sim thread main loop (Fig. 7): process requests as they
    /// arrive; whenever every Func Sim thread is paused, enter the
    /// query-resolution step.
    fn run(&mut self, requests: &Receiver<Request>) {
        while self.accounted() < self.total_threads {
            let request = match requests.recv() {
                Ok(r) => r,
                Err(_) => break,
            };
            self.handle(request);
            while let Ok(r) = requests.try_recv() {
                self.handle(r);
            }
            if self.active == 0 && self.accounted() < self.total_threads {
                self.resolve_phase();
            }
        }
    }

    fn respond(&mut self, thread: ThreadId, response: Response) {
        let _ = self.responders[thread].send(response);
        if self.paused[thread] {
            self.paused[thread] = false;
            self.active += 1;
        }
    }

    fn pause(&mut self, thread: ThreadId, frontier: u64) {
        debug_assert!(!self.paused[thread]);
        self.paused[thread] = true;
        self.frontier[thread] = frontier;
        self.active -= 1;
    }

    fn abort_thread(&mut self, thread: ThreadId, reason: &str) {
        let _ = self.responders[thread].send(Response::Abort {
            reason: reason.to_owned(),
        });
        if self.paused[thread] {
            self.paused[thread] = false;
        }
        self.aborted += 1;
    }

    fn abort_all_paused(&mut self, reason: &str) {
        for thread in 0..self.total_threads {
            if self.paused[thread] {
                self.abort_thread(thread, reason);
            }
        }
    }

    /// Records an event node for `thread`.
    ///
    /// `request` is the cycle the thread's *schedule* placed the event at
    /// (before any FIFO-availability stall); `commit` is the cycle the event
    /// actually happened. Only schedule-intrinsic quantities enter the
    /// graph: a thread's first event keeps its request as intrinsic time
    /// (nothing can have stalled before it), every later event gets the
    /// program-order edge `request - commit_prev` — the schedule distance,
    /// which is invariant under re-finalization — and an intrinsic time of
    /// zero. Depth-dependent stalls therefore live exclusively in the
    /// data/WAR edges, so the incremental finalization (§7.2) can *relax*
    /// them when a deeper FIFO would have removed the stall, instead of
    /// keeping the baseline's stalled schedule as a floor.
    fn new_event_node(&mut self, thread: ThreadId, request: u64, commit: u64) -> NodeId {
        debug_assert!(commit >= request, "commits never precede their request");
        let node = match self.last_node[thread] {
            Some((last, last_commit)) => {
                // The distance may be negative: in a pipelined loop the next
                // iteration's early operations are scheduled before the
                // previous iteration's late ones commit.
                let node = self.graph.add_node(0);
                self.graph
                    .add_edge(last, node, request as i64 - last_commit as i64);
                node
            }
            None => self.graph.add_node(request),
        };
        self.node_owner.push(thread);
        debug_assert_eq!(self.node_owner.len(), self.graph.len());
        self.last_node[thread] = Some((node, commit));
        node
    }

    fn handle(&mut self, request: Request) {
        if self.shutdown {
            let thread = request.thread();
            match request {
                Request::TaskFinished { .. } => {
                    self.finished += 1;
                    self.active -= 1;
                }
                Request::TaskFailed { .. } => {
                    self.failed += 1;
                    self.active -= 1;
                }
                _ if request.pauses_thread() => {
                    self.active -= 1;
                    self.abort_thread(thread, "simulation is shutting down");
                }
                _ => {}
            }
            return;
        }
        match request {
            Request::FifoWrite {
                thread,
                fifo,
                value,
                cycle,
                frontier,
            } => {
                self.pause(thread, frontier);
                let depth = self.depths[fifo.index()];
                let table = &self.tables[fifo.index()];
                let ordinal = table.writes_committed() + 1;
                if ordinal <= depth {
                    self.commit_blocking_write(thread, fifo.index(), cycle, cycle, value);
                } else {
                    match table.read_cycle(ordinal - depth) {
                        Some(read_cycle) => {
                            let commit = cycle.max(read_cycle + 1);
                            self.commit_blocking_write(thread, fifo.index(), cycle, commit, value);
                        }
                        None => {
                            self.tables[fifo.index()].park_write(PendingWrite {
                                thread,
                                cycle,
                                value,
                            });
                        }
                    }
                }
            }
            Request::FifoRead {
                thread,
                fifo,
                cycle,
                frontier,
            } => {
                self.pause(thread, frontier);
                let table = &self.tables[fifo.index()];
                if let Some(write_cycle) = table.next_read_ready() {
                    self.commit_blocking_read(thread, fifo.index(), cycle, write_cycle);
                } else {
                    self.tables[fifo.index()].park_read(PendingRead { thread, cycle });
                }
            }
            Request::FifoNbWrite {
                thread,
                fifo,
                value,
                cycle,
                frontier,
            } => {
                self.pause(thread, frontier);
                self.queries_created += 1;
                let node = self.new_event_node(thread, cycle, cycle);
                let ordinal = self.tables[fifo.index()].writes_committed() + 1;
                let query = Query {
                    thread,
                    fifo,
                    kind: QueryKind::NbWrite,
                    cycle,
                    ordinal,
                    value,
                    node,
                };
                self.try_resolve_or_pool(query);
            }
            Request::FifoNbRead {
                thread,
                fifo,
                cycle,
                frontier,
            } => {
                self.pause(thread, frontier);
                self.queries_created += 1;
                let node = self.new_event_node(thread, cycle, cycle);
                let ordinal = self.tables[fifo.index()].reads_committed() + 1;
                let query = Query {
                    thread,
                    fifo,
                    kind: QueryKind::NbRead,
                    cycle,
                    ordinal,
                    value: 0,
                    node,
                };
                self.try_resolve_or_pool(query);
            }
            Request::FifoCanRead {
                thread,
                fifo,
                cycle,
                frontier,
            } => {
                self.pause(thread, frontier);
                self.queries_created += 1;
                let node = self.new_event_node(thread, cycle, cycle);
                let ordinal = self.tables[fifo.index()].reads_committed() + 1;
                let query = Query {
                    thread,
                    fifo,
                    kind: QueryKind::CanRead,
                    cycle,
                    ordinal,
                    value: 0,
                    node,
                };
                self.try_resolve_or_pool(query);
            }
            Request::FifoCanWrite {
                thread,
                fifo,
                cycle,
                frontier,
            } => {
                self.pause(thread, frontier);
                self.queries_created += 1;
                let node = self.new_event_node(thread, cycle, cycle);
                let ordinal = self.tables[fifo.index()].writes_committed() + 1;
                let query = Query {
                    thread,
                    fifo,
                    kind: QueryKind::CanWrite,
                    cycle,
                    ordinal,
                    value: 0,
                    node,
                };
                self.try_resolve_or_pool(query);
            }
            Request::AxiReadReq { thread, bus, cycle } => {
                let node = self.new_event_node(thread, cycle, cycle);
                self.axi_read_req_nodes[thread][bus.index()].push(node);
            }
            Request::AxiReadBeat {
                thread,
                bus,
                burst,
                beat,
                request,
                commit,
            } => {
                let node = self.new_event_node(thread, request, commit);
                let req_node = self.axi_read_req_nodes[thread][bus.index()][burst as usize];
                // The bus delivers the burst's first beat `request_latency`
                // cycles after the request, later beats one cycle apart —
                // an anchor that holds at *every* FIFO depth, unlike the
                // program-order distance, which only reflects the baseline.
                let latency = self.design.axi_port(bus).request_latency;
                self.graph
                    .add_edge(req_node, node, (latency + u64::from(beat)) as i64);
            }
            Request::AxiWriteBeat { thread, bus, cycle } => {
                let node = self.new_event_node(thread, cycle, cycle);
                self.axi_last_write_beat[thread][bus.index()] = Some(node);
            }
            Request::AxiWriteResp {
                thread,
                bus,
                request,
                commit,
            } => {
                let node = self.new_event_node(thread, request, commit);
                if let Some(beat_node) = self.axi_last_write_beat[thread][bus.index()] {
                    let latency = self.design.axi_port(bus).request_latency;
                    self.graph.add_edge(beat_node, node, latency as i64);
                }
            }
            Request::Output {
                thread: _,
                output,
                value,
            } => {
                self.outputs
                    .insert(self.design.output_name(output).to_owned(), value);
            }
            Request::TaskFinished {
                thread,
                end_cycle,
                ops_executed,
            } => {
                self.finished += 1;
                self.active -= 1;
                self.ops_executed += ops_executed;
                let node = self.new_event_node(thread, end_cycle, end_cycle);
                self.end_nodes[thread] = Some(node);
            }
            Request::TaskFailed { thread, error } => {
                self.failed += 1;
                self.active -= 1;
                self.failure = Some((thread, error));
                self.shutdown = true;
                self.abort_all_paused("another task failed");
            }
        }
    }

    /// Commits a blocking write at `commit` (the first cycle at which space
    /// is available, never earlier than the attempt cycle).
    fn commit_blocking_write(
        &mut self,
        thread: ThreadId,
        fifo: usize,
        attempt_cycle: u64,
        commit: u64,
        value: i64,
    ) {
        let node = self.new_event_node(thread, attempt_cycle, commit);
        self.tables[fifo].commit_write(value, commit, node, true);
        self.fifo_accesses += 1;
        self.respond(thread, Response::WriteDone { cycle: commit });
        self.service_pending_read(fifo);
    }

    /// After a read commits, wake a parked blocking write whose slot is now
    /// known to free up.
    fn service_pending_write(&mut self, fifo: usize) {
        if self.tables[fifo].pending_write().is_none() {
            return;
        }
        let depth = self.depths[fifo];
        let ordinal = self.tables[fifo].writes_committed() + 1;
        let ready = if ordinal <= depth {
            Some(
                self.tables[fifo]
                    .pending_write()
                    .expect("pending write")
                    .cycle,
            )
        } else {
            self.tables[fifo]
                .read_cycle(ordinal - depth)
                .map(|read_cycle| {
                    let pending = self.tables[fifo].pending_write().expect("pending write");
                    pending.cycle.max(read_cycle + 1)
                })
        };
        if let Some(commit) = ready {
            let pending = self.tables[fifo]
                .take_pending_write()
                .expect("pending write present");
            self.commit_blocking_write(pending.thread, fifo, pending.cycle, commit, pending.value);
        }
    }

    /// Commits a blocking read whose matching write is already in the table.
    fn commit_blocking_read(
        &mut self,
        thread: ThreadId,
        fifo: usize,
        request_cycle: u64,
        write_cycle: u64,
    ) {
        let commit = request_cycle.max(write_cycle + 1);
        let ordinal = self.tables[fifo].reads_committed() + 1;
        let write_node = self.tables[fifo]
            .write_node(ordinal)
            .expect("matching write exists");
        let node = self.new_event_node(thread, request_cycle, commit);
        self.graph.add_edge(write_node, node, 1);
        let value = self.tables[fifo].commit_read(commit, node);
        self.fifo_accesses += 1;
        self.respond(
            thread,
            Response::ReadValue {
                value,
                cycle: commit,
            },
        );
        self.service_pending_write(fifo);
    }

    /// After a write commits, wake a parked blocking read if its matching
    /// write is now available.
    fn service_pending_read(&mut self, fifo: usize) {
        if self.tables[fifo].pending_read().is_none() {
            return;
        }
        if let Some(write_cycle) = self.tables[fifo].next_read_ready() {
            let pending = self.tables[fifo]
                .take_pending_read()
                .expect("pending read present");
            self.commit_blocking_read(pending.thread, fifo, pending.cycle, write_cycle);
        }
    }

    fn try_resolve_or_pool(&mut self, query: Query) {
        let resolution = query.resolve(
            &self.tables[query.fifo.index()],
            self.depths[query.fifo.index()],
        );
        match resolution {
            Resolution::Unknown => self.pool.push(query),
            Resolution::True => self.apply_resolution(query, true),
            Resolution::False => self.apply_resolution(query, false),
        }
    }

    fn apply_resolution(&mut self, query: Query, outcome: bool) {
        self.constraints.push(Constraint {
            fifo: query.fifo,
            kind: query.kind,
            ordinal: query.ordinal,
            node: query.node,
            outcome,
        });
        match query.kind {
            QueryKind::NbWrite => {
                if outcome {
                    self.tables[query.fifo.index()].commit_write(
                        query.value,
                        query.cycle,
                        query.node,
                        false,
                    );
                    self.fifo_accesses += 1;
                    self.service_pending_read(query.fifo.index());
                }
                self.respond(query.thread, Response::NbWrite { accepted: outcome });
            }
            QueryKind::NbRead => {
                if outcome {
                    let value =
                        self.tables[query.fifo.index()].commit_read(query.cycle, query.node);
                    self.fifo_accesses += 1;
                    self.respond(query.thread, Response::NbRead { value: Some(value) });
                    self.service_pending_write(query.fifo.index());
                } else {
                    self.respond(query.thread, Response::NbRead { value: None });
                }
            }
            QueryKind::CanRead | QueryKind::CanWrite => {
                self.respond(query.thread, Response::Status { value: outcome });
            }
        }
    }

    /// Picks the pending query to force-resolve as `false` when every
    /// thread is paused and nothing can otherwise make progress.
    ///
    /// The naive §7.1 rule ("force the earliest query") assumes each
    /// thread's future accesses are at or past its pending one — which
    /// pipelined iteration overlap violates: a paused thread's *next*
    /// iteration can schedule accesses earlier than its pending
    /// late-offset access. The selection therefore consults each paused
    /// thread's forward-progress frontier:
    ///
    /// * a query is *safe* to force when every other paused thread's
    ///   frontier is at or past the query's cycle (no enabling access can
    ///   still appear strictly before it) — the forced `false` is then
    ///   exact, not heuristic;
    /// * candidates are ordered by `(cycle, frontier descending, thread)`:
    ///   earliest first, and among same-cycle queries the thread that can
    ///   reach further back in time is kept runnable longer;
    /// * if no query is provably safe (mutual overlap), the first candidate
    ///   in that order is forced to keep the simulation moving — the same
    ///   deterministic order the cycle-stepped reference applies, so the
    ///   two backends agree even on the heuristic corner.
    fn choose_forced_query(&self) -> Option<usize> {
        if self.pool.is_empty() {
            return None;
        }
        let mut order: Vec<usize> = (0..self.pool.pending()).collect();
        order.sort_by_key(|&i| {
            let q = self.pool.get(i);
            (
                q.cycle,
                std::cmp::Reverse(self.frontier[q.thread]),
                q.thread,
            )
        });
        let safe = order.iter().copied().find(|&i| {
            let q = self.pool.get(i);
            self.paused
                .iter()
                .enumerate()
                .all(|(t, &p)| t == q.thread || !p || self.frontier[t] >= q.cycle)
        });
        safe.or(Some(order[0]))
    }

    /// Step 4 of Fig. 7: with every Func Sim thread paused, resolve as many
    /// queries as possible; if none can be resolved, apply the
    /// forward-progress rule of §7.1 or report a deadlock.
    fn resolve_phase(&mut self) {
        loop {
            let mut progressed = false;
            let mut index = 0;
            while index < self.pool.pending() {
                let resolution = {
                    let query = self.pool.get(index);
                    query.resolve(
                        &self.tables[query.fifo.index()],
                        self.depths[query.fifo.index()],
                    )
                };
                match resolution {
                    Resolution::Unknown => index += 1,
                    Resolution::True => {
                        let query = self.pool.take(index);
                        self.apply_resolution(query, true);
                        progressed = true;
                    }
                    Resolution::False => {
                        let query = self.pool.take(index);
                        self.apply_resolution(query, false);
                        progressed = true;
                    }
                }
            }
            if !progressed {
                break;
            }
        }

        if self.active == 0 && self.accounted() < self.total_threads {
            if let Some(index) = self.choose_forced_query() {
                // §7.1 forward progress: the chosen access's target event
                // (still unknown) cannot commit strictly before it, so the
                // access fails.
                let query = self.pool.take_forced_at(index);
                self.apply_resolution(query, false);
            } else {
                let blocked = self.describe_deadlock();
                let summary = blocked.join("; ");
                self.deadlock = Some(blocked);
                self.shutdown = true;
                self.abort_all_paused(&format!("unresolvable deadlock detected: {summary}"));
            }
        }
    }

    fn describe_deadlock(&self) -> Vec<String> {
        let mut blocked = Vec::new();
        for (fifo_index, table) in self.tables.iter().enumerate() {
            if let Some(pending) = table.pending_read() {
                blocked.push(format!(
                    "task '{}' blocked reading fifo '{}' since cycle {}",
                    self.task_names[pending.thread],
                    self.design.fifos[fifo_index].name,
                    pending.cycle
                ));
            }
            if let Some(pending) = table.pending_write() {
                blocked.push(format!(
                    "task '{}' blocked writing full fifo '{}' since cycle {}",
                    self.task_names[pending.thread],
                    self.design.fifos[fifo_index].name,
                    pending.cycle
                ));
            }
        }
        if blocked.is_empty() {
            vec!["all tasks are paused with no pending queries".to_owned()]
        } else {
            blocked
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::incremental::IncrementalOutcome;
    use crate::test_fixtures::{nb_drop_counter, producer_consumer};
    use omnisim_ir::{DesignBuilder, Expr};
    use omnisim_rtlsim::RtlSimulator;

    fn cyclic_controller_processor(n: i64) -> Design {
        let mut d = DesignBuilder::new("ex3");
        let req = d.fifo("req", 2);
        let resp = d.fifo("resp", 2);
        let out = d.output("sum");
        let controller = d.function("controller", |m| {
            let acc = m.var("acc");
            m.entry(|b| {
                b.assign(acc, Expr::imm(0));
            });
            m.counted_loop("i", n, 1, |b| {
                let i = b.var_expr("i");
                b.fifo_write(req, i);
                let v = b.fifo_read(resp);
                b.assign(acc, Expr::var(acc).add(Expr::var(v)));
            });
            m.exit(|b| {
                b.output(out, Expr::var(acc));
            });
        });
        let processor = d.function("processor", |m| {
            m.counted_loop("i", n, 1, |b| {
                let v = b.fifo_read(req);
                b.fifo_write(resp, Expr::var(v).mul(Expr::imm(2)));
            });
        });
        d.dataflow_top("top", [controller, processor]);
        d.build().unwrap()
    }

    #[test]
    fn type_a_matches_reference_exactly() {
        for (n, depth, ii) in [(32, 2, 1), (64, 4, 2), (100, 1, 1)] {
            let design = producer_consumer(n, depth, ii);
            let reference = RtlSimulator::new(&design).run().unwrap();
            let report = OmniSimulator::new(&design).run().unwrap();
            assert!(report.outcome.is_completed());
            assert_eq!(report.outputs, reference.outputs);
            assert_eq!(
                report.total_cycles, reference.total_cycles,
                "n={n} depth={depth} ii={ii}"
            );
        }
    }

    #[test]
    fn cyclic_blocking_design_matches_reference() {
        let design = cyclic_controller_processor(50);
        let reference = RtlSimulator::new(&design).run().unwrap();
        let report = OmniSimulator::new(&design).run().unwrap();
        assert_eq!(report.outputs, reference.outputs);
        assert_eq!(report.output("sum"), Some((0..50).map(|i| i * 2).sum()));
        assert_eq!(report.total_cycles, reference.total_cycles);
    }

    #[test]
    fn nonblocking_drop_counter_matches_reference() {
        for (n, depth, ii) in [(32, 1, 4), (64, 2, 3), (48, 4, 2)] {
            let design = nb_drop_counter(n, depth, ii);
            let reference = RtlSimulator::new(&design).run().unwrap();
            let report = OmniSimulator::new(&design).run().unwrap();
            assert_eq!(
                report.outputs, reference.outputs,
                "functional outputs must match the reference (n={n} depth={depth} ii={ii})"
            );
            assert_eq!(report.total_cycles, reference.total_cycles);
            assert!(report.output("dropped").unwrap() > 0, "drops must occur");
        }
    }

    #[test]
    fn deadlock_is_detected_not_hung() {
        let mut d = DesignBuilder::new("deadlock");
        let a2b = d.fifo("a2b", 2);
        let b2a = d.fifo("b2a", 2);
        let ta = d.function("task_a", |m| {
            m.entry(|b| {
                let v = b.fifo_read(b2a);
                b.fifo_write(a2b, Expr::var(v));
            });
        });
        let tb = d.function("task_b", |m| {
            m.entry(|b| {
                let v = b.fifo_read(a2b);
                b.fifo_write(b2a, Expr::var(v));
            });
        });
        d.dataflow_top("top", [ta, tb]);
        let design = d.build().unwrap();
        let report = OmniSimulator::new(&design).run().unwrap();
        assert!(report.outcome.is_deadlock());
        match &report.outcome {
            OmniOutcome::Deadlock { blocked } => {
                let detail = blocked.join("; ");
                assert!(detail.contains("task_a"));
                assert!(detail.contains("task_b"));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn repeated_runs_are_deterministic() {
        let design = nb_drop_counter(64, 2, 3);
        let first = OmniSimulator::new(&design).run().unwrap();
        for _ in 0..5 {
            let again = OmniSimulator::new(&design).run().unwrap();
            assert_eq!(again.outputs, first.outputs);
            assert_eq!(again.total_cycles, first.total_cycles);
        }
    }

    #[test]
    fn incremental_state_matches_full_resimulation_when_valid() {
        let design = producer_consumer(64, 2, 2);
        let report = OmniSimulator::new(&design).run().unwrap();
        for depth in [4usize, 16, 64] {
            match report.incremental.try_with_depths(&[depth]).unwrap() {
                IncrementalOutcome::Valid { total_cycles } => {
                    let resized = design.with_fifo_depths(&[depth]);
                    let full = OmniSimulator::new(&resized).run().unwrap();
                    assert_eq!(total_cycles, full.total_cycles, "depth {depth}");
                }
                other => panic!("expected valid incremental result, got {other:?}"),
            }
        }
    }

    #[test]
    fn task_errors_are_reported() {
        let mut d = DesignBuilder::new("oob");
        let data = d.array("data", vec![1, 2, 3]);
        let out = d.output("x");
        d.function_top("f", |m| {
            m.entry(|b| {
                let v = b.array_load(data, Expr::imm(99));
                b.output(out, Expr::var(v));
            });
        });
        let design = d.build().unwrap();
        let err = OmniSimulator::new(&design).run().unwrap_err();
        match err {
            OmniError::Task { task, error } => {
                assert_eq!(task, "f");
                assert!(matches!(error, SimError::ArrayOutOfBounds { .. }));
            }
            other => panic!("expected task error, got {other}"),
        }
    }

    #[test]
    fn front_end_reports_taxonomy() {
        let design = nb_drop_counter(8, 1, 2);
        let sim = OmniSimulator::new(&design);
        assert_eq!(
            sim.taxonomy().class,
            omnisim_ir::DesignClass::TypeC,
            "drop counters make behaviour depend on NB outcomes"
        );
        assert!(sim.front_end_time() <= Duration::from_secs(1));
    }
}
