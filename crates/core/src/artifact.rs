//! Versioned binary codec for the engine's compiled artifact.
//!
//! A [`CompiledOmni`] is, at heart, a frozen baseline [`OmniReport`]: the
//! functional outputs plus the [`IncrementalState`] (event graph, per-FIFO
//! access-node tables, recorded constraints) that answers every subsequent
//! run. This module serializes exactly that — the design itself is *not*
//! embedded; the artifact store keys entries by design content hash and
//! supplies the design again at decode time.
//!
//! Encodings are canonical: the engine's freeze step renumbers graph nodes
//! into `(thread, program-order)` order (see `engine.rs`), so two compiles
//! of the same design produce byte-identical artifacts. Wall-clock timings
//! are deliberately excluded — a decoded artifact reports zeroed
//! [`compile_timings`](omnisim_api::CompiledSim::compile_timings), because
//! the front-end work it represents was paid in some earlier process.

use crate::config::SimConfig;
use crate::incremental::{Constraint, IncrementalState};
use crate::query::QueryKind;
use crate::report::{OmniOutcome, OmniReport, SimStats};
use crate::unified::CompiledOmni;
use omnisim_api::SimTimings;
use omnisim_codec::{frame, unframe, ByteReader, ByteWriter, CodecError};
use omnisim_graph::{Edge, EventGraph, NodeId};
use omnisim_ir::design::OutputMap;
use omnisim_ir::{Design, FifoId};

/// Magic bytes of an encoded engine artifact: "OmniSim Artifact / Omni".
pub const OMNI_MAGIC: [u8; 4] = *b"OSAO";
/// Current engine-artifact encoding version.
pub const OMNI_VERSION: u16 = 1;

/// Encodes a compiled engine artifact into a framed, checksummed byte
/// vector.
pub fn encode_compiled(compiled: &CompiledOmni) -> Vec<u8> {
    let baseline = compiled.baseline();
    let mut w = ByteWriter::with_capacity(4096);
    let config = compiled.config();
    w.u64(config.fuel);
    w.bool(config.eliminate_dead_checks);
    match &baseline.outcome {
        OmniOutcome::Completed => w.u8(0),
        OmniOutcome::Deadlock { blocked } => {
            w.u8(1);
            w.seq(blocked.iter(), |w, task| w.str(task));
        }
    }
    w.seq(baseline.outputs.iter(), |w, (name, &value)| {
        w.str(name);
        w.i64(value);
    });
    w.u64(baseline.total_cycles);
    write_stats(&mut w, &baseline.stats);
    write_state(&mut w, &baseline.incremental);
    frame(OMNI_MAGIC, OMNI_VERSION, &w.into_bytes())
}

/// Decodes an artifact encoded by [`encode_compiled`] against the design it
/// was compiled from.
///
/// # Errors
///
/// Any [`CodecError`]; dangling node references surface as
/// [`CodecError::Invalid`] so a corrupted file can never panic the longest-
/// path machinery.
pub fn decode_compiled(design: &Design, bytes: &[u8]) -> Result<CompiledOmni, CodecError> {
    let payload = unframe(OMNI_MAGIC, OMNI_VERSION, bytes)?;
    let mut r = ByteReader::new(payload);
    let config = SimConfig {
        fuel: r.u64()?,
        eliminate_dead_checks: r.bool()?,
    };
    let outcome = match r.u8()? {
        0 => OmniOutcome::Completed,
        1 => OmniOutcome::Deadlock {
            blocked: r.seq(|r| r.str())?,
        },
        tag => return Err(CodecError::Invalid(format!("outcome tag {tag}"))),
    };
    let mut outputs = OutputMap::new();
    let entries = r.len()?;
    for _ in 0..entries {
        let name = r.str()?;
        let value = r.i64()?;
        outputs.insert(name, value);
    }
    let total_cycles = r.u64()?;
    let stats = read_stats(&mut r)?;
    let incremental = read_state(&mut r)?;
    r.finish()?;
    let baseline = OmniReport {
        outcome,
        outputs,
        total_cycles,
        timings: SimTimings::default(),
        stats,
        incremental,
    };
    Ok(CompiledOmni::from_baseline(design, config, baseline))
}

fn write_stats(w: &mut ByteWriter, stats: &SimStats) {
    w.usize(stats.threads);
    w.usize(stats.graph_nodes);
    w.usize(stats.graph_edges);
    w.u64(stats.fifo_accesses);
    w.usize(stats.queries);
    w.usize(stats.queries_forced_false);
    w.usize(stats.constraints);
    w.u64(stats.ops_executed);
}

fn read_stats(r: &mut ByteReader<'_>) -> Result<SimStats, CodecError> {
    Ok(SimStats {
        threads: r.usize()?,
        graph_nodes: r.usize()?,
        graph_edges: r.usize()?,
        fifo_accesses: r.u64()?,
        queries: r.usize()?,
        queries_forced_false: r.usize()?,
        constraints: r.usize()?,
        ops_executed: r.u64()?,
    })
}

fn write_state(w: &mut ByteWriter, state: &IncrementalState) {
    let graph = &state.graph;
    w.seq(graph.base_times().iter(), |w, &base| w.u64(base));
    w.seq(graph.times().iter(), |w, &time| w.u64(time));
    w.usize(graph.edge_count());
    for edge in graph.edges() {
        w.u32(edge.from.0);
        w.u32(edge.to.0);
        w.i64(edge.weight);
    }
    w.seq(state.fifo_write_nodes.iter(), |w, nodes| {
        w.seq(nodes.iter(), |w, node| w.u32(node.0));
    });
    w.seq(state.fifo_write_blocking.iter(), |w, flags| {
        w.seq(flags.iter(), |w, &flag| w.bool(flag));
    });
    w.seq(state.fifo_read_nodes.iter(), |w, nodes| {
        w.seq(nodes.iter(), |w, node| w.u32(node.0));
    });
    w.seq(state.end_nodes.iter(), |w, node| {
        w.opt(node.as_ref(), |w, node| w.u32(node.0));
    });
    w.seq(state.constraints.iter(), |w, constraint| {
        w.u32(constraint.fifo.0);
        w.u8(match constraint.kind {
            QueryKind::NbWrite => 0,
            QueryKind::NbRead => 1,
            QueryKind::CanRead => 2,
            QueryKind::CanWrite => 3,
        });
        w.usize(constraint.ordinal);
        w.u32(constraint.node.0);
        w.bool(constraint.outcome);
    });
    w.seq(state.original_depths.iter(), |w, &depth| w.usize(depth));
}

fn read_state(r: &mut ByteReader<'_>) -> Result<IncrementalState, CodecError> {
    let base = r.seq(|r| r.u64())?;
    let time = r.seq(|r| r.u64())?;
    if base.len() != time.len() {
        return Err(CodecError::Invalid(format!(
            "graph has {} base times but {} node times",
            base.len(),
            time.len()
        )));
    }
    let nodes = base.len();
    let node = |raw: u32| -> Result<NodeId, CodecError> {
        if (raw as usize) < nodes {
            Ok(NodeId(raw))
        } else {
            Err(CodecError::Invalid(format!(
                "node n{raw} out of range (graph has {nodes} nodes)"
            )))
        }
    };
    let edge_count = r.len()?;
    let mut edges = Vec::with_capacity(edge_count.min(1 << 20));
    for _ in 0..edge_count {
        let from = node(r.u32()?)?;
        let to = node(r.u32()?)?;
        let weight = r.i64()?;
        edges.push(Edge::new(from, to, weight));
    }
    let graph = EventGraph::from_parts(base, time, edges);
    let fifo_write_nodes = r.seq(|r| r.seq(|r| node(r.u32()?)))?;
    let fifo_write_blocking = r.seq(|r| r.seq(|r| r.bool()))?;
    let fifo_read_nodes = r.seq(|r| r.seq(|r| node(r.u32()?)))?;
    let end_nodes = r.seq(|r| r.opt(|r| node(r.u32()?)))?;
    let constraints = r.seq(|r| {
        let fifo = FifoId(r.u32()?);
        let kind = match r.u8()? {
            0 => QueryKind::NbWrite,
            1 => QueryKind::NbRead,
            2 => QueryKind::CanRead,
            3 => QueryKind::CanWrite,
            tag => return Err(CodecError::Invalid(format!("query kind tag {tag}"))),
        };
        Ok(Constraint {
            fifo,
            kind,
            ordinal: r.usize()?,
            node: node(r.u32()?)?,
            outcome: r.bool()?,
        })
    })?;
    let original_depths = r.seq(|r| r.usize())?;
    Ok(IncrementalState {
        graph,
        fifo_write_nodes,
        fifo_write_blocking,
        fifo_read_nodes,
        end_nodes,
        constraints,
        original_depths,
    })
}
