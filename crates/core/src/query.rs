//! Queries: non-blocking FIFO accesses and status checks awaiting
//! resolution by the Perf Sim thread (Table 2, §6.2 step 4).

use crate::fifo_table::FifoTable;
use crate::request::ThreadId;
use omnisim_graph::NodeId;
use omnisim_ir::FifoId;

/// The kind of non-blocking access a query represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum QueryKind {
    /// `write_nb()` — can the w-th write commit?
    NbWrite,
    /// `read_nb()` — can the r-th read commit?
    NbRead,
    /// `empty()` — is there readable data? (resolved like a read query)
    CanRead,
    /// `full()` — is there writable space? (resolved like a write query)
    CanWrite,
}

impl QueryKind {
    /// True for queries resolved with the write rules of Table 2 (rows 1–2).
    pub fn is_write_side(self) -> bool {
        matches!(self, QueryKind::NbWrite | QueryKind::CanWrite)
    }
}

/// One pending query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// The paused thread that issued the query.
    pub thread: ThreadId,
    /// The FIFO involved.
    pub fifo: FifoId,
    /// The kind of access.
    pub kind: QueryKind,
    /// The hardware cycle of the attempted access.
    pub cycle: u64,
    /// The 1-based ordinal the access would have (w-th write / r-th read).
    pub ordinal: usize,
    /// The value to push if an `NbWrite` succeeds.
    pub value: i64,
    /// The simulation-graph node created for the query itself.
    pub node: NodeId,
}

/// Resolution result of a query against the FIFO tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resolution {
    /// The access succeeds (write accepted / data readable).
    True,
    /// The access fails (FIFO full / empty at the query cycle).
    False,
    /// The target event has not been simulated yet; retry later.
    Unknown,
}

impl Query {
    /// Attempts to resolve this query against the FIFO table, applying the
    /// rules of Table 2 with FIFO depth `depth`.
    pub fn resolve(&self, table: &FifoTable, depth: usize) -> Resolution {
        let result = if self.kind.is_write_side() {
            table.can_write_at(self.ordinal, self.cycle, depth)
        } else {
            table.can_read_at(self.ordinal, self.cycle)
        };
        match result {
            Some(true) => Resolution::True,
            Some(false) => Resolution::False,
            None => Resolution::Unknown,
        }
    }
}

/// The pool of unresolved queries held by the Perf Sim thread.
#[derive(Debug, Default)]
pub struct QueryPool {
    queries: Vec<Query>,
    total_created: usize,
    forced_false: usize,
}

impl QueryPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a query to the pool.
    pub fn push(&mut self, query: Query) {
        self.total_created += 1;
        self.queries.push(query);
    }

    /// Number of unresolved queries currently pending.
    pub fn pending(&self) -> usize {
        self.queries.len()
    }

    /// True if no queries are pending.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Total queries ever created.
    pub fn total_created(&self) -> usize {
        self.total_created
    }

    /// How many queries had to be resolved by the forward-progress rule.
    pub fn forced_false(&self) -> usize {
        self.forced_false
    }

    /// Removes and returns the query at `index`.
    pub fn take(&mut self, index: usize) -> Query {
        self.queries.remove(index)
    }

    /// Returns the query at `index` without removing it.
    pub fn get(&self, index: usize) -> &Query {
        &self.queries[index]
    }

    /// Iterates over pending queries with their indices.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &Query)> {
        self.queries.iter().enumerate()
    }

    /// Removes the query at `index` and counts it as force-resolved. The
    /// engine picks the index: the earliest *safely forceable* query under
    /// the frontier-aware forward-progress rule of §7.1.
    pub fn take_forced_at(&mut self, index: usize) -> Query {
        self.forced_false += 1;
        self.queries.remove(index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn query(kind: QueryKind, cycle: u64, ordinal: usize) -> Query {
        Query {
            thread: 0,
            fifo: FifoId(0),
            kind,
            cycle,
            ordinal,
            value: 0,
            node: NodeId(0),
        }
    }

    #[test]
    fn nb_write_resolution_depends_on_depth_and_reads() {
        let mut table = FifoTable::new();
        table.commit_write(1, 1, NodeId(0), true);
        table.commit_write(2, 2, NodeId(1), true);
        // Third write into a depth-2 FIFO at cycle 4; first read not yet done.
        let q = query(QueryKind::NbWrite, 4, 3);
        assert_eq!(q.resolve(&table, 2), Resolution::Unknown);
        table.commit_read(4, NodeId(2));
        assert_eq!(
            q.resolve(&table, 2),
            Resolution::False,
            "read at same cycle"
        );
        let q_later = query(QueryKind::NbWrite, 5, 3);
        assert_eq!(q_later.resolve(&table, 2), Resolution::True);
        // With a larger depth the write is unconditionally fine.
        assert_eq!(
            query(QueryKind::NbWrite, 1, 3).resolve(&table, 8),
            Resolution::True
        );
    }

    #[test]
    fn nb_read_resolution_checks_matching_write() {
        let mut table = FifoTable::new();
        let q = query(QueryKind::NbRead, 5, 1);
        assert_eq!(q.resolve(&table, 4), Resolution::Unknown);
        table.commit_write(9, 5, NodeId(0), true);
        assert_eq!(q.resolve(&table, 4), Resolution::False, "write at cycle 5");
        assert_eq!(
            query(QueryKind::NbRead, 6, 1).resolve(&table, 4),
            Resolution::True
        );
    }

    #[test]
    fn can_read_behaves_like_nb_read() {
        let mut table = FifoTable::new();
        table.commit_write(3, 10, NodeId(0), true);
        assert_eq!(
            query(QueryKind::CanRead, 10, 1).resolve(&table, 1),
            Resolution::False
        );
        assert_eq!(
            query(QueryKind::CanRead, 11, 1).resolve(&table, 1),
            Resolution::True
        );
    }

    #[test]
    fn pool_take_forced_counts_and_removes() {
        let mut pool = QueryPool::new();
        pool.push(query(QueryKind::NbWrite, 9, 1));
        pool.push(query(QueryKind::NbRead, 3, 1));
        pool.push(query(QueryKind::CanRead, 7, 1));
        assert_eq!(pool.pending(), 3);
        let forced = pool.take_forced_at(1);
        assert_eq!(forced.cycle, 3);
        assert_eq!(pool.forced_false(), 1);
        assert_eq!(pool.pending(), 2);
        assert_eq!(pool.total_created(), 3);
    }
}
