//! FIFO read/write tables: the data structure at the heart of OmniSim's
//! thread orchestration (§5, §6.2).
//!
//! Instead of a simple occupancy counter, each FIFO records the exact
//! hardware cycle of every committed read and write, together with the
//! simulation-graph node that represents the access. This is what lets the
//! Perf Sim thread answer queries such as "can the *w*-th write succeed at
//! cycle *c*?" purely from hardware timing, regardless of the order in which
//! the OS happened to schedule the Func Sim threads.

use crate::request::ThreadId;
use omnisim_graph::NodeId;
use std::collections::VecDeque;

/// A blocking read that is parked until the matching write arrives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PendingRead {
    /// The paused thread.
    pub thread: ThreadId,
    /// The cycle at which the read was first attempted.
    pub cycle: u64,
}

/// A blocking write that is parked until the read freeing its slot arrives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PendingWrite {
    /// The paused thread.
    pub thread: ThreadId,
    /// The cycle at which the write was first attempted.
    pub cycle: u64,
    /// The value to push once space is available.
    pub value: i64,
}

/// The read/write table of one FIFO.
#[derive(Debug, Clone, Default)]
pub struct FifoTable {
    /// Values written but not yet read, in FIFO order.
    values: VecDeque<i64>,
    /// Commit cycle of every write, in order.
    write_cycles: Vec<u64>,
    /// Commit cycle of every read, in order.
    read_cycles: Vec<u64>,
    /// Simulation-graph node of every write, in order.
    write_nodes: Vec<NodeId>,
    /// Whether each committed write was a blocking write (true) or a
    /// successful non-blocking write (false). Only blocking writes stall, so
    /// only they receive write-after-read edges during finalization.
    write_blocking: Vec<bool>,
    /// Simulation-graph node of every read, in order.
    read_nodes: Vec<NodeId>,
    /// At most one parked blocking read (FIFOs are point-to-point, so only
    /// the single consumer can ever be waiting).
    pending_read: Option<PendingRead>,
    /// At most one parked blocking write (single producer).
    pending_write: Option<PendingWrite>,
}

impl FifoTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of writes committed so far.
    pub fn writes_committed(&self) -> usize {
        self.write_cycles.len()
    }

    /// Number of reads committed so far.
    pub fn reads_committed(&self) -> usize {
        self.read_cycles.len()
    }

    /// Values currently buffered (committed writes not yet read).
    pub fn occupancy(&self) -> usize {
        self.values.len()
    }

    /// Commit cycle of the `i`-th (1-based) write, if committed.
    pub fn write_cycle(&self, ordinal: usize) -> Option<u64> {
        self.write_cycles.get(ordinal.checked_sub(1)?).copied()
    }

    /// Commit cycle of the `i`-th (1-based) read, if committed.
    pub fn read_cycle(&self, ordinal: usize) -> Option<u64> {
        self.read_cycles.get(ordinal.checked_sub(1)?).copied()
    }

    /// Graph node of the `i`-th (1-based) write, if committed.
    pub fn write_node(&self, ordinal: usize) -> Option<NodeId> {
        self.write_nodes.get(ordinal.checked_sub(1)?).copied()
    }

    /// Graph node of the `i`-th (1-based) read, if committed.
    pub fn read_node(&self, ordinal: usize) -> Option<NodeId> {
        self.read_nodes.get(ordinal.checked_sub(1)?).copied()
    }

    /// All write nodes in commit order.
    pub fn write_nodes(&self) -> &[NodeId] {
        &self.write_nodes
    }

    /// All read nodes in commit order.
    pub fn read_nodes(&self) -> &[NodeId] {
        &self.read_nodes
    }

    /// Commits a write at `cycle`, represented by graph node `node`.
    /// `blocking` records whether the write came from a blocking access
    /// (stallable) or a successful non-blocking access (never stalled).
    pub fn commit_write(&mut self, value: i64, cycle: u64, node: NodeId, blocking: bool) {
        self.values.push_back(value);
        self.write_cycles.push(cycle);
        self.write_nodes.push(node);
        self.write_blocking.push(blocking);
    }

    /// Blocking flag of every committed write, in commit order.
    pub fn write_blocking_flags(&self) -> &[bool] {
        &self.write_blocking
    }

    /// Commits a read at `cycle`, represented by graph node `node`, and
    /// returns the popped value.
    ///
    /// # Panics
    ///
    /// Panics if no value is buffered; callers must check
    /// [`FifoTable::next_read_ready`] (or the Table 2 rules) first.
    pub fn commit_read(&mut self, cycle: u64, node: NodeId) -> i64 {
        let value = self
            .values
            .pop_front()
            .expect("commit_read on a fifo with no buffered value");
        self.read_cycles.push(cycle);
        self.read_nodes.push(node);
        value
    }

    /// If the next (r-th) read were attempted at `cycle`, has its matching
    /// write already committed, and if so at what cycle?
    ///
    /// Returns `Some(write_cycle)` when the write exists (the read can then
    /// commit at `max(cycle, write_cycle + 1)`), or `None` when the matching
    /// write has not been simulated yet.
    pub fn next_read_ready(&self) -> Option<u64> {
        self.write_cycle(self.reads_committed() + 1)
    }

    /// Table 2, row 3: can the `r`-th read succeed at cycle `c`?
    ///
    /// * `Some(true)` — the `r`-th write committed strictly before `c`.
    /// * `Some(false)` — the `r`-th write committed at or after `c`.
    /// * `None` — the `r`-th write has not been simulated yet (unknown).
    pub fn can_read_at(&self, ordinal: usize, cycle: u64) -> Option<bool> {
        self.write_cycle(ordinal).map(|wc| wc < cycle)
    }

    /// Table 2, rows 1–2: can the `w`-th write succeed at cycle `c` with
    /// FIFO depth `depth`?
    ///
    /// * `Some(true)` — `w ≤ depth`, or the `(w − depth)`-th read committed
    ///   strictly before `c`.
    /// * `Some(false)` — the `(w − depth)`-th read committed at or after `c`.
    /// * `None` — the `(w − depth)`-th read has not been simulated yet.
    pub fn can_write_at(&self, ordinal: usize, cycle: u64, depth: usize) -> Option<bool> {
        if ordinal <= depth {
            return Some(true);
        }
        self.read_cycle(ordinal - depth).map(|rc| rc < cycle)
    }

    /// Parks a blocking read until a write arrives.
    ///
    /// # Panics
    ///
    /// Panics if a read is already parked (FIFOs are point-to-point, so this
    /// would indicate an engine bug).
    pub fn park_read(&mut self, pending: PendingRead) {
        assert!(
            self.pending_read.is_none(),
            "two blocking reads parked on the same fifo"
        );
        self.pending_read = Some(pending);
    }

    /// Takes the parked blocking read, if any.
    pub fn take_pending_read(&mut self) -> Option<PendingRead> {
        self.pending_read.take()
    }

    /// Returns the parked blocking read without removing it.
    pub fn pending_read(&self) -> Option<&PendingRead> {
        self.pending_read.as_ref()
    }

    /// Parks a blocking write until space becomes available.
    ///
    /// # Panics
    ///
    /// Panics if a write is already parked (FIFOs are point-to-point, so this
    /// would indicate an engine bug).
    pub fn park_write(&mut self, pending: PendingWrite) {
        assert!(
            self.pending_write.is_none(),
            "two blocking writes parked on the same fifo"
        );
        self.pending_write = Some(pending);
    }

    /// Takes the parked blocking write, if any.
    pub fn take_pending_write(&mut self) -> Option<PendingWrite> {
        self.pending_write.take()
    }

    /// Returns the parked blocking write without removing it.
    pub fn pending_write(&self) -> Option<&PendingWrite> {
        self.pending_write.as_ref()
    }

    /// Values left in the FIFO at the end of simulation.
    pub fn leftover(&self) -> usize {
        self.values.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn ordinal_accessors_are_one_based() {
        let mut t = FifoTable::new();
        t.commit_write(10, 3, node(0), true);
        t.commit_write(20, 5, node(1), true);
        assert_eq!(t.write_cycle(1), Some(3));
        assert_eq!(t.write_cycle(2), Some(5));
        assert_eq!(t.write_cycle(3), None);
        assert_eq!(t.write_cycle(0), None);
        assert_eq!(t.writes_committed(), 2);
        assert_eq!(t.occupancy(), 2);
    }

    #[test]
    fn read_resolution_follows_table_2() {
        let mut t = FifoTable::new();
        assert_eq!(t.can_read_at(1, 10), None, "write not simulated yet");
        t.commit_write(7, 4, node(0), true);
        assert_eq!(t.can_read_at(1, 4), Some(false), "same cycle is too early");
        assert_eq!(t.can_read_at(1, 5), Some(true));
        let v = t.commit_read(5, node(1));
        assert_eq!(v, 7);
        assert_eq!(t.reads_committed(), 1);
        assert_eq!(t.occupancy(), 0);
    }

    #[test]
    fn write_resolution_follows_table_2() {
        let mut t = FifoTable::new();
        // Depth 2: first two writes always succeed.
        assert_eq!(t.can_write_at(1, 1, 2), Some(true));
        assert_eq!(t.can_write_at(2, 1, 2), Some(true));
        // Third write needs the first read.
        assert_eq!(t.can_write_at(3, 9, 2), None);
        t.commit_write(1, 1, node(0), true);
        t.commit_write(2, 2, node(1), true);
        t.commit_read(6, node(2));
        assert_eq!(t.can_write_at(3, 6, 2), Some(false));
        assert_eq!(t.can_write_at(3, 7, 2), Some(true));
    }

    #[test]
    fn pending_read_park_and_take() {
        let mut t = FifoTable::new();
        assert!(t.pending_read().is_none());
        t.park_read(PendingRead {
            thread: 2,
            cycle: 11,
        });
        assert_eq!(t.pending_read().unwrap().thread, 2);
        let taken = t.take_pending_read().unwrap();
        assert_eq!(taken.cycle, 11);
        assert!(t.pending_read().is_none());
    }

    #[test]
    #[should_panic(expected = "two blocking reads parked")]
    fn double_park_panics() {
        let mut t = FifoTable::new();
        t.park_read(PendingRead {
            thread: 0,
            cycle: 1,
        });
        t.park_read(PendingRead {
            thread: 1,
            cycle: 2,
        });
    }

    #[test]
    fn next_read_ready_reports_matching_write() {
        let mut t = FifoTable::new();
        assert_eq!(t.next_read_ready(), None);
        t.commit_write(5, 8, node(0), true);
        assert_eq!(t.next_read_ready(), Some(8));
        t.commit_read(9, node(1));
        assert_eq!(t.next_read_ready(), None);
    }
}
