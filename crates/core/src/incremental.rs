//! Incremental re-simulation under changed FIFO depths (§7.2, Table 6).
//!
//! During a run, every resolved query is recorded as a [`Constraint`]: which
//! access it was, what the outcome was, and which simulation-graph node
//! represents the access. Changing FIFO depths only changes the
//! write-after-read overlay edges of the finalization step, so the engine can
//! re-run finalization under the new depths, re-evaluate every constraint
//! against the new node times, and — when all outcomes are unchanged — reuse
//! the whole simulation graph, turning a full re-simulation into a
//! microsecond-scale longest-path pass. If any constraint flips, the control
//! or data flow of the design could have diverged, and a full re-simulation
//! is required.
//!
//! Because the engine's node times are recorded *with* the stalls observed
//! under the original FIFO depths, the incremental latency is a **sound,
//! conservative** estimate when depths grow: it never under-estimates the
//! resized design's latency and never exceeds the original latency. For the
//! FIFO-sizing workflows of Table 6 (checking whether a size change is safe
//! and how much it helps) this is exactly what is needed; exact numbers are
//! always available through a full re-simulation.

use crate::query::QueryKind;
use omnisim_graph::{CycleError, Edge, EventGraph, NodeId};
use omnisim_ir::FifoId;

/// A recorded query outcome, checked again whenever FIFO depths change.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Constraint {
    /// The FIFO involved.
    pub fifo: FifoId,
    /// The kind of non-blocking access.
    pub kind: QueryKind,
    /// The 1-based ordinal of the access (w-th write / r-th read).
    pub ordinal: usize,
    /// The simulation-graph node representing the query itself.
    pub node: NodeId,
    /// The outcome observed during the original run.
    pub outcome: bool,
}

/// Result of attempting an incremental re-simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IncrementalOutcome {
    /// All constraints still hold: the graph is valid for the new depths and
    /// the new latency is reported without re-simulating.
    Valid {
        /// End-to-end latency under the new FIFO depths.
        total_cycles: u64,
    },
    /// A constraint resolved differently under the new depths; functional
    /// behaviour could diverge, so a full re-simulation is required.
    ConstraintViolated {
        /// Index into [`IncrementalState::constraints`] of the first
        /// violated constraint.
        constraint: usize,
    },
    /// Under the new depths, a committed **blocking** write has no freeing
    /// read at all (`ordinal > depth + total reads`): the write could never
    /// commit, so the resized design would deadlock (or behave differently
    /// if non-blocking outcomes unblock it). The baseline graph cannot
    /// certify such a point; a full re-simulation is required. This arises
    /// when the baseline run leaves data in a FIFO (the producer wrote more
    /// than the consumer read) and a probe shrinks that FIFO below the
    /// leftover amount.
    DepthInfeasible {
        /// Index of the first FIFO (in declaration order) whose depth is
        /// infeasible.
        fifo: usize,
    },
    /// The write-after-read overlay at these depths is cyclic: with
    /// blocking semantics every execution order violates a constraint, so
    /// the resized design deadlocks at these depths (or, if non-blocking
    /// outcomes would flip, diverges). Multi-rate reconvergent pipelines
    /// reach this with undersized FIFOs. The baseline graph cannot certify
    /// such a point; a full re-simulation is required to characterise it.
    DepthCyclic,
}

impl IncrementalOutcome {
    /// True if the incremental result is usable.
    pub fn is_valid(&self) -> bool {
        matches!(self, IncrementalOutcome::Valid { .. })
    }
}

/// Everything preserved from a run that is needed to re-finalize it under
/// different FIFO depths.
#[derive(Debug)]
pub struct IncrementalState {
    /// The partial simulation graph built during execution.
    pub graph: EventGraph,
    /// Per-FIFO committed write nodes, in commit order.
    pub fifo_write_nodes: Vec<Vec<NodeId>>,
    /// Per-FIFO blocking flag of each committed write. Only blocking writes
    /// can stall, so only they receive write-after-read overlay edges.
    pub fifo_write_blocking: Vec<Vec<bool>>,
    /// Per-FIFO committed read nodes, in commit order.
    pub fifo_read_nodes: Vec<Vec<NodeId>>,
    /// Per-task end nodes (absent for tasks that never finished).
    pub end_nodes: Vec<Option<NodeId>>,
    /// Constraints recorded for every resolved query.
    pub constraints: Vec<Constraint>,
    /// FIFO depths the design was originally simulated with.
    pub original_depths: Vec<usize>,
}

impl IncrementalState {
    /// Builds the write-after-read overlay edges for the given depths: the
    /// *w*-th **blocking** write of a FIFO of depth *S* must happen strictly
    /// after the *(w − S)*-th read. Non-blocking writes never stall — if they
    /// could not have committed at their cycle they would have failed
    /// instead, which is what the constraint check detects.
    pub fn war_overlay(&self, depths: &[usize]) -> Vec<Edge> {
        let mut overlay = Vec::new();
        for (fifo, &depth) in depths.iter().enumerate() {
            let writes = &self.fifo_write_nodes[fifo];
            let blocking = &self.fifo_write_blocking[fifo];
            let reads = &self.fifo_read_nodes[fifo];
            for w in (depth + 1)..=writes.len() {
                if !blocking[w - 1] {
                    continue;
                }
                if let Some(&read_node) = reads.get(w - depth - 1) {
                    overlay.push(Edge::new(read_node, writes[w - 1], 1));
                }
            }
        }
        overlay
    }

    /// Finalizes the run under the given depths: longest-path times with the
    /// write-after-read overlay, returning per-node times.
    ///
    /// # Errors
    ///
    /// Returns [`CycleError`] if the combined constraint set is cyclic.
    pub fn finalize_times(&self, depths: &[usize]) -> Result<Vec<u64>, CycleError> {
        self.graph.times_with_overlay(&self.war_overlay(depths))
    }

    /// Computes the end-to-end latency implied by a set of node times.
    pub fn latency_from_times(&self, times: &[u64]) -> u64 {
        let end = self
            .end_nodes
            .iter()
            .flatten()
            .map(|n| times[n.index()])
            .max();
        match end {
            Some(t) => t + 1,
            None => times.iter().copied().max().unwrap_or(0),
        }
    }

    /// Finalizes the run under the given depths and returns the latency.
    ///
    /// # Errors
    ///
    /// Returns [`CycleError`] if the combined constraint set is cyclic.
    pub fn finalize_latency(&self, depths: &[usize]) -> Result<u64, CycleError> {
        Ok(self.latency_from_times(&self.finalize_times(depths)?))
    }

    /// Attempts an incremental re-simulation with new FIFO depths (§7.2).
    ///
    /// Re-runs finalization under `depths`, then re-evaluates every recorded
    /// constraint against the new node times. If all outcomes are unchanged,
    /// the new latency is returned; otherwise the index of the first violated
    /// constraint is reported and the caller must fall back to a full
    /// re-simulation of the re-sized design.
    ///
    /// # Errors
    ///
    /// Returns [`CycleError`] if the combined constraint set is cyclic, or an
    /// error string if `depths` has the wrong length.
    pub fn try_with_depths(&self, depths: &[usize]) -> Result<IncrementalOutcome, CycleError> {
        assert_eq!(
            depths.len(),
            self.fifo_write_nodes.len(),
            "depth vector length must match the number of FIFOs"
        );
        if let Some(fifo) = self.first_infeasible_fifo(depths) {
            return Ok(IncrementalOutcome::DepthInfeasible { fifo });
        }
        // A cyclic overlay is an answer, not an engine error: it means the
        // constraints admit no schedule, i.e. the resized design deadlocks.
        let Ok(times) = self.finalize_times(depths) else {
            return Ok(IncrementalOutcome::DepthCyclic);
        };
        for (index, constraint) in self.constraints.iter().enumerate() {
            let new_outcome = self.evaluate_constraint(constraint, depths, &times);
            if new_outcome != constraint.outcome {
                return Ok(IncrementalOutcome::ConstraintViolated { constraint: index });
            }
        }
        Ok(IncrementalOutcome::Valid {
            total_cycles: self.latency_from_times(&times),
        })
    }

    /// The first FIFO (in declaration order) holding a committed blocking
    /// write whose freeing read does not exist under `depths` — the
    /// [`IncrementalOutcome::DepthInfeasible`] detection shared verbatim
    /// with the compiled `SweepPlan` evaluator.
    pub fn first_infeasible_fifo(&self, depths: &[usize]) -> Option<usize> {
        depths.iter().enumerate().position(|(f, &depth)| {
            let writes = self.fifo_write_nodes[f].len();
            let reads = self.fifo_read_nodes[f].len();
            writes > depth + reads
                && self.fifo_write_blocking[f][depth + reads..writes]
                    .iter()
                    .any(|&blocking| blocking)
        })
    }

    fn evaluate_constraint(
        &self,
        constraint: &Constraint,
        depths: &[usize],
        times: &[u64],
    ) -> bool {
        let fifo = constraint.fifo.index();
        let query_time = times[constraint.node.index()];
        if constraint.kind.is_write_side() {
            let depth = depths[fifo];
            if constraint.ordinal <= depth {
                return true;
            }
            match self.fifo_read_nodes[fifo].get(constraint.ordinal - depth - 1) {
                Some(read_node) => times[read_node.index()] < query_time,
                None => false,
            }
        } else {
            match self.fifo_write_nodes[fifo].get(constraint.ordinal - 1) {
                Some(write_node) => times[write_node.index()] < query_time,
                None => false,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Hand-built state modelling a producer and a consumer:
    ///
    /// * writes w1 (blocking, cycle 1), w2 (blocking, cycle 2), w3
    ///   (non-blocking, succeeded at cycle 4, original depth 2),
    /// * a failed fourth non-blocking write attempt q4 at cycle 5,
    /// * reads r1..r3 at cycles 3, 5, 6.
    fn sample_state() -> IncrementalState {
        let mut graph = EventGraph::new();
        let w1 = graph.add_node(1);
        let w2 = graph.add_node(2);
        let w3 = graph.add_node(4);
        let q4 = graph.add_node(5);
        let r1 = graph.add_node(3);
        let r2 = graph.add_node(5);
        let r3 = graph.add_node(6);
        let end_p = graph.add_node(6);
        let end_c = graph.add_node(7);
        // Producer sequence.
        graph.add_edge(w1, w2, 1);
        graph.add_edge(w2, w3, 2);
        graph.add_edge(w3, q4, 1);
        graph.add_edge(q4, end_p, 1);
        // Consumer sequence.
        graph.add_edge(r1, r2, 2);
        graph.add_edge(r2, r3, 1);
        graph.add_edge(r3, end_c, 1);
        // Read-after-write (blocking reads).
        graph.add_edge(w1, r1, 1);
        graph.add_edge(w2, r2, 1);
        graph.add_edge(w3, r3, 1);
        IncrementalState {
            graph,
            fifo_write_nodes: vec![vec![w1, w2, w3]],
            fifo_write_blocking: vec![vec![true, true, false]],
            fifo_read_nodes: vec![vec![r1, r2, r3]],
            end_nodes: vec![Some(end_p), Some(end_c)],
            constraints: vec![
                Constraint {
                    fifo: FifoId(0),
                    kind: QueryKind::NbWrite,
                    ordinal: 3,
                    node: w3,
                    outcome: true,
                },
                Constraint {
                    fifo: FifoId(0),
                    kind: QueryKind::NbWrite,
                    ordinal: 4,
                    node: q4,
                    outcome: false,
                },
            ],
            original_depths: vec![2],
        }
    }

    #[test]
    fn latency_reflects_war_constraints() {
        let state = sample_state();
        let wide = state.finalize_latency(&[8]).unwrap();
        let narrow = state.finalize_latency(&[1]).unwrap();
        assert!(narrow >= wide, "narrow FIFOs can only add stalls");
        assert_eq!(wide, 8, "latency is max end-node time + 1");
    }

    #[test]
    fn war_overlay_skips_nonblocking_writes() {
        let state = sample_state();
        assert_eq!(state.war_overlay(&[3]).len(), 0);
        // Depth 2 would constrain only w3, which is non-blocking.
        assert_eq!(state.war_overlay(&[2]).len(), 0);
        // Depth 1 would constrain w2 and w3, but w3 is non-blocking.
        assert_eq!(state.war_overlay(&[1]).len(), 1);
    }

    #[test]
    fn incremental_valid_for_original_and_smaller_depths() {
        let state = sample_state();
        match state.try_with_depths(&[2]).unwrap() {
            IncrementalOutcome::Valid { total_cycles } => assert_eq!(total_cycles, 8),
            other => panic!("expected valid, got {other:?}"),
        }
        // Depth 1 delays the producer but does not flip any outcome.
        match state.try_with_depths(&[1]).unwrap() {
            IncrementalOutcome::Valid { total_cycles } => assert!(total_cycles >= 8),
            other => panic!("expected valid, got {other:?}"),
        }
    }

    #[test]
    fn incremental_detects_violated_constraint_on_larger_depth() {
        let state = sample_state();
        // With depth 4 the previously failed fourth write would now succeed:
        // the recorded `false` outcome no longer holds, so a full
        // re-simulation is required (the Table 6 "Non-incremental" case).
        match state.try_with_depths(&[4]).unwrap() {
            IncrementalOutcome::ConstraintViolated { constraint } => assert_eq!(constraint, 1),
            other => panic!("expected violation, got {other:?}"),
        }
        assert!(!state.try_with_depths(&[4]).unwrap().is_valid());
    }

    #[test]
    #[should_panic(expected = "depth vector length")]
    fn wrong_depth_vector_length_panics() {
        let state = sample_state();
        let _ = state.try_with_depths(&[1, 2]);
    }
}
