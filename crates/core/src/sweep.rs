//! Batch FIFO-depth design-space exploration — the Table 6 workflow as a
//! first-class API.
//!
//! [`Sweep`] runs the design once, then answers every candidate depth vector
//! from the recorded [`IncrementalState`](crate::IncrementalState) whenever
//! the constraints still hold (§7.2), transparently falling back to a full
//! re-simulation of the resized design when they do not. Fallback runs are
//! independent, so by default they execute in parallel on scoped threads
//! (the container build has no access to external crates, otherwise this
//! would be a `rayon` parallel iterator); [`Sweep::sequential`] disables
//! that for deterministic profiling.
//!
//! ```
//! use omnisim::Sweep;
//! use omnisim_ir::{DesignBuilder, Expr};
//!
//! let mut d = DesignBuilder::new("pc");
//! let out = d.output("sum");
//! let q = d.fifo("q", 2);
//! let p = d.function("p", |m| {
//!     m.counted_loop("i", 16, 1, |b| {
//!         let i = b.var_expr("i");
//!         b.fifo_write(q, i.add(Expr::imm(1)));
//!     });
//! });
//! let c = d.function("c", |m| {
//!     let acc = m.var("acc");
//!     m.entry(|b| { b.assign(acc, Expr::imm(0)); });
//!     m.counted_loop("i", 16, 2, |b| {
//!         let v = b.fifo_read(q);
//!         b.assign(acc, Expr::var(acc).add(Expr::var(v)));
//!     });
//!     m.exit(|b| { b.output(out, Expr::var(acc)); });
//! });
//! d.dataflow_top("top", [p, c]);
//! let design = d.build().unwrap();
//!
//! let sweep = Sweep::new(&design).grid(&[&[1, 2, 4, 8]]).run().unwrap();
//! assert_eq!(sweep.points.len(), 4);
//! assert!(sweep.incremental_hits() + sweep.full_resims() == 4);
//! ```

use crate::config::SimConfig;
use crate::engine::OmniSimulator;
use crate::incremental::IncrementalOutcome;
use crate::report::{OmniError, OmniReport};
use omnisim_ir::design::OutputMap;
use omnisim_ir::Design;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Result of one full re-simulation: end-to-end cycles plus the functional
/// outputs (behaviour may differ from the baseline when constraints flip).
type ResimOutcome = Result<(u64, OutputMap), OmniError>;

/// How one sweep point was answered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepMethod {
    /// Answered from the baseline run's recorded constraints, without
    /// re-simulating (microseconds).
    Incremental,
    /// A recorded constraint was violated under the new depths, so the
    /// resized design was fully re-simulated.
    FullResim,
}

impl SweepMethod {
    /// Short label for tables (`"incremental"` / `"full re-sim"`).
    pub fn label(&self) -> &'static str {
        match self {
            SweepMethod::Incremental => "incremental",
            SweepMethod::FullResim => "full re-sim",
        }
    }
}

/// The answer for one candidate depth vector.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// The FIFO depths of this design point (one entry per FIFO).
    pub depths: Vec<usize>,
    /// End-to-end latency under these depths.
    pub total_cycles: u64,
    /// How the point was answered.
    pub method: SweepMethod,
    /// Functional outputs of the full re-simulation. `None` for incremental
    /// answers: the constraints held, so behaviour is unchanged from
    /// [`SweepReport::baseline`].
    pub outputs: Option<OutputMap>,
}

/// The result of a [`Sweep`] run.
#[derive(Debug)]
pub struct SweepReport {
    /// The initial full run at the design's declared depths.
    pub baseline: OmniReport,
    /// One answer per requested point, in request order.
    pub points: Vec<SweepPoint>,
}

impl SweepReport {
    /// Number of points answered incrementally.
    pub fn incremental_hits(&self) -> usize {
        self.points
            .iter()
            .filter(|p| p.method == SweepMethod::Incremental)
            .count()
    }

    /// Number of points that required a full re-simulation.
    pub fn full_resims(&self) -> usize {
        self.points.len() - self.incremental_hits()
    }
}

/// Builder for a batch FIFO-depth design-space exploration.
#[derive(Debug)]
pub struct Sweep<'d> {
    design: &'d Design,
    config: SimConfig,
    points: Vec<Vec<usize>>,
    parallel: bool,
}

impl<'d> Sweep<'d> {
    /// Creates a sweep over `design` with the default engine configuration.
    pub fn new(design: &'d Design) -> Self {
        Sweep {
            design,
            config: SimConfig::default(),
            points: Vec::new(),
            parallel: true,
        }
    }

    /// Uses an explicit engine configuration for the baseline run and every
    /// full re-simulation.
    pub fn with_config(mut self, config: SimConfig) -> Self {
        self.config = config;
        self
    }

    /// Runs full re-simulations one at a time instead of on scoped worker
    /// threads.
    pub fn sequential(mut self) -> Self {
        self.parallel = false;
        self
    }

    /// Adds one candidate depth vector (one entry per FIFO of the design).
    pub fn point(mut self, depths: impl Into<Vec<usize>>) -> Self {
        self.points.push(depths.into());
        self
    }

    /// Adds many candidate depth vectors.
    pub fn points<I, D>(mut self, points: I) -> Self
    where
        I: IntoIterator<Item = D>,
        D: Into<Vec<usize>>,
    {
        self.points.extend(points.into_iter().map(Into::into));
        self
    }

    /// Adds the cartesian product of per-FIFO candidate depths: `axes[i]`
    /// lists the depths to try for FIFO *i*. Points are generated with the
    /// last axis varying fastest, matching a nested-loop sweep.
    pub fn grid(mut self, axes: &[&[usize]]) -> Self {
        let mut acc: Vec<Vec<usize>> = vec![Vec::new()];
        for axis in axes {
            let mut next = Vec::with_capacity(acc.len() * axis.len().max(1));
            for prefix in &acc {
                for &depth in *axis {
                    let mut point = prefix.clone();
                    point.push(depth);
                    next.push(point);
                }
            }
            acc = next;
        }
        self.points.extend(acc);
        self
    }

    /// Runs the baseline simulation and answers every requested point.
    ///
    /// # Errors
    ///
    /// Returns [`OmniError::DepthMismatch`] if a point's depth vector has
    /// the wrong length, the baseline run's error if it fails, and any full
    /// re-simulation's error otherwise.
    pub fn run(self) -> Result<SweepReport, OmniError> {
        let Sweep {
            design,
            config,
            points,
            parallel,
        } = self;
        let fifo_count = design.fifos.len();
        for point in &points {
            if point.len() != fifo_count {
                return Err(OmniError::DepthMismatch {
                    expected: fifo_count,
                    got: point.len(),
                });
            }
        }

        let baseline = OmniSimulator::with_config(design, config).run()?;

        let mut answers: Vec<Option<SweepPoint>> = Vec::with_capacity(points.len());
        let mut fallback: Vec<(usize, Vec<usize>)> = Vec::new();
        for (index, depths) in points.into_iter().enumerate() {
            match baseline.incremental.try_with_depths(&depths)? {
                IncrementalOutcome::Valid { total_cycles } => {
                    answers.push(Some(SweepPoint {
                        depths,
                        total_cycles,
                        method: SweepMethod::Incremental,
                        outputs: None,
                    }));
                }
                IncrementalOutcome::ConstraintViolated { .. } => {
                    answers.push(None);
                    fallback.push((index, depths));
                }
            }
        }

        let resimulate = |depths: &[usize]| -> ResimOutcome {
            let resized = design.with_fifo_depths(depths);
            let report = OmniSimulator::with_config(&resized, config).run()?;
            Ok((report.total_cycles, report.outputs))
        };

        let outcomes: Vec<ResimOutcome> = if parallel && fallback.len() > 1 {
            let workers = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(fallback.len());
            let cursor = AtomicUsize::new(0);
            let slots: Vec<Mutex<Option<ResimOutcome>>> =
                (0..fallback.len()).map(|_| Mutex::new(None)).collect();
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= fallback.len() {
                            break;
                        }
                        let outcome = resimulate(&fallback[i].1);
                        *slots[i].lock().expect("sweep slot poisoned") = Some(outcome);
                    });
                }
            });
            slots
                .into_iter()
                .map(|slot| {
                    slot.into_inner()
                        .expect("sweep slot poisoned")
                        .expect("sweep worker filled every claimed slot")
                })
                .collect()
        } else {
            fallback
                .iter()
                .map(|(_, depths)| resimulate(depths))
                .collect()
        };

        for ((index, depths), outcome) in fallback.into_iter().zip(outcomes) {
            let (total_cycles, outputs) = outcome?;
            answers[index] = Some(SweepPoint {
                depths,
                total_cycles,
                method: SweepMethod::FullResim,
                outputs: Some(outputs),
            });
        }

        Ok(SweepReport {
            baseline,
            points: answers
                .into_iter()
                .map(|point| point.expect("every sweep point answered"))
                .collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_fixtures::{nb_drop_counter, producer_consumer};

    #[test]
    fn all_incremental_sweep_matches_manual_analysis() {
        let design = producer_consumer(64, 2, 2);
        let sweep = Sweep::new(&design).grid(&[&[1, 2, 4, 16]]).run().unwrap();
        assert_eq!(sweep.points.len(), 4);
        assert_eq!(sweep.incremental_hits(), 4);
        for point in &sweep.points {
            let manual = sweep
                .baseline
                .incremental
                .try_with_depths(&point.depths)
                .unwrap();
            match manual {
                IncrementalOutcome::Valid { total_cycles } => {
                    assert_eq!(point.total_cycles, total_cycles);
                }
                other => panic!("expected valid, got {other:?}"),
            }
            assert!(point.outputs.is_none(), "incremental points reuse baseline");
        }
    }

    #[test]
    fn fallback_points_match_full_resimulation() {
        let design = nb_drop_counter(48, 2, 3);
        let sweep = Sweep::new(&design).grid(&[&[1, 2, 64, 128]]).run().unwrap();
        assert!(
            sweep.full_resims() >= 1,
            "growing depths must flip outcomes"
        );
        for point in &sweep.points {
            let resized = design.with_fifo_depths(&point.depths);
            let full = OmniSimulator::new(&resized).run().unwrap();
            assert_eq!(
                point.total_cycles, full.total_cycles,
                "depths {:?}",
                point.depths
            );
            if let Some(outputs) = &point.outputs {
                assert_eq!(outputs, &full.outputs, "depths {:?}", point.depths);
            }
        }
    }

    #[test]
    fn parallel_and_sequential_fallback_agree() {
        let design = nb_drop_counter(40, 1, 4);
        let grid: &[&[usize]] = &[&[1, 8, 32, 64, 128]];
        let parallel = Sweep::new(&design).grid(grid).run().unwrap();
        let sequential = Sweep::new(&design).grid(grid).sequential().run().unwrap();
        assert_eq!(parallel.points.len(), sequential.points.len());
        for (p, s) in parallel.points.iter().zip(&sequential.points) {
            assert_eq!(p.depths, s.depths);
            assert_eq!(p.total_cycles, s.total_cycles);
            assert_eq!(p.method, s.method);
            assert_eq!(p.outputs, s.outputs);
        }
    }

    #[test]
    fn wrong_length_point_is_rejected_as_caller_error() {
        let design = producer_consumer(8, 2, 1);
        let err = Sweep::new(&design).point([1, 2]).run().unwrap_err();
        assert_eq!(
            err,
            OmniError::DepthMismatch {
                expected: 1,
                got: 2
            }
        );
        assert!(err.to_string().contains("2 entries"));
        assert!(err.to_string().contains("1 fifos"));
    }

    #[test]
    fn grid_generates_cartesian_product_in_nested_loop_order() {
        let design = producer_consumer(8, 2, 1);
        let sweep = Sweep::new(&design);
        let sweep = sweep.grid(&[&[1, 2]]);
        assert_eq!(sweep.points, vec![vec![1], vec![2]]);
        // Two axes: last axis varies fastest.
        let mut two_axis = Sweep::new(&design);
        two_axis = two_axis.grid(&[&[1, 2], &[7, 9]]);
        assert_eq!(
            two_axis.points,
            vec![vec![1, 7], vec![1, 9], vec![2, 7], vec![2, 9]]
        );
    }
}
