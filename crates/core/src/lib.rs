//! # omnisim
//!
//! The OmniSim engine: fast, cycle-accurate simulation of HLS dataflow
//! designs — including the Type B and Type C designs (non-blocking FIFO
//! accesses, cyclic dependencies, infinite loops) that commercial HLS tools
//! cannot simulate at the C level — via orchestrated software
//! multi-threading (Sarkar & Hao, MICRO 2025).
//!
//! ## How it works
//!
//! * One **Func Sim thread** is spawned per dataflow module; it executes the
//!   module's code (through `omnisim-interp`) against a runtime that tracks
//!   the module's exact hardware cycle with a [`omnisim_interp::ModuleClock`].
//! * Every FIFO access is sent as a **request** to a central **Perf Sim
//!   thread** (Table 1 of the paper). Blocking writes never pause the issuing
//!   thread; blocking reads and all non-blocking accesses pause the thread
//!   until the Perf Sim thread answers.
//! * The Perf Sim thread maintains **FIFO read/write tables** recording the
//!   exact hardware cycle of every committed access, a **partial simulation
//!   graph** ([`omnisim_graph::EventGraph`]) and a **query pool**. Queries
//!   ("can the *w*-th write succeed at cycle *c*?") are resolved against the
//!   tables using the rules of Table 2 — against *hardware* time, never
//!   against OS scheduling order.
//! * A **task tracker** counts running Func Sim threads. When every thread is
//!   paused and no query can be resolved, the earliest pending query is
//!   resolved as `false` (the forward-progress insight of §7.1); when every
//!   thread is paused and no queries are pending at all, a true design
//!   deadlock is reported.
//! * **Finalization** overlays the depth-dependent write-after-read
//!   constraints on the simulation graph and runs a longest-path pass to
//!   produce the end-to-end cycle count.
//! * Every resolved query is recorded as a **constraint**; the
//!   [`incremental::IncrementalState`] bundled with each report re-evaluates
//!   those constraints under new FIFO depths so that FIFO sizing DSE can skip
//!   full re-simulation whenever the control flow would not change (§7.2).
//!   The companion `omnisim-dse` crate compiles that state into a frozen
//!   CSR *sweep plan* for batch design-space exploration (its `Sweep`
//!   driver is re-exported by the `omnisim-suite` facade).
//!
//! ## Example
//!
//! ```
//! use omnisim::OmniSimulator;
//! use omnisim_ir::{DesignBuilder, Expr};
//!
//! // Fig. 2 of the paper: a timer that counts cycles until a compute module
//! // produces its result — unsimulatable by naive C simulation.
//! let mut d = DesignBuilder::new("timer");
//! let input = d.fifo("input", 2);
//! let result = d.fifo("result", 2);
//! let cycles_out = d.output("cycles");
//! let feeder = d.function("feeder", |m| {
//!     m.entry(|b| { b.latency(5); b.at(4).fifo_write(input, Expr::imm(84)); });
//! });
//! let compute = d.function("compute", |m| {
//!     m.entry(|b| {
//!         let v = b.fifo_read(input);
//!         b.step(2); // two cycles of work
//!         b.fifo_write(result, Expr::var(v).div(Expr::imm(2)));
//!     });
//! });
//! let timer = d.function("timer", |m| {
//!     let cycles = m.var("cycles");
//!     m.entry(|b| { b.assign(cycles, Expr::imm(0)); });
//!     m.loop_block(1, |b| {
//!         let empty = b.fifo_empty(result);
//!         b.assign(cycles, Expr::var(cycles).add(Expr::var(empty)));
//!         b.exit_loop_if(Expr::var(empty).logical_not());
//!     });
//!     m.exit(|b| { b.output(cycles_out, Expr::var(cycles)); });
//! });
//! d.dataflow_top("top", [feeder, compute, timer]);
//! let design = d.build().unwrap();
//!
//! let report = OmniSimulator::new(&design).run().unwrap();
//! assert!(report.outcome.is_completed());
//! assert!(report.outputs["cycles"] > 0);
//!
//! // Via the unified API: the same engine as a `dyn Simulator`, with the
//! // incremental-DSE state riding along in the report extras.
//! use omnisim_api::Simulator;
//! let backend: Box<dyn Simulator> = Box::new(omnisim::OmniBackend::default());
//! assert!(backend.capabilities().incremental_dse);
//! let unified = backend.simulate(&design).unwrap();
//! assert_eq!(unified.output("cycles"), report.output("cycles"));
//! assert!(unified
//!     .extras
//!     .get::<omnisim::IncrementalState>()
//!     .is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod artifact;
pub mod config;
pub mod engine;
pub mod fifo_table;
pub mod incremental;
pub mod query;
pub mod report;
pub mod request;
pub mod runtime;
#[doc(hidden)]
pub mod test_fixtures;
pub mod unified;

pub use config::SimConfig;
pub use engine::OmniSimulator;
pub use incremental::{IncrementalOutcome, IncrementalState};
pub use query::{QueryKind, QueryPool};
pub use report::{OmniError, OmniOutcome, OmniReport, SimStats, SimTimings};
pub use request::{Request, Response};
pub use unified::{CompiledOmni, OmniBackend};
