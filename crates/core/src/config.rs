//! Engine configuration.

/// Configuration of the OmniSim engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimConfig {
    /// Per-thread operation budget before a runaway loop is aborted.
    pub fuel: u64,
    /// Apply the redundant FIFO-check elision pass (§7.3.2) during front-end
    /// elaboration.
    pub eliminate_dead_checks: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            fuel: 200_000_000,
            eliminate_dead_checks: true,
        }
    }
}

impl SimConfig {
    /// Returns a configuration with the given fuel budget.
    pub fn with_fuel(mut self, fuel: u64) -> Self {
        self.fuel = fuel;
        self
    }

    /// Enables or disables the dead FIFO-check elision pass.
    pub fn with_dead_check_elision(mut self, enabled: bool) -> Self {
        self.eliminate_dead_checks = enabled;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_style_setters() {
        let c = SimConfig::default()
            .with_fuel(1000)
            .with_dead_check_elision(false);
        assert_eq!(c.fuel, 1000);
        assert!(!c.eliminate_dead_checks);
    }
}
