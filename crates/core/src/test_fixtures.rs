//! Designs shared by the engine, DSE and unified-API test suites.
//!
//! Public (but `#[doc(hidden)]`) so that downstream test suites — notably
//! the `omnisim-dse` crate's differential tests — can drive the exact same
//! fixtures without duplicating the builders.

use omnisim_ir::{Design, DesignBuilder, Expr};

/// Blocking producer/consumer: the producer streams `data[0..n]` (values
/// `1..=n`) through a FIFO of the given depth; the consumer sums them at
/// the given initiation interval and outputs `sum`.
pub fn producer_consumer(n: i64, depth: usize, consumer_ii: u64) -> Design {
    let mut d = DesignBuilder::new("pc");
    let data = d.array("data", (1..=n).collect::<Vec<i64>>());
    let out = d.output("sum");
    let q = d.fifo("q", depth);
    let p = d.function("producer", |m| {
        m.counted_loop("i", n, 1, |b| {
            let i = b.var_expr("i");
            let v = b.array_load(data, i);
            b.fifo_write(q, Expr::var(v));
        });
    });
    let c = d.function("consumer", |m| {
        let acc = m.var("acc");
        m.entry(|b| {
            b.assign(acc, Expr::imm(0));
        });
        m.counted_loop("i", n, consumer_ii, |b| {
            let v = b.fifo_read(q);
            b.assign(acc, Expr::var(acc).add(Expr::var(v)));
        });
        m.exit(|b| {
            b.output(out, Expr::var(acc));
        });
    });
    d.dataflow_top("top", [p, c]);
    d.build().unwrap()
}

/// Non-blocking drop counter (Fig. 4 Ex. 4b shape): the producer attempts
/// `n` non-blocking writes and counts the drops; the slower consumer polls
/// with non-blocking reads. Growing the FIFO flips recorded `false` write
/// outcomes, which is what exercises the full-re-simulation fallback.
pub fn nb_drop_counter(n: i64, depth: usize, consumer_ii: u64) -> Design {
    let mut d = DesignBuilder::new("ex4b");
    let q = d.fifo("q", depth);
    let dropped = d.output("dropped");
    let received = d.output("received");
    let p = d.function("producer", |m| {
        let drops = m.var("drops");
        m.entry(|b| {
            b.assign(drops, Expr::imm(0));
        });
        m.counted_loop("i", n, 1, |b| {
            let i = b.var_expr("i");
            let ok = b.fifo_nb_write(q, i);
            b.assign(
                drops,
                Expr::var(ok).select(Expr::var(drops), Expr::var(drops).add(Expr::imm(1))),
            );
        });
        m.exit(|b| {
            b.output(dropped, Expr::var(drops));
        });
    });
    let c = d.function("consumer", |m| {
        let got = m.var("got");
        m.entry(|b| {
            b.assign(got, Expr::imm(0));
        });
        m.counted_loop("i", n, consumer_ii, |b| {
            let (_v, ok) = b.fifo_nb_read(q);
            b.assign(got, Expr::var(got).add(Expr::var(ok)));
        });
        m.exit(|b| {
            b.output(received, Expr::var(got));
        });
    });
    d.dataflow_top("top", [p, c]);
    d.build().unwrap()
}
