//! Unified-API adapter: the OmniSim engine as a [`Simulator`] backend, plus
//! the conversions from the native report, outcome and error types.
//!
//! The engine's extras payloads are the interesting part: every
//! [`SimReport`] produced here carries the run's [`SimStats`](crate::SimStats)
//! and its [`IncrementalState`](crate::IncrementalState), so FIFO-depth
//! design-space exploration can be
//! answered from a finished unified report exactly as it can from a native
//! [`OmniReport`] (see `omnisim-dse`'s `Sweep` for the batch driver).

use crate::config::SimConfig;
use crate::engine::OmniSimulator;
use crate::report::{OmniError, OmniOutcome, OmniReport};
use omnisim_api::{Capabilities, SimFailure, SimOutcome, SimReport, Simulator};
use omnisim_ir::Design;

/// The OmniSim engine as a unified [`Simulator`] backend: cycle-accurate on
/// every taxonomy class, with per-phase timings and incremental-DSE state.
#[derive(Debug, Default, Clone, Copy)]
pub struct OmniBackend {
    /// Configuration used for every run.
    pub config: SimConfig,
}

impl OmniBackend {
    /// Creates a backend with an explicit configuration.
    pub fn with_config(config: SimConfig) -> Self {
        OmniBackend { config }
    }
}

impl Simulator for OmniBackend {
    fn name(&self) -> &'static str {
        "omnisim"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            cycle_accurate: true,
            handles_type_b: true,
            handles_type_c: true,
            produces_timings: true,
            incremental_dse: true,
            compiled_dse: true,
        }
    }

    fn simulate(&self, design: &Design) -> Result<SimReport, SimFailure> {
        OmniSimulator::with_config(design, self.config)
            .run()
            .map(SimReport::from)
            .map_err(SimFailure::from)
    }
}

impl From<OmniOutcome> for SimOutcome {
    fn from(outcome: OmniOutcome) -> SimOutcome {
        match outcome {
            OmniOutcome::Completed => SimOutcome::Completed,
            OmniOutcome::Deadlock { blocked } => SimOutcome::Deadlock { blocked },
        }
    }
}

impl From<OmniReport> for SimReport {
    fn from(report: OmniReport) -> SimReport {
        let OmniReport {
            outcome,
            outputs,
            total_cycles,
            timings,
            stats,
            incremental,
        } = report;
        let mut unified = SimReport::new("omnisim", outcome.into());
        unified.outputs = outputs;
        unified.total_cycles = Some(total_cycles);
        unified.timings = timings;
        unified.extras.insert(stats);
        unified.extras.insert(incremental);
        unified
    }
}

impl From<OmniError> for SimFailure {
    fn from(error: OmniError) -> SimFailure {
        match &error {
            // Task failures and wrong-arity depth vectors are the caller's
            // design/input going wrong; everything else is an engine bug.
            OmniError::Task { .. } | OmniError::DepthMismatch { .. } => {
                SimFailure::execution("omnisim", error.to_string())
            }
            _ => SimFailure::internal("omnisim", error.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::incremental::IncrementalState;
    use crate::report::SimStats;
    use crate::test_fixtures::producer_consumer;
    use omnisim_interp::SimError;
    use omnisim_ir::ModuleId;

    #[test]
    fn report_conversion_preserves_results_and_extras() {
        let design = producer_consumer(10, 2, 1);
        let native = OmniSimulator::new(&design).run().unwrap();
        let native_cycles = native.total_cycles;
        let native_threads = native.stats.threads;
        let unified: SimReport = native.into();

        assert_eq!(unified.backend, "omnisim");
        assert!(unified.outcome.is_completed());
        assert_eq!(unified.output("sum"), Some(55));
        assert_eq!(unified.total_cycles, Some(native_cycles));
        // Stats and incremental state ride along as extras.
        assert_eq!(
            unified.extras.get::<SimStats>().unwrap().threads,
            native_threads
        );
        let incremental = unified.extras.get::<IncrementalState>().unwrap();
        assert_eq!(incremental.original_depths, vec![2]);
    }

    #[test]
    fn incremental_state_still_answers_dse_through_extras() {
        let design = producer_consumer(16, 2, 1);
        let unified = OmniBackend::default().simulate(&design).unwrap();
        let incremental = unified.extras.get::<IncrementalState>().unwrap();
        let outcome = incremental.try_with_depths(&[32]).unwrap();
        assert!(
            outcome.is_valid(),
            "growing the only FIFO stays incremental"
        );
    }

    #[test]
    fn deadlock_blocked_list_passes_through_structurally() {
        // The engine reports one entry per blocked task/FIFO pair; the
        // conversion must preserve the list as-is, even when user-chosen
        // names contain separator-looking substrings.
        let outcome = OmniOutcome::Deadlock {
            blocked: vec![
                "task 'a' blocked reading fifo 'req; ack' since cycle 1".to_owned(),
                "task 'b' blocked reading fifo 'y' since cycle 1".to_owned(),
            ],
        };
        match SimOutcome::from(outcome) {
            SimOutcome::Deadlock { blocked } => {
                assert_eq!(blocked.len(), 2);
                assert!(blocked[0].contains("'req; ack'"));
                assert!(blocked[1].contains("task 'b'"));
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn task_errors_become_execution_failures() {
        let failure: SimFailure = OmniError::Task {
            task: "producer".into(),
            error: SimError::OutOfFuel {
                module: ModuleId(0),
            },
        }
        .into();
        assert!(matches!(failure, SimFailure::Execution { .. }));
        assert!(failure.to_string().contains("producer"));

        let internal: SimFailure = OmniError::ThreadPanic.into();
        assert!(matches!(internal, SimFailure::Internal { .. }));
    }
}
