//! Unified-API adapter: the OmniSim engine as a [`Simulator`] backend, the
//! engine's [`CompiledSim`] session artifact, and the conversions from the
//! native report, outcome and error types.
//!
//! [`CompiledOmni`] is the compile-once / run-many form of the engine: one
//! full simulation (elaboration + multi-threaded execution + finalization)
//! freezes the event/Perf graph into an
//! [`IncrementalState`](crate::IncrementalState), and every subsequent
//! [`CompiledSim::run`] is answered from that frozen state — a
//! microsecond-scale re-finalization for FIFO-depth overrides whose
//! recorded constraints hold (§7.2), a cached replay for the compiled
//! depths, and a transparent full re-simulation only where a constraint
//! flips. `omnisim-dse` upgrades the same artifact into its `SweepPlan`
//! (CSR compilation, delta evaluation) by downcasting through
//! [`CompiledSim::as_any`].
//!
//! The one-shot [`Simulator::simulate`] stays a native end-to-end run, so
//! every [`SimReport`] it produces still carries the run's
//! [`SimStats`](crate::SimStats) and [`IncrementalState`](crate::IncrementalState)
//! as extras.

use crate::config::SimConfig;
use crate::engine::OmniSimulator;
use crate::incremental::IncrementalOutcome;
use crate::report::{OmniError, OmniOutcome, OmniReport};
use omnisim_api::{
    Capabilities, CompiledSim, RunConfig, RunPath, SimFailure, SimOutcome, SimReport, SimTimings,
    Simulator,
};
use omnisim_ir::Design;
use std::any::Any;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// The OmniSim engine as a unified [`Simulator`] backend: cycle-accurate on
/// every taxonomy class, with per-phase timings and incremental-DSE state.
#[derive(Debug, Default, Clone, Copy)]
pub struct OmniBackend {
    /// Configuration used for every run.
    pub config: SimConfig,
}

impl OmniBackend {
    /// Creates a backend with an explicit configuration.
    pub fn with_config(config: SimConfig) -> Self {
        OmniBackend { config }
    }
}

impl Simulator for OmniBackend {
    fn name(&self) -> &'static str {
        "omnisim"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            cycle_accurate: true,
            handles_type_b: true,
            handles_type_c: true,
            produces_timings: true,
            incremental_dse: true,
            compiled_dse: true,
            compiled_run: true,
            serializable_artifact: true,
        }
    }

    fn compile(&self, design: &Design) -> Result<Box<dyn CompiledSim>, SimFailure> {
        CompiledOmni::compile(design, self.config)
            .map(|compiled| Box::new(compiled) as Box<dyn CompiledSim>)
            .map_err(SimFailure::from)
    }

    fn decode_artifact(
        &self,
        design: &Design,
        bytes: &[u8],
    ) -> Result<Box<dyn CompiledSim>, SimFailure> {
        crate::artifact::decode_compiled(design, bytes)
            .map(|compiled| Box::new(compiled) as Box<dyn CompiledSim>)
            .map_err(|error| {
                SimFailure::internal("omnisim", format!("artifact decode failed: {error}"))
            })
    }

    // One-shot runs stay native: the report hands its `IncrementalState`
    // and `SimStats` to the caller by value (through the extras), which a
    // session artifact must keep for itself.
    fn simulate(&self, design: &Design) -> Result<SimReport, SimFailure> {
        OmniSimulator::with_config(design, self.config)
            .run()
            .map(SimReport::from)
            .map_err(SimFailure::from)
    }
}

/// The OmniSim engine compiled for repeated runs: a baseline simulation
/// frozen into its [`IncrementalState`](crate::IncrementalState).
///
/// Constructed by [`OmniBackend::compile`] (unified) or
/// [`CompiledOmni::compile`] (native, typed errors). Every [`RunConfig`]
/// FIFO-depth override is first tried against the recorded constraints —
/// bit-identical to
/// [`IncrementalState::try_with_depths`](crate::IncrementalState::try_with_depths)
/// — and only falls back to a full re-simulation of the resized design when
/// a constraint flips (or the depths are infeasible/cyclic for the frozen
/// graph). Runs take `&self` and the artifact is `Send + Sync`, so one
/// compiled design serves concurrent sessions.
#[derive(Debug)]
pub struct CompiledOmni {
    design: Design,
    config: SimConfig,
    baseline: OmniReport,
    compile_timings: SimTimings,
    // Which path answered each run — scraped by the serving tier through
    // `CompiledSim::counters`.
    replays: AtomicU64,
    refinalizes: AtomicU64,
    resim_fallbacks: AtomicU64,
}

impl CompiledOmni {
    /// Compiles a design by running it once under `config` and freezing the
    /// result.
    ///
    /// # Errors
    ///
    /// Propagates the baseline run's [`OmniError`].
    pub fn compile(design: &Design, config: SimConfig) -> Result<CompiledOmni, OmniError> {
        let baseline = OmniSimulator::with_config(design, config).run()?;
        // The baseline's finalization is compile-phase work too (it is what
        // freezes the graph), so the whole native breakdown moves under the
        // compile timings; per-run reports start from zero.
        let compile_timings = baseline.timings;
        Ok(CompiledOmni {
            design: design.clone(),
            config,
            baseline,
            compile_timings,
            replays: AtomicU64::new(0),
            refinalizes: AtomicU64::new(0),
            resim_fallbacks: AtomicU64::new(0),
        })
    }

    /// Adopts an already-run baseline as a session artifact, skipping the
    /// compile-phase execution. `baseline` must be the result of running
    /// `design` under `config`; the artifact answers runs from it exactly
    /// as a fresh [`CompiledOmni::compile`] would.
    pub fn from_baseline(design: &Design, config: SimConfig, baseline: OmniReport) -> CompiledOmni {
        let compile_timings = baseline.timings;
        CompiledOmni {
            design: design.clone(),
            config,
            baseline,
            compile_timings,
            replays: AtomicU64::new(0),
            refinalizes: AtomicU64::new(0),
            resim_fallbacks: AtomicU64::new(0),
        }
    }

    /// The design the artifact was compiled from (as supplied, before
    /// elaboration).
    pub fn design(&self) -> &Design {
        &self.design
    }

    /// The engine configuration of the baseline run (and of re-simulation
    /// fallbacks, unless overridden per run).
    pub fn config(&self) -> SimConfig {
        self.config
    }

    /// The frozen baseline report.
    pub fn baseline(&self) -> &OmniReport {
        &self.baseline
    }

    /// The frozen incremental state — the §7.2 machinery the runs are
    /// answered from. `omnisim-dse` compiles its `SweepPlan` from this.
    pub fn state(&self) -> &crate::IncrementalState {
        &self.baseline.incremental
    }

    /// Consumes the artifact, returning the baseline report (used by batch
    /// drivers that compile a session, answer their points, and keep the
    /// baseline).
    pub fn into_baseline(self) -> OmniReport {
        self.baseline
    }

    /// A unified report replaying the frozen baseline (outputs, outcome and
    /// stats; the incremental state stays with the artifact).
    fn materialize_baseline(&self) -> SimReport {
        let mut report = SimReport::new("omnisim", self.baseline.outcome.clone().into());
        report.outputs = self.baseline.outputs.clone();
        report.total_cycles = Some(self.baseline.total_cycles);
        report.extras.insert(self.baseline.stats);
        report
    }

    /// Native-typed run: the unified [`CompiledSim::run`] minus the error
    /// conversion.
    ///
    /// # Errors
    ///
    /// Returns [`OmniError::DepthMismatch`] for wrong-arity depth overrides,
    /// [`OmniError::Graph`] for any zero-depth probe (the resized design
    /// would not even validate), and any re-simulation fallback's error.
    pub fn run_native(&self, config: &RunConfig) -> Result<SimReport, OmniError> {
        let run_start = Instant::now();
        let original = &self.baseline.incremental.original_depths;
        let depths = match &config.fifo_depths {
            Some(depths) if depths != original => depths.as_slice(),
            _ => {
                // The compiled depths: replay the frozen baseline.
                self.replays.fetch_add(1, Ordering::Relaxed);
                let mut report = self.materialize_baseline();
                report.timings.finalize = run_start.elapsed();
                report.extras.insert(RunPath("baseline_replay"));
                return Ok(report);
            }
        };
        if depths.len() != original.len() {
            return Err(OmniError::DepthMismatch {
                expected: original.len(),
                got: depths.len(),
            });
        }
        // A zero depth is not a design point at all: the resized design
        // would not validate. Rejected up front — not just on the fallback
        // path — because on a FIFO with no recorded blocking traffic the
        // constraint check alone would happily certify it.
        if depths.contains(&0) {
            return Err(OmniError::Graph(omnisim_graph::CycleError));
        }
        match self.baseline.incremental.try_with_depths(depths)? {
            IncrementalOutcome::Valid { total_cycles } => {
                // Every recorded constraint holds: behaviour is unchanged
                // from the baseline, only the latency moves.
                self.refinalizes.fetch_add(1, Ordering::Relaxed);
                let mut report = self.materialize_baseline();
                report.total_cycles = Some(total_cycles);
                report.timings.finalize = run_start.elapsed();
                report.extras.insert(RunPath("refinalize"));
                Ok(report)
            }
            IncrementalOutcome::ConstraintViolated { .. }
            | IncrementalOutcome::DepthInfeasible { .. }
            | IncrementalOutcome::DepthCyclic => {
                // The frozen graph cannot certify these depths: a full
                // re-simulation of the resized design answers instead.
                self.resim_fallbacks.fetch_add(1, Ordering::Relaxed);
                let resized = self.design.with_fifo_depths(depths);
                let run_config = config
                    .fuel
                    .map_or(self.config, |f| self.config.with_fuel(f));
                let native = OmniSimulator::with_config(&resized, run_config).run()?;
                let mut report = SimReport::from(native);
                report.extras.insert(RunPath("resim_fallback"));
                Ok(report)
            }
        }
    }
}

impl CompiledSim for CompiledOmni {
    fn backend(&self) -> &'static str {
        "omnisim"
    }

    fn design_name(&self) -> &str {
        &self.design.name
    }

    fn compile_timings(&self) -> SimTimings {
        self.compile_timings
    }

    fn run(&self, config: &RunConfig) -> Result<SimReport, SimFailure> {
        self.run_native(config).map_err(SimFailure::from)
    }

    fn encode(&self) -> Option<Vec<u8>> {
        Some(crate::artifact::encode_compiled(self))
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn counters(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("baseline_replays", self.replays.load(Ordering::Relaxed)),
            ("refinalizes", self.refinalizes.load(Ordering::Relaxed)),
            (
                "resim_fallbacks",
                self.resim_fallbacks.load(Ordering::Relaxed),
            ),
        ]
    }
}

impl From<OmniOutcome> for SimOutcome {
    fn from(outcome: OmniOutcome) -> SimOutcome {
        match outcome {
            OmniOutcome::Completed => SimOutcome::Completed,
            OmniOutcome::Deadlock { blocked } => SimOutcome::Deadlock { blocked },
        }
    }
}

impl From<OmniReport> for SimReport {
    fn from(report: OmniReport) -> SimReport {
        let OmniReport {
            outcome,
            outputs,
            total_cycles,
            timings,
            stats,
            incremental,
        } = report;
        let mut unified = SimReport::new("omnisim", outcome.into());
        unified.outputs = outputs;
        unified.total_cycles = Some(total_cycles);
        unified.timings = timings;
        unified.extras.insert(stats);
        unified.extras.insert(incremental);
        unified
    }
}

impl From<OmniError> for SimFailure {
    fn from(error: OmniError) -> SimFailure {
        match &error {
            // Task failures and wrong-arity depth vectors are the caller's
            // design/input going wrong; everything else is an engine bug.
            OmniError::Task { .. } | OmniError::DepthMismatch { .. } => {
                SimFailure::execution("omnisim", error.to_string())
            }
            _ => SimFailure::internal("omnisim", error.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::incremental::IncrementalState;
    use crate::report::SimStats;
    use crate::test_fixtures::{nb_drop_counter, producer_consumer};
    use omnisim_interp::SimError;
    use omnisim_ir::ModuleId;

    #[test]
    fn report_conversion_preserves_results_and_extras() {
        let design = producer_consumer(10, 2, 1);
        let native = OmniSimulator::new(&design).run().unwrap();
        let native_cycles = native.total_cycles;
        let native_threads = native.stats.threads;
        let unified: SimReport = native.into();

        assert_eq!(unified.backend, "omnisim");
        assert!(unified.outcome.is_completed());
        assert_eq!(unified.output("sum"), Some(55));
        assert_eq!(unified.total_cycles, Some(native_cycles));
        // Stats and incremental state ride along as extras.
        assert_eq!(
            unified.extras.get::<SimStats>().unwrap().threads,
            native_threads
        );
        let incremental = unified.extras.get::<IncrementalState>().unwrap();
        assert_eq!(incremental.original_depths, vec![2]);
    }

    #[test]
    fn incremental_state_still_answers_dse_through_extras() {
        let design = producer_consumer(16, 2, 1);
        let unified = OmniBackend::default().simulate(&design).unwrap();
        let incremental = unified.extras.get::<IncrementalState>().unwrap();
        let outcome = incremental.try_with_depths(&[32]).unwrap();
        assert!(
            outcome.is_valid(),
            "growing the only FIFO stays incremental"
        );
    }

    #[test]
    fn compiled_runs_replay_the_baseline_and_answer_depth_overrides() {
        let design = producer_consumer(16, 2, 1);
        let one_shot = OmniBackend::default().simulate(&design).unwrap();
        let compiled = CompiledOmni::compile(&design, SimConfig::default()).unwrap();
        assert_eq!(compiled.design_name(), "pc");

        // Default run == baseline == one-shot simulate.
        let replay = compiled.run(&RunConfig::default()).unwrap();
        assert_eq!(replay.outcome, one_shot.outcome);
        assert_eq!(replay.outputs, one_shot.outputs);
        assert_eq!(replay.total_cycles, one_shot.total_cycles);

        // A certified depth override moves only the latency.
        let expected = match compiled.state().try_with_depths(&[32]).unwrap() {
            IncrementalOutcome::Valid { total_cycles } => total_cycles,
            other => panic!("expected valid, got {other:?}"),
        };
        let widened = compiled
            .run(&RunConfig::new().with_fifo_depths([32usize]))
            .unwrap();
        assert_eq!(widened.total_cycles, Some(expected));
        assert_eq!(widened.outputs, one_shot.outputs);
    }

    #[test]
    fn constraint_violating_overrides_fall_back_to_full_resimulation() {
        // Growing the FIFO flips recorded non-blocking outcomes, so the
        // session must transparently re-simulate the resized design.
        let design = nb_drop_counter(48, 2, 3);
        let compiled = CompiledOmni::compile(&design, SimConfig::default()).unwrap();
        assert!(matches!(
            compiled.state().try_with_depths(&[128]).unwrap(),
            IncrementalOutcome::ConstraintViolated { .. }
        ));
        let run = compiled
            .run(&RunConfig::new().with_fifo_depths([128usize]))
            .unwrap();
        let full = OmniSimulator::new(&design.with_fifo_depths(&[128]))
            .run()
            .unwrap();
        assert_eq!(run.total_cycles, Some(full.total_cycles));
        assert_eq!(run.outputs, full.outputs);
    }

    #[test]
    fn compiled_run_rejects_bad_depth_vectors() {
        let design = producer_consumer(8, 2, 1);
        let compiled = CompiledOmni::compile(&design, SimConfig::default()).unwrap();
        let err = compiled
            .run_native(&RunConfig::new().with_fifo_depths([1usize, 2]))
            .unwrap_err();
        assert_eq!(
            err,
            OmniError::DepthMismatch {
                expected: 1,
                got: 2
            }
        );
        // An uncertifiable zero depth is an error, not a resim candidate.
        let err = compiled
            .run_native(&RunConfig::new().with_fifo_depths([0usize]))
            .unwrap_err();
        assert!(matches!(err, OmniError::Graph(_)));
    }

    #[test]
    fn counters_track_which_path_answered_each_run() {
        // A certified depth change on a blocking-only design re-finalizes.
        let design = producer_consumer(16, 2, 1);
        let compiled = CompiledOmni::compile(&design, SimConfig::default()).unwrap();
        assert!(compiled.counters().iter().all(|&(_, count)| count == 0));
        compiled.run(&RunConfig::default()).unwrap();
        compiled
            .run(&RunConfig::new().with_fifo_depths([32usize]))
            .unwrap();
        let counters: std::collections::BTreeMap<_, _> = compiled.counters().into_iter().collect();
        assert_eq!(counters["baseline_replays"], 1);
        assert_eq!(counters["refinalizes"], 1);
        assert_eq!(counters["resim_fallbacks"], 0);

        // Growing an NB design's FIFO flips recorded outcomes: fallback.
        let nb = nb_drop_counter(48, 2, 3);
        let compiled = CompiledOmni::compile(&nb, SimConfig::default()).unwrap();
        compiled
            .run(&RunConfig::new().with_fifo_depths([128usize]))
            .unwrap();
        let counters: std::collections::BTreeMap<_, _> = compiled.counters().into_iter().collect();
        assert_eq!(counters["resim_fallbacks"], 1);
        assert_eq!(counters.values().sum::<u64>(), 1, "counted exactly once");
    }

    #[test]
    fn deadlock_blocked_list_passes_through_structurally() {
        // The engine reports one entry per blocked task/FIFO pair; the
        // conversion must preserve the list as-is, even when user-chosen
        // names contain separator-looking substrings.
        let outcome = OmniOutcome::Deadlock {
            blocked: vec![
                "task 'a' blocked reading fifo 'req; ack' since cycle 1".to_owned(),
                "task 'b' blocked reading fifo 'y' since cycle 1".to_owned(),
            ],
        };
        match SimOutcome::from(outcome) {
            SimOutcome::Deadlock { blocked } => {
                assert_eq!(blocked.len(), 2);
                assert!(blocked[0].contains("'req; ack'"));
                assert!(blocked[1].contains("task 'b'"));
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn task_errors_become_execution_failures() {
        let failure: SimFailure = OmniError::Task {
            task: "producer".into(),
            error: SimError::OutOfFuel {
                module: ModuleId(0),
            },
        }
        .into();
        assert!(matches!(failure, SimFailure::Execution { .. }));
        assert!(failure.to_string().contains("producer"));

        let internal: SimFailure = OmniError::ThreadPanic.into();
        assert!(matches!(internal, SimFailure::Internal { .. }));
    }
}
