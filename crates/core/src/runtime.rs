//! The per-thread runtime: the [`SimBackend`] handed to every Func Sim
//! thread's interpreter.
//!
//! The runtime plays the role of the paper's runtime shared library (§6.1):
//! every FIFO intrinsic becomes a [`Request`] to the Perf Sim thread, every
//! pausing request blocks on the thread's private response channel, and a
//! [`ModuleClock`] tracks the module's exact hardware cycle (including stalls
//! reported back by the Perf Sim thread).

use crate::request::{Request, Response, ThreadId};
use omnisim_interp::{ModuleClock, SimBackend, SimError};
use omnisim_ir::schedule::BlockSchedule;
use omnisim_ir::{ArrayId, AxiId, BlockId, Design, FifoId, ModuleId, OutputId};
use std::collections::VecDeque;
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Mutex;

/// One outstanding AXI read burst: the values snapshotted at request time
/// plus the per-burst beat pacing (the first beat is ready `request_latency`
/// cycles after the request, subsequent beats one cycle apart) — the same
/// per-burst rule the cycle-stepped reference's `AxiChannel` applies, so
/// outstanding and interleaved bursts pace identically on both backends.
#[derive(Debug, Clone)]
struct ReadBurst {
    values: VecDeque<i64>,
    ready: u64,
    index: u32,
    beats_done: u32,
}

#[derive(Debug, Default, Clone)]
struct AxiReadState {
    bursts: VecDeque<ReadBurst>,
    issued: u32,
}

/// One outstanding AXI write burst (beats address `addr + beats_done`).
#[derive(Debug, Clone)]
struct WriteBurst {
    addr: i64,
    len: i64,
    beats_done: i64,
}

#[derive(Debug, Default, Clone)]
struct AxiWriteState {
    bursts: VecDeque<WriteBurst>,
    last_beat_cycle: u64,
}

/// The backend driving one Func Sim thread.
#[derive(Debug)]
pub struct FuncRuntime<'a> {
    thread: ThreadId,
    design: &'a Design,
    clock: ModuleClock,
    requests: Sender<Request>,
    responses: Receiver<Response>,
    arrays: &'a [Mutex<Vec<i64>>],
    axi_read: Vec<AxiReadState>,
    axi_write: Vec<AxiWriteState>,
}

impl<'a> FuncRuntime<'a> {
    /// Creates the runtime for thread `thread`. Dataflow tasks start
    /// executing at hardware cycle 1 (one cycle after the region start).
    pub fn new(
        thread: ThreadId,
        design: &'a Design,
        requests: Sender<Request>,
        responses: Receiver<Response>,
        arrays: &'a [Mutex<Vec<i64>>],
    ) -> Self {
        FuncRuntime {
            thread,
            design,
            clock: ModuleClock::starting_at(1),
            requests,
            responses,
            arrays,
            axi_read: vec![AxiReadState::default(); design.axi_ports.len()],
            axi_write: vec![AxiWriteState::default(); design.axi_ports.len()],
        }
    }

    /// The cycle at which the module's final block exits (valid once the
    /// interpreter has returned).
    pub fn end_cycle(&self) -> u64 {
        self.clock.block_exit()
    }

    fn send(&self, request: Request) -> Result<(), SimError> {
        self.requests.send(request).map_err(|_| SimError::Aborted {
            reason: "performance-simulation thread is gone".to_owned(),
        })
    }

    fn wait(&self) -> Result<Response, SimError> {
        match self.responses.recv() {
            Ok(Response::Abort { reason }) => Err(SimError::Aborted { reason }),
            Ok(response) => Ok(response),
            Err(_) => Err(SimError::Aborted {
                reason: "performance-simulation thread is gone".to_owned(),
            }),
        }
    }
}

impl SimBackend for FuncRuntime<'_> {
    fn block_start(
        &mut self,
        _module: ModuleId,
        _block: BlockId,
        schedule: BlockSchedule,
        back_edge: bool,
    ) -> Result<(), SimError> {
        self.clock.enter_block(&schedule, back_edge);
        Ok(())
    }

    fn fifo_read(&mut self, fifo: FifoId, offset: u64) -> Result<i64, SimError> {
        let cycle = self.clock.op_cycle(offset);
        let frontier = cycle.min(self.clock.next_entry_floor());
        self.send(Request::FifoRead {
            thread: self.thread,
            fifo,
            cycle,
            frontier,
        })?;
        match self.wait()? {
            Response::ReadValue {
                value,
                cycle: commit,
            } => {
                self.clock.stall_until(offset, commit);
                Ok(value)
            }
            other => Err(SimError::Aborted {
                reason: format!("unexpected response to blocking read: {other:?}"),
            }),
        }
    }

    fn fifo_write(&mut self, fifo: FifoId, value: i64, offset: u64) -> Result<(), SimError> {
        let cycle = self.clock.op_cycle(offset);
        let frontier = cycle.min(self.clock.next_entry_floor());
        self.send(Request::FifoWrite {
            thread: self.thread,
            fifo,
            value,
            cycle,
            frontier,
        })?;
        match self.wait()? {
            Response::WriteDone { cycle: commit } => {
                self.clock.stall_until(offset, commit);
                Ok(())
            }
            other => Err(SimError::Aborted {
                reason: format!("unexpected response to blocking write: {other:?}"),
            }),
        }
    }

    fn fifo_nb_read(&mut self, fifo: FifoId, offset: u64) -> Result<Option<i64>, SimError> {
        let cycle = self.clock.op_cycle(offset);
        let frontier = cycle.min(self.clock.next_entry_floor());
        self.send(Request::FifoNbRead {
            thread: self.thread,
            fifo,
            cycle,
            frontier,
        })?;
        match self.wait()? {
            Response::NbRead { value } => Ok(value),
            other => Err(SimError::Aborted {
                reason: format!("unexpected response to non-blocking read: {other:?}"),
            }),
        }
    }

    fn fifo_nb_write(&mut self, fifo: FifoId, value: i64, offset: u64) -> Result<bool, SimError> {
        let cycle = self.clock.op_cycle(offset);
        let frontier = cycle.min(self.clock.next_entry_floor());
        self.send(Request::FifoNbWrite {
            thread: self.thread,
            fifo,
            value,
            cycle,
            frontier,
        })?;
        match self.wait()? {
            Response::NbWrite { accepted } => Ok(accepted),
            other => Err(SimError::Aborted {
                reason: format!("unexpected response to non-blocking write: {other:?}"),
            }),
        }
    }

    fn fifo_empty(&mut self, fifo: FifoId, offset: u64) -> Result<bool, SimError> {
        let cycle = self.clock.op_cycle(offset);
        let frontier = cycle.min(self.clock.next_entry_floor());
        self.send(Request::FifoCanRead {
            thread: self.thread,
            fifo,
            cycle,
            frontier,
        })?;
        match self.wait()? {
            Response::Status { value: can_read } => Ok(!can_read),
            other => Err(SimError::Aborted {
                reason: format!("unexpected response to empty() check: {other:?}"),
            }),
        }
    }

    fn fifo_full(&mut self, fifo: FifoId, offset: u64) -> Result<bool, SimError> {
        let cycle = self.clock.op_cycle(offset);
        let frontier = cycle.min(self.clock.next_entry_floor());
        self.send(Request::FifoCanWrite {
            thread: self.thread,
            fifo,
            cycle,
            frontier,
        })?;
        match self.wait()? {
            Response::Status { value: can_write } => Ok(!can_write),
            other => Err(SimError::Aborted {
                reason: format!("unexpected response to full() check: {other:?}"),
            }),
        }
    }

    fn array_load(&mut self, array: ArrayId, index: i64) -> Result<i64, SimError> {
        let data = self.arrays[array.index()]
            .lock()
            .expect("array mutex poisoned");
        usize::try_from(index)
            .ok()
            .and_then(|i| data.get(i).copied())
            .ok_or(SimError::ArrayOutOfBounds {
                array,
                index,
                len: data.len(),
            })
    }

    fn array_store(&mut self, array: ArrayId, index: i64, value: i64) -> Result<(), SimError> {
        let mut data = self.arrays[array.index()]
            .lock()
            .expect("array mutex poisoned");
        let len = data.len();
        let slot = usize::try_from(index)
            .ok()
            .and_then(|i| data.get_mut(i))
            .ok_or(SimError::ArrayOutOfBounds { array, index, len })?;
        *slot = value;
        Ok(())
    }

    fn axi_read_req(
        &mut self,
        bus: AxiId,
        addr: i64,
        len: i64,
        offset: u64,
    ) -> Result<(), SimError> {
        let port = self.design.axi_port(bus);
        let cycle = self.clock.op_cycle(offset);
        let mut values = VecDeque::with_capacity(usize::try_from(len).unwrap_or(0));
        {
            let data = self.arrays[port.array.index()]
                .lock()
                .expect("array mutex poisoned");
            for beat in 0..len {
                let idx = addr + beat;
                let value = usize::try_from(idx)
                    .ok()
                    .and_then(|i| data.get(i).copied())
                    .ok_or(SimError::ArrayOutOfBounds {
                        array: port.array,
                        index: idx,
                        len: data.len(),
                    })?;
                values.push_back(value);
            }
        }
        let state = &mut self.axi_read[bus.index()];
        let index = state.issued;
        state.issued += 1;
        state.bursts.push_back(ReadBurst {
            values,
            ready: cycle + port.request_latency,
            index,
            beats_done: 0,
        });
        self.send(Request::AxiReadReq {
            thread: self.thread,
            bus,
            cycle,
        })
    }

    fn axi_read(&mut self, bus: AxiId, offset: u64) -> Result<i64, SimError> {
        let request = self.clock.op_cycle(offset);
        let (value, ready, burst, beat, done) = {
            let state = &mut self.axi_read[bus.index()];
            let front = state
                .bursts
                .front_mut()
                .ok_or_else(|| SimError::AxiProtocolViolation {
                    detail: "axi read beat without outstanding request".to_owned(),
                })?;
            let value = front
                .values
                .pop_front()
                .expect("burst has a value per beat");
            let beat = front.beats_done;
            front.beats_done += 1;
            let ready = front.ready + u64::from(beat);
            (value, ready, front.index, beat, front.values.is_empty())
        };
        if done {
            self.axi_read[bus.index()].bursts.pop_front();
        }
        let commit = self.clock.stall_until(offset, ready);
        self.send(Request::AxiReadBeat {
            thread: self.thread,
            bus,
            burst,
            beat,
            request,
            commit,
        })?;
        Ok(value)
    }

    fn axi_write_req(
        &mut self,
        bus: AxiId,
        addr: i64,
        len: i64,
        _offset: u64,
    ) -> Result<(), SimError> {
        self.axi_write[bus.index()].bursts.push_back(WriteBurst {
            addr,
            len,
            beats_done: 0,
        });
        Ok(())
    }

    fn axi_write(&mut self, bus: AxiId, value: i64, offset: u64) -> Result<(), SimError> {
        let port = self.design.axi_port(bus);
        let cycle = self.clock.op_cycle(offset);
        let state = &mut self.axi_write[bus.index()];
        let front = state
            .bursts
            .front_mut()
            .ok_or_else(|| SimError::AxiProtocolViolation {
                detail: "axi write beat without outstanding request".to_owned(),
            })?;
        let idx = front.addr + front.beats_done;
        front.beats_done += 1;
        let done = front.beats_done >= front.len;
        state.last_beat_cycle = cycle;
        if done {
            state.bursts.pop_front();
        }
        let mut data = self.arrays[port.array.index()]
            .lock()
            .expect("array mutex poisoned");
        let len = data.len();
        let slot = usize::try_from(idx)
            .ok()
            .and_then(|i| data.get_mut(i))
            .ok_or(SimError::ArrayOutOfBounds {
                array: port.array,
                index: idx,
                len,
            })?;
        *slot = value;
        drop(data);
        self.send(Request::AxiWriteBeat {
            thread: self.thread,
            bus,
            cycle,
        })
    }

    fn axi_write_resp(&mut self, bus: AxiId, offset: u64) -> Result<(), SimError> {
        let port = self.design.axi_port(bus);
        let request = self.clock.op_cycle(offset);
        let ready = self.axi_write[bus.index()].last_beat_cycle + port.request_latency;
        let commit = self.clock.stall_until(offset, ready);
        self.send(Request::AxiWriteResp {
            thread: self.thread,
            bus,
            request,
            commit,
        })
    }

    fn output(&mut self, output: OutputId, value: i64) -> Result<(), SimError> {
        self.send(Request::Output {
            thread: self.thread,
            output,
            value,
        })
    }

    fn call_enter(&mut self, _callee: ModuleId, offset: u64) -> Result<(), SimError> {
        self.clock.call_enter(offset);
        Ok(())
    }

    fn call_exit(&mut self, _callee: ModuleId) -> Result<(), SimError> {
        self.clock.call_exit();
        Ok(())
    }
}
