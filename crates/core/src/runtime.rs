//! The per-thread runtime: the [`SimBackend`] handed to every Func Sim
//! thread's interpreter.
//!
//! The runtime plays the role of the paper's runtime shared library (§6.1):
//! every FIFO intrinsic becomes a [`Request`] to the Perf Sim thread, every
//! pausing request blocks on the thread's private response channel, and a
//! [`ModuleClock`] tracks the module's exact hardware cycle (including stalls
//! reported back by the Perf Sim thread).

use crate::request::{Request, Response, ThreadId};
use omnisim_interp::{ModuleClock, SimBackend, SimError};
use omnisim_ir::schedule::BlockSchedule;
use omnisim_ir::{ArrayId, AxiId, BlockId, Design, FifoId, ModuleId, OutputId};
use std::collections::VecDeque;
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Mutex;

#[derive(Debug, Default, Clone)]
struct AxiReadState {
    queue: VecDeque<i64>,
    next_beat_ready: u64,
}

#[derive(Debug, Default, Clone)]
struct AxiWriteState {
    addr: i64,
    beats_done: i64,
    last_beat_cycle: u64,
    active: bool,
}

/// The backend driving one Func Sim thread.
#[derive(Debug)]
pub struct FuncRuntime<'a> {
    thread: ThreadId,
    design: &'a Design,
    clock: ModuleClock,
    requests: Sender<Request>,
    responses: Receiver<Response>,
    arrays: &'a [Mutex<Vec<i64>>],
    axi_read: Vec<AxiReadState>,
    axi_write: Vec<AxiWriteState>,
}

impl<'a> FuncRuntime<'a> {
    /// Creates the runtime for thread `thread`. Dataflow tasks start
    /// executing at hardware cycle 1 (one cycle after the region start).
    pub fn new(
        thread: ThreadId,
        design: &'a Design,
        requests: Sender<Request>,
        responses: Receiver<Response>,
        arrays: &'a [Mutex<Vec<i64>>],
    ) -> Self {
        FuncRuntime {
            thread,
            design,
            clock: ModuleClock::starting_at(1),
            requests,
            responses,
            arrays,
            axi_read: vec![AxiReadState::default(); design.axi_ports.len()],
            axi_write: vec![AxiWriteState::default(); design.axi_ports.len()],
        }
    }

    /// The cycle at which the module's final block exits (valid once the
    /// interpreter has returned).
    pub fn end_cycle(&self) -> u64 {
        self.clock.block_exit()
    }

    fn send(&self, request: Request) -> Result<(), SimError> {
        self.requests.send(request).map_err(|_| SimError::Aborted {
            reason: "performance-simulation thread is gone".to_owned(),
        })
    }

    fn wait(&self) -> Result<Response, SimError> {
        match self.responses.recv() {
            Ok(Response::Abort { reason }) => Err(SimError::Aborted { reason }),
            Ok(response) => Ok(response),
            Err(_) => Err(SimError::Aborted {
                reason: "performance-simulation thread is gone".to_owned(),
            }),
        }
    }
}

impl SimBackend for FuncRuntime<'_> {
    fn block_start(
        &mut self,
        _module: ModuleId,
        _block: BlockId,
        schedule: BlockSchedule,
        back_edge: bool,
    ) -> Result<(), SimError> {
        self.clock.enter_block(&schedule, back_edge);
        Ok(())
    }

    fn fifo_read(&mut self, fifo: FifoId, offset: u64) -> Result<i64, SimError> {
        let cycle = self.clock.op_cycle(offset);
        let frontier = cycle.min(self.clock.next_entry_floor());
        self.send(Request::FifoRead {
            thread: self.thread,
            fifo,
            cycle,
            frontier,
        })?;
        match self.wait()? {
            Response::ReadValue {
                value,
                cycle: commit,
            } => {
                self.clock.stall_until(offset, commit);
                Ok(value)
            }
            other => Err(SimError::Aborted {
                reason: format!("unexpected response to blocking read: {other:?}"),
            }),
        }
    }

    fn fifo_write(&mut self, fifo: FifoId, value: i64, offset: u64) -> Result<(), SimError> {
        let cycle = self.clock.op_cycle(offset);
        let frontier = cycle.min(self.clock.next_entry_floor());
        self.send(Request::FifoWrite {
            thread: self.thread,
            fifo,
            value,
            cycle,
            frontier,
        })?;
        match self.wait()? {
            Response::WriteDone { cycle: commit } => {
                self.clock.stall_until(offset, commit);
                Ok(())
            }
            other => Err(SimError::Aborted {
                reason: format!("unexpected response to blocking write: {other:?}"),
            }),
        }
    }

    fn fifo_nb_read(&mut self, fifo: FifoId, offset: u64) -> Result<Option<i64>, SimError> {
        let cycle = self.clock.op_cycle(offset);
        let frontier = cycle.min(self.clock.next_entry_floor());
        self.send(Request::FifoNbRead {
            thread: self.thread,
            fifo,
            cycle,
            frontier,
        })?;
        match self.wait()? {
            Response::NbRead { value } => Ok(value),
            other => Err(SimError::Aborted {
                reason: format!("unexpected response to non-blocking read: {other:?}"),
            }),
        }
    }

    fn fifo_nb_write(&mut self, fifo: FifoId, value: i64, offset: u64) -> Result<bool, SimError> {
        let cycle = self.clock.op_cycle(offset);
        let frontier = cycle.min(self.clock.next_entry_floor());
        self.send(Request::FifoNbWrite {
            thread: self.thread,
            fifo,
            value,
            cycle,
            frontier,
        })?;
        match self.wait()? {
            Response::NbWrite { accepted } => Ok(accepted),
            other => Err(SimError::Aborted {
                reason: format!("unexpected response to non-blocking write: {other:?}"),
            }),
        }
    }

    fn fifo_empty(&mut self, fifo: FifoId, offset: u64) -> Result<bool, SimError> {
        let cycle = self.clock.op_cycle(offset);
        let frontier = cycle.min(self.clock.next_entry_floor());
        self.send(Request::FifoCanRead {
            thread: self.thread,
            fifo,
            cycle,
            frontier,
        })?;
        match self.wait()? {
            Response::Status { value: can_read } => Ok(!can_read),
            other => Err(SimError::Aborted {
                reason: format!("unexpected response to empty() check: {other:?}"),
            }),
        }
    }

    fn fifo_full(&mut self, fifo: FifoId, offset: u64) -> Result<bool, SimError> {
        let cycle = self.clock.op_cycle(offset);
        let frontier = cycle.min(self.clock.next_entry_floor());
        self.send(Request::FifoCanWrite {
            thread: self.thread,
            fifo,
            cycle,
            frontier,
        })?;
        match self.wait()? {
            Response::Status { value: can_write } => Ok(!can_write),
            other => Err(SimError::Aborted {
                reason: format!("unexpected response to full() check: {other:?}"),
            }),
        }
    }

    fn array_load(&mut self, array: ArrayId, index: i64) -> Result<i64, SimError> {
        let data = self.arrays[array.index()]
            .lock()
            .expect("array mutex poisoned");
        usize::try_from(index)
            .ok()
            .and_then(|i| data.get(i).copied())
            .ok_or(SimError::ArrayOutOfBounds {
                array,
                index,
                len: data.len(),
            })
    }

    fn array_store(&mut self, array: ArrayId, index: i64, value: i64) -> Result<(), SimError> {
        let mut data = self.arrays[array.index()]
            .lock()
            .expect("array mutex poisoned");
        let len = data.len();
        let slot = usize::try_from(index)
            .ok()
            .and_then(|i| data.get_mut(i))
            .ok_or(SimError::ArrayOutOfBounds { array, index, len })?;
        *slot = value;
        Ok(())
    }

    fn axi_read_req(
        &mut self,
        bus: AxiId,
        addr: i64,
        len: i64,
        offset: u64,
    ) -> Result<(), SimError> {
        let port = self.design.axi_port(bus);
        let cycle = self.clock.op_cycle(offset);
        let data = self.arrays[port.array.index()]
            .lock()
            .expect("array mutex poisoned");
        for beat in 0..len {
            let idx = addr + beat;
            let value = usize::try_from(idx)
                .ok()
                .and_then(|i| data.get(i).copied())
                .ok_or(SimError::ArrayOutOfBounds {
                    array: port.array,
                    index: idx,
                    len: data.len(),
                })?;
            self.axi_read[bus.index()].queue.push_back(value);
        }
        self.axi_read[bus.index()].next_beat_ready = cycle + port.request_latency;
        Ok(())
    }

    fn axi_read(&mut self, bus: AxiId, offset: u64) -> Result<i64, SimError> {
        let state = &mut self.axi_read[bus.index()];
        let value = state
            .queue
            .pop_front()
            .ok_or_else(|| SimError::AxiProtocolViolation {
                detail: "axi read beat without outstanding request".to_owned(),
            })?;
        let ready = state.next_beat_ready;
        state.next_beat_ready = ready + 1;
        self.clock.stall_until(offset, ready);
        Ok(value)
    }

    fn axi_write_req(
        &mut self,
        bus: AxiId,
        addr: i64,
        _len: i64,
        _offset: u64,
    ) -> Result<(), SimError> {
        self.axi_write[bus.index()] = AxiWriteState {
            addr,
            beats_done: 0,
            last_beat_cycle: 0,
            active: true,
        };
        Ok(())
    }

    fn axi_write(&mut self, bus: AxiId, value: i64, offset: u64) -> Result<(), SimError> {
        let port = self.design.axi_port(bus);
        let cycle = self.clock.op_cycle(offset);
        let state = &mut self.axi_write[bus.index()];
        if !state.active {
            return Err(SimError::AxiProtocolViolation {
                detail: "axi write beat without outstanding request".to_owned(),
            });
        }
        let idx = state.addr + state.beats_done;
        state.beats_done += 1;
        state.last_beat_cycle = cycle;
        let mut data = self.arrays[port.array.index()]
            .lock()
            .expect("array mutex poisoned");
        let len = data.len();
        let slot = usize::try_from(idx)
            .ok()
            .and_then(|i| data.get_mut(i))
            .ok_or(SimError::ArrayOutOfBounds {
                array: port.array,
                index: idx,
                len,
            })?;
        *slot = value;
        Ok(())
    }

    fn axi_write_resp(&mut self, bus: AxiId, offset: u64) -> Result<(), SimError> {
        let port = self.design.axi_port(bus);
        let ready = self.axi_write[bus.index()].last_beat_cycle + port.request_latency;
        self.clock.stall_until(offset, ready);
        Ok(())
    }

    fn output(&mut self, output: OutputId, value: i64) -> Result<(), SimError> {
        self.send(Request::Output {
            thread: self.thread,
            output,
            value,
        })
    }

    fn call_enter(&mut self, _callee: ModuleId, offset: u64) -> Result<(), SimError> {
        self.clock.call_enter(offset);
        Ok(())
    }

    fn call_exit(&mut self, _callee: ModuleId) -> Result<(), SimError> {
        self.clock.call_exit();
        Ok(())
    }
}
