//! Requests and responses exchanged between Func Sim threads and the
//! Perf Sim thread (Table 1 of the paper).

use omnisim_interp::SimError;
use omnisim_ir::{AxiId, FifoId, OutputId};

/// Index of a Func Sim thread (one per dataflow task).
pub type ThreadId = usize;

/// A request sent from a Func Sim thread to the Perf Sim thread.
///
/// Requests that pause the issuing thread (it blocks until a [`Response`]
/// arrives) are marked below; outputs and task completion are informational
/// and never pause. Blocking FIFO accesses pause until the Perf Sim thread
/// reports their commit cycle (they stall while the FIFO is empty/full);
/// non-blocking accesses and status checks pause until their query is
/// resolved (§6.2 of the paper).
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// A blocking FIFO write attempted at `cycle` (pauses until space is
    /// available and the commit cycle is known).
    FifoWrite {
        /// Issuing thread.
        thread: ThreadId,
        /// Target FIFO.
        fifo: FifoId,
        /// Value written.
        value: i64,
        /// Hardware cycle at which the write is first attempted.
        cycle: u64,
        /// Lower bound on the hardware cycle of any *future* FIFO access
        /// this thread could issue (its forward-progress frontier, used to
        /// order forced query resolution under pipelined iteration overlap).
        frontier: u64,
    },
    /// A blocking FIFO read at `cycle` (pauses until data is available).
    FifoRead {
        /// Issuing thread.
        thread: ThreadId,
        /// Source FIFO.
        fifo: FifoId,
        /// Hardware cycle at which the read is first attempted.
        cycle: u64,
        /// Lower bound on the hardware cycle of any *future* FIFO access
        /// this thread could issue (its forward-progress frontier, used to
        /// order forced query resolution under pipelined iteration overlap).
        frontier: u64,
    },
    /// A non-blocking FIFO write attempt at `cycle` (pauses; query).
    FifoNbWrite {
        /// Issuing thread.
        thread: ThreadId,
        /// Target FIFO.
        fifo: FifoId,
        /// Value to push if the write succeeds.
        value: i64,
        /// Hardware cycle of the attempt.
        cycle: u64,
        /// Lower bound on the hardware cycle of any *future* FIFO access
        /// this thread could issue (its forward-progress frontier, used to
        /// order forced query resolution under pipelined iteration overlap).
        frontier: u64,
    },
    /// A non-blocking FIFO read attempt at `cycle` (pauses; query).
    FifoNbRead {
        /// Issuing thread.
        thread: ThreadId,
        /// Source FIFO.
        fifo: FifoId,
        /// Hardware cycle of the attempt.
        cycle: u64,
        /// Lower bound on the hardware cycle of any *future* FIFO access
        /// this thread could issue (its forward-progress frontier, used to
        /// order forced query resolution under pipelined iteration overlap).
        frontier: u64,
    },
    /// A FIFO `empty()` check at `cycle` (pauses; query).
    FifoCanRead {
        /// Issuing thread.
        thread: ThreadId,
        /// FIFO being inspected.
        fifo: FifoId,
        /// Hardware cycle of the check.
        cycle: u64,
        /// Lower bound on the hardware cycle of any *future* FIFO access
        /// this thread could issue (its forward-progress frontier, used to
        /// order forced query resolution under pipelined iteration overlap).
        frontier: u64,
    },
    /// A FIFO `full()` check at `cycle` (pauses; query).
    FifoCanWrite {
        /// Issuing thread.
        thread: ThreadId,
        /// FIFO being inspected.
        fifo: FifoId,
        /// Hardware cycle of the check.
        cycle: u64,
        /// Lower bound on the hardware cycle of any *future* FIFO access
        /// this thread could issue (its forward-progress frontier, used to
        /// order forced query resolution under pipelined iteration overlap).
        frontier: u64,
    },
    /// An AXI read-burst request was issued (never pauses). The Perf Sim
    /// thread records an event node for it so that the burst's beats can be
    /// anchored at `request cycle + latency + beat` in the simulation graph —
    /// an absolute pacing constraint that must survive incremental
    /// re-finalization under different FIFO depths (the beats may stall on
    /// the bus even when the surrounding FIFO stalls disappear).
    AxiReadReq {
        /// Issuing thread.
        thread: ThreadId,
        /// AXI port.
        bus: AxiId,
        /// Hardware cycle at which the request was issued.
        cycle: u64,
    },
    /// One beat of an AXI read burst was consumed (never pauses).
    AxiReadBeat {
        /// Issuing thread.
        thread: ThreadId,
        /// AXI port.
        bus: AxiId,
        /// 0-based index of the burst on this port (order of `AxiReadReq`).
        burst: u32,
        /// 0-based beat index within the burst.
        beat: u32,
        /// Cycle the schedule placed the beat at (before the bus stall).
        request: u64,
        /// Cycle the beat actually committed (`max(request, ready)`).
        commit: u64,
    },
    /// One beat of an AXI write burst was sent (never pauses; write beats
    /// are not paced by the bus, only the response is).
    AxiWriteBeat {
        /// Issuing thread.
        thread: ThreadId,
        /// AXI port.
        bus: AxiId,
        /// Cycle the beat was sent at.
        cycle: u64,
    },
    /// The write response of the last AXI write burst was awaited (never
    /// pauses). Anchored `latency` cycles after the last write beat.
    AxiWriteResp {
        /// Issuing thread.
        thread: ThreadId,
        /// AXI port.
        bus: AxiId,
        /// Cycle the schedule placed the wait at (before the bus stall).
        request: u64,
        /// Cycle the response actually arrived (`max(request, ready)`).
        commit: u64,
    },
    /// A testbench-visible output was written (never pauses).
    Output {
        /// Issuing thread.
        thread: ThreadId,
        /// Output slot.
        output: OutputId,
        /// Value written.
        value: i64,
    },
    /// The thread finished executing its module (never pauses).
    TaskFinished {
        /// Issuing thread.
        thread: ThreadId,
        /// Cycle at which the module's final block exits.
        end_cycle: u64,
        /// Operations executed by the thread.
        ops_executed: u64,
    },
    /// The thread aborted with an error (never pauses).
    TaskFailed {
        /// Issuing thread.
        thread: ThreadId,
        /// The error.
        error: SimError,
    },
}

impl Request {
    /// The thread that issued this request.
    pub fn thread(&self) -> ThreadId {
        match self {
            Request::FifoWrite { thread, .. }
            | Request::FifoRead { thread, .. }
            | Request::FifoNbWrite { thread, .. }
            | Request::FifoNbRead { thread, .. }
            | Request::FifoCanRead { thread, .. }
            | Request::FifoCanWrite { thread, .. }
            | Request::AxiReadReq { thread, .. }
            | Request::AxiReadBeat { thread, .. }
            | Request::AxiWriteBeat { thread, .. }
            | Request::AxiWriteResp { thread, .. }
            | Request::Output { thread, .. }
            | Request::TaskFinished { thread, .. }
            | Request::TaskFailed { thread, .. } => *thread,
        }
    }

    /// True if the issuing thread blocks until it receives a [`Response`].
    pub fn pauses_thread(&self) -> bool {
        matches!(
            self,
            Request::FifoWrite { .. }
                | Request::FifoRead { .. }
                | Request::FifoNbWrite { .. }
                | Request::FifoNbRead { .. }
                | Request::FifoCanRead { .. }
                | Request::FifoCanWrite { .. }
        )
    }
}

/// A response from the Perf Sim thread to a paused Func Sim thread.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Result of a blocking FIFO read: the value and the hardware cycle at
    /// which the read actually committed (used to stall the thread's clock).
    ReadValue {
        /// The popped value.
        value: i64,
        /// Commit cycle of the read.
        cycle: u64,
    },
    /// Result of a blocking FIFO write: the hardware cycle at which the
    /// write actually committed (used to stall the thread's clock while the
    /// FIFO was full).
    WriteDone {
        /// Commit cycle of the write.
        cycle: u64,
    },
    /// Result of a non-blocking FIFO write attempt.
    NbWrite {
        /// True if the value was accepted.
        accepted: bool,
    },
    /// Result of a non-blocking FIFO read attempt (`None` when empty).
    NbRead {
        /// The popped value, if the read succeeded.
        value: Option<i64>,
    },
    /// Result of an `empty()` / `full()` status check.
    Status {
        /// `empty()`: true when no data is readable at the query cycle.
        /// `full()`: true when no space is writable at the query cycle.
        value: bool,
    },
    /// The engine is shutting down (deadlock or error elsewhere); the thread
    /// must abort.
    Abort {
        /// Reason for the shutdown.
        reason: String,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pause_classification_matches_table_1() {
        let w = Request::FifoWrite {
            thread: 0,
            fifo: FifoId(0),
            value: 1,
            cycle: 3,
            frontier: 3,
        };
        assert!(
            w.pauses_thread(),
            "blocking writes stall while the fifo is full"
        );
        let r = Request::FifoRead {
            thread: 1,
            fifo: FifoId(0),
            cycle: 3,
            frontier: 3,
        };
        assert!(r.pauses_thread());
        let nb = Request::FifoNbWrite {
            thread: 2,
            fifo: FifoId(0),
            value: 9,
            cycle: 7,
            frontier: 5,
        };
        assert!(nb.pauses_thread());
        assert_eq!(nb.thread(), 2);
        let fin = Request::TaskFinished {
            thread: 3,
            end_cycle: 10,
            ops_executed: 42,
        };
        assert!(!fin.pauses_thread());
        assert_eq!(fin.thread(), 3);
    }
}
