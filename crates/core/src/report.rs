//! Simulation results, statistics and errors reported by the engine.

use crate::incremental::IncrementalState;
use omnisim_graph::CycleError;
use omnisim_interp::SimError;
use omnisim_ir::design::OutputMap;
use std::error::Error;
use std::fmt;

/// How an OmniSim run ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OmniOutcome {
    /// Every Func Sim thread ran to completion.
    Completed,
    /// A true design-level deadlock was detected (§7.1): every thread was
    /// paused, no query was pending, and no FIFO access could ever commit.
    Deadlock {
        /// One human-readable entry per blocked task/FIFO pair.
        blocked: Vec<String>,
    },
}

impl OmniOutcome {
    /// True if the run completed normally.
    pub fn is_completed(&self) -> bool {
        matches!(self, OmniOutcome::Completed)
    }

    /// True if a design deadlock was detected.
    pub fn is_deadlock(&self) -> bool {
        matches!(self, OmniOutcome::Deadlock { .. })
    }

    /// A one-line description of a deadlock (empty for completed runs).
    pub fn deadlock_detail(&self) -> String {
        match self {
            OmniOutcome::Completed => String::new(),
            OmniOutcome::Deadlock { blocked } => blocked.join("; "),
        }
    }
}

/// Wall-clock time breakdown of a run, mirroring Fig. 8(c) of the paper.
///
/// This is the workspace-wide unified type: `front_end` covers elaboration,
/// `execution` the multi-threaded run, `finalize` the write-after-read
/// overlay and longest-path analysis.
pub use omnisim_api::SimTimings;

/// Counters describing the size of the simulation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Number of Func Sim threads (dataflow tasks).
    pub threads: usize,
    /// Nodes in the partial simulation graph.
    pub graph_nodes: usize,
    /// Edges in the partial simulation graph (excluding the WAR overlay).
    pub graph_edges: usize,
    /// Committed FIFO accesses (reads + writes).
    pub fifo_accesses: u64,
    /// Total queries created for non-blocking accesses and status checks.
    pub queries: usize,
    /// Queries resolved by the forward-progress rule of §7.1.
    pub queries_forced_false: usize,
    /// Constraints recorded for incremental re-simulation.
    pub constraints: usize,
    /// Total interpreter operations executed across all threads.
    pub ops_executed: u64,
}

/// The result of an OmniSim run.
#[derive(Debug)]
pub struct OmniReport {
    /// How the run ended.
    pub outcome: OmniOutcome,
    /// Final value of every testbench-visible output that was written.
    pub outputs: OutputMap,
    /// End-to-end latency in clock cycles (for deadlocks, the latest
    /// committed event).
    pub total_cycles: u64,
    /// Wall-clock time breakdown.
    pub timings: SimTimings,
    /// Size counters.
    pub stats: SimStats,
    /// Everything needed to re-evaluate the run under different FIFO depths
    /// without re-simulating (§7.2).
    pub incremental: IncrementalState,
}

impl OmniReport {
    /// Convenience accessor: value of a named output, if written.
    pub fn output(&self, name: &str) -> Option<i64> {
        self.outputs.get(name).copied()
    }
}

/// Errors returned by the engine.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum OmniError {
    /// A Func Sim thread failed (array out of bounds, fuel exhausted, …).
    Task {
        /// Name of the failed task's module.
        task: String,
        /// The underlying error.
        error: SimError,
    },
    /// The simulation graph was cyclic (indicates an engine bug).
    Graph(CycleError),
    /// A Func Sim thread panicked.
    ThreadPanic,
    /// A caller supplied a FIFO-depth vector of the wrong length to the
    /// sweep/DSE API (a usage error, not an engine bug).
    DepthMismatch {
        /// Number of FIFOs in the design.
        expected: usize,
        /// Number of depths supplied.
        got: usize,
    },
    /// A caller supplied an empty axis to a sweep grid. The cartesian
    /// product of anything with an empty axis is empty, so accepting it
    /// would make the whole grid silently vanish (a usage error, not an
    /// engine bug).
    EmptyGridAxis {
        /// Zero-based index of the offending axis.
        axis: usize,
    },
    /// Phase-agnostic invariant violation inside the engine.
    Internal(String),
}

impl fmt::Display for OmniError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OmniError::Task { task, error } => write!(f, "task '{task}' failed: {error}"),
            OmniError::Graph(e) => write!(f, "simulation graph error: {e}"),
            OmniError::ThreadPanic => write!(f, "a functionality-simulation thread panicked"),
            OmniError::DepthMismatch { expected, got } => write!(
                f,
                "depth vector has {got} entries but the design has {expected} fifos"
            ),
            OmniError::EmptyGridAxis { axis } => write!(
                f,
                "sweep grid axis {axis} is empty, so the grid would produce no points"
            ),
            OmniError::Internal(msg) => write!(f, "internal engine error: {msg}"),
        }
    }
}

impl Error for OmniError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            OmniError::Task { error, .. } => Some(error),
            OmniError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CycleError> for OmniError {
    fn from(value: CycleError) -> Self {
        OmniError::Graph(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_predicates() {
        assert!(OmniOutcome::Completed.is_completed());
        let d = OmniOutcome::Deadlock {
            blocked: vec!["t1 waits on f0".into(), "t2 waits on f1".into()],
        };
        assert!(d.is_deadlock());
        assert!(!d.is_completed());
        assert_eq!(d.deadlock_detail(), "t1 waits on f0; t2 waits on f1");
        assert_eq!(OmniOutcome::Completed.deadlock_detail(), "");
    }

    #[test]
    fn errors_format_and_are_std_errors() {
        let e = OmniError::Task {
            task: "producer".into(),
            error: SimError::OutOfFuel {
                module: omnisim_ir::ModuleId(0),
            },
        };
        assert!(e.to_string().contains("producer"));
        fn assert_err<E: Error + Send + Sync + 'static>(_: &E) {}
        assert_err(&e);
    }
}
