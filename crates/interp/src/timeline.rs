//! Hardware-cycle bookkeeping shared by all timing-aware simulators.
//!
//! A [`Timeline`] tracks one module's position in hardware time as it moves
//! through scheduled basic blocks, applying the timing-model contract
//! documented in `DESIGN.md`:
//!
//! * entering a block places its operations at `entry + offset`,
//! * stalls accumulate and push back everything that follows,
//! * re-entering a pipelined block applies the initiation interval instead
//!   of the full block latency.

use omnisim_ir::schedule::BlockSchedule;

/// Tracks the hardware time of one module as it executes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Timeline {
    entry: u64,
    delay: u64,
    latency: u64,
    interval: u64,
    started: bool,
}

impl Timeline {
    /// Creates a timeline whose first block will be entered at cycle `start`.
    pub fn starting_at(start: u64) -> Self {
        Timeline {
            entry: start,
            delay: 0,
            latency: 0,
            interval: 0,
            started: false,
        }
    }

    /// Enters a basic block. `back_edge` selects the initiation interval
    /// instead of the full latency for pipelined self-loops.
    pub fn enter_block(&mut self, schedule: &BlockSchedule, back_edge: bool) {
        if self.started {
            let advance = if back_edge {
                self.interval
            } else {
                self.latency
            };
            self.entry = self.entry + self.delay + advance;
        }
        self.delay = 0;
        self.latency = schedule.latency;
        self.interval = schedule.iteration_interval();
        self.started = true;
    }

    /// The cycle at which an operation scheduled at `offset` executes,
    /// including any stall accumulated so far in the current block.
    pub fn op_cycle(&self, offset: u64) -> u64 {
        self.entry + self.delay + offset
    }

    /// Records that the operation at `offset` could not complete before
    /// `ready`; pushes back the rest of the block (and everything after it).
    ///
    /// Returns the cycle at which the operation actually completes.
    pub fn stall_until(&mut self, offset: u64, ready: u64) -> u64 {
        let nominal = self.op_cycle(offset);
        if ready > nominal {
            self.delay += ready - nominal;
        }
        self.op_cycle(offset)
    }

    /// The cycle at which the current block exits.
    pub fn block_exit(&self) -> u64 {
        self.entry + self.delay + self.latency
    }

    /// The cycle at which the current block was entered (including stalls
    /// from previous blocks).
    pub fn block_entry(&self) -> u64 {
        self.entry
    }

    /// Lower bound on the entry cycle of any *future* block instance: the
    /// next instance starts no earlier than `entry + delay + interval`
    /// (pipelined back edges re-enter after the initiation interval; every
    /// other transition advances by the full latency, which is at least the
    /// interval). Because stalls only ever push entries later, no operation
    /// of a future block instance can be scheduled before this cycle — the
    /// thread's forward-progress *frontier* used by the engines' forced
    /// query resolution.
    pub fn next_entry_floor(&self) -> u64 {
        self.entry + self.delay + self.interval
    }

    /// Total stall accumulated within the current block.
    pub fn accumulated_delay(&self) -> u64 {
        self.delay
    }

    /// Adds a fixed number of stall cycles (used for call overheads).
    pub fn add_delay(&mut self, cycles: u64) {
        self.delay += cycles;
    }

    /// True once the first block has been entered.
    pub fn has_started(&self) -> bool {
        self.started
    }
}

/// A [`Timeline`] augmented with a call stack, so that calls into
/// sub-function modules follow the shared call-timing contract:
///
/// * the callee's first block is entered one cycle after the call operation's
///   scheduled cycle,
/// * when the callee returns, the caller is stalled so that the call
///   operation completes one cycle after the callee's final block exits.
///
/// Both the LightningSim baseline and the OmniSim runtime use this type, and
/// the cycle-stepped reference simulator implements the identical rules with
/// its explicit frame stack, so all simulators agree on call latencies.
#[derive(Debug, Clone)]
pub struct ModuleClock {
    current: Timeline,
    stack: Vec<(Timeline, u64)>,
}

impl ModuleClock {
    /// Creates a clock whose root module starts at cycle `start`.
    pub fn starting_at(start: u64) -> Self {
        ModuleClock {
            current: Timeline::starting_at(start),
            stack: Vec::new(),
        }
    }

    /// Enters a basic block of the currently executing module (the callee if
    /// a call is in progress).
    pub fn enter_block(&mut self, schedule: &BlockSchedule, back_edge: bool) {
        self.current.enter_block(schedule, back_edge);
    }

    /// See [`Timeline::op_cycle`].
    pub fn op_cycle(&self, offset: u64) -> u64 {
        self.current.op_cycle(offset)
    }

    /// See [`Timeline::stall_until`].
    pub fn stall_until(&mut self, offset: u64, ready: u64) -> u64 {
        self.current.stall_until(offset, ready)
    }

    /// See [`Timeline::block_exit`].
    pub fn block_exit(&self) -> u64 {
        self.current.block_exit()
    }

    /// See [`Timeline::block_entry`].
    pub fn block_entry(&self) -> u64 {
        self.current.block_entry()
    }

    /// See [`Timeline::next_entry_floor`] (of the currently executing
    /// module's timeline).
    pub fn next_entry_floor(&self) -> u64 {
        self.current.next_entry_floor()
    }

    /// Begins a call whose call operation is scheduled at `offset` in the
    /// caller's current block. Subsequent [`ModuleClock::enter_block`] calls
    /// apply to the callee until [`ModuleClock::call_exit`].
    pub fn call_enter(&mut self, offset: u64) {
        let start = self.current.op_cycle(offset) + 1;
        self.stack.push((self.current.clone(), offset));
        self.current = Timeline::starting_at(start);
    }

    /// Ends the innermost call, stalling the caller until one cycle after the
    /// callee's final block exit. Returns the callee's end cycle.
    ///
    /// # Panics
    ///
    /// Panics if no call is in progress.
    pub fn call_exit(&mut self) -> u64 {
        let callee_end = self.current.block_exit();
        let (mut caller, offset) = self
            .stack
            .pop()
            .expect("call_exit without a matching call_enter");
        caller.stall_until(offset, callee_end + 1);
        self.current = caller;
        callee_end
    }

    /// Depth of the current call stack (0 when executing the root module).
    pub fn call_depth(&self) -> usize {
        self.stack.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_blocks_advance_by_latency() {
        let mut t = Timeline::starting_at(1);
        t.enter_block(&BlockSchedule::new(3), false);
        assert_eq!(t.block_entry(), 1);
        assert_eq!(t.op_cycle(2), 3);
        assert_eq!(t.block_exit(), 4);
        t.enter_block(&BlockSchedule::new(2), false);
        assert_eq!(t.block_entry(), 4);
        assert_eq!(t.block_exit(), 6);
    }

    #[test]
    fn pipelined_back_edges_advance_by_ii() {
        let mut t = Timeline::starting_at(0);
        let sched = BlockSchedule::pipelined(4, 1);
        t.enter_block(&sched, false);
        assert_eq!(t.block_entry(), 0);
        t.enter_block(&sched, true);
        assert_eq!(t.block_entry(), 1);
        t.enter_block(&sched, true);
        assert_eq!(t.block_entry(), 2);
        // Leaving the loop uses the full latency of the last iteration.
        t.enter_block(&BlockSchedule::new(1), false);
        assert_eq!(t.block_entry(), 6);
    }

    #[test]
    fn stalls_push_back_later_operations() {
        let mut t = Timeline::starting_at(0);
        t.enter_block(&BlockSchedule::new(4), false);
        assert_eq!(t.op_cycle(1), 1);
        let actual = t.stall_until(1, 5);
        assert_eq!(actual, 5);
        // A later op in the same block is delayed by the same amount.
        assert_eq!(t.op_cycle(2), 6);
        assert_eq!(t.block_exit(), 8);
    }

    #[test]
    fn stall_until_earlier_cycle_is_a_no_op() {
        let mut t = Timeline::starting_at(0);
        t.enter_block(&BlockSchedule::new(2), false);
        let actual = t.stall_until(1, 0);
        assert_eq!(actual, 1);
        assert_eq!(t.accumulated_delay(), 0);
    }

    #[test]
    fn first_block_starts_at_requested_cycle() {
        let mut t = Timeline::starting_at(17);
        t.enter_block(&BlockSchedule::new(1), false);
        assert_eq!(t.block_entry(), 17);
        assert!(t.has_started());
    }

    #[test]
    fn add_delay_models_call_overhead() {
        let mut t = Timeline::starting_at(0);
        t.enter_block(&BlockSchedule::new(2), false);
        t.add_delay(3);
        assert_eq!(t.block_exit(), 5);
    }

    #[test]
    fn module_clock_applies_call_contract() {
        let mut clock = ModuleClock::starting_at(1);
        // Caller block, call op at offset 2.
        clock.enter_block(&BlockSchedule::new(4), false);
        assert_eq!(clock.op_cycle(2), 3);
        clock.call_enter(2);
        assert_eq!(clock.call_depth(), 1);
        // Callee: single block of latency 10 entered one cycle after the call.
        clock.enter_block(&BlockSchedule::new(10), false);
        assert_eq!(clock.block_entry(), 4);
        let callee_end = clock.call_exit();
        assert_eq!(callee_end, 14);
        assert_eq!(clock.call_depth(), 0);
        // The call op now completes at callee_end + 1, pushing the block exit.
        assert_eq!(clock.op_cycle(2), 15);
        assert_eq!(clock.block_exit(), 17);
    }

    #[test]
    fn nested_calls_unwind_in_order() {
        let mut clock = ModuleClock::starting_at(0);
        clock.enter_block(&BlockSchedule::new(1), false);
        clock.call_enter(0);
        clock.enter_block(&BlockSchedule::new(1), false);
        clock.call_enter(0);
        clock.enter_block(&BlockSchedule::new(5), false);
        assert_eq!(clock.call_depth(), 2);
        clock.call_exit();
        assert_eq!(clock.call_depth(), 1);
        clock.call_exit();
        assert_eq!(clock.call_depth(), 0);
        assert!(clock.block_exit() > 5);
    }

    #[test]
    #[should_panic(expected = "call_exit without a matching call_enter")]
    fn unbalanced_call_exit_panics() {
        let mut clock = ModuleClock::starting_at(0);
        clock.enter_block(&BlockSchedule::new(1), false);
        let _ = clock.call_exit();
    }
}
