//! The [`SimBackend`] trait: the runtime-library interface of a simulator.
//!
//! Every hardware-visible action performed by an interpreted module is routed
//! through this trait, exactly as the paper's runtime shared object receives
//! every FIFO/AXI intrinsic call of the compiled design (§6.1). The methods
//! mirror the request types of Table 1.

use crate::error::SimError;
use omnisim_ir::schedule::BlockSchedule;
use omnisim_ir::{ArrayId, AxiId, BlockId, FifoId, ModuleId, OutputId};

/// The interface between interpreted design code and a simulator.
///
/// Methods that correspond to scheduled operations receive the operation's
/// cycle `offset` within the current basic block so that timing-aware
/// backends can reconstruct exact hardware cycles; untimed backends are free
/// to ignore it.
///
/// All methods have reasonable defaults where an action is purely
/// informational, so simple backends only implement what they need.
pub trait SimBackend {
    /// A module entered a basic block (`TraceBlock` in Table 1).
    ///
    /// `back_edge` is true when the block is re-entered directly from itself
    /// (a pipelined loop iteration), which timing-aware backends use to apply
    /// the initiation interval instead of the full block latency.
    fn block_start(
        &mut self,
        module: ModuleId,
        block: BlockId,
        schedule: BlockSchedule,
        back_edge: bool,
    ) -> Result<(), SimError>;

    /// The module finished executing (returned from its entry block).
    fn module_finish(&mut self, module: ModuleId) -> Result<(), SimError> {
        let _ = module;
        Ok(())
    }

    /// Blocking FIFO read: must return the popped value, stalling the
    /// simulated module as long as necessary.
    fn fifo_read(&mut self, fifo: FifoId, offset: u64) -> Result<i64, SimError>;

    /// Blocking FIFO write.
    fn fifo_write(&mut self, fifo: FifoId, value: i64, offset: u64) -> Result<(), SimError>;

    /// Non-blocking FIFO read: `Some(value)` on success, `None` when the FIFO
    /// is empty at the access cycle.
    fn fifo_nb_read(&mut self, fifo: FifoId, offset: u64) -> Result<Option<i64>, SimError>;

    /// Non-blocking FIFO write: `true` when the value was accepted, `false`
    /// when the FIFO is full at the access cycle.
    fn fifo_nb_write(&mut self, fifo: FifoId, value: i64, offset: u64) -> Result<bool, SimError>;

    /// FIFO `empty()` status check at the access cycle.
    fn fifo_empty(&mut self, fifo: FifoId, offset: u64) -> Result<bool, SimError>;

    /// FIFO `full()` status check at the access cycle.
    fn fifo_full(&mut self, fifo: FifoId, offset: u64) -> Result<bool, SimError>;

    /// Global array load.
    fn array_load(&mut self, array: ArrayId, index: i64) -> Result<i64, SimError>;

    /// Global array store.
    fn array_store(&mut self, array: ArrayId, index: i64, value: i64) -> Result<(), SimError>;

    /// AXI read-burst request (`AxiReadReq`).
    fn axi_read_req(
        &mut self,
        bus: AxiId,
        addr: i64,
        len: i64,
        offset: u64,
    ) -> Result<(), SimError>;

    /// Consume one AXI read beat (`AxiRead`).
    fn axi_read(&mut self, bus: AxiId, offset: u64) -> Result<i64, SimError>;

    /// AXI write-burst request (`AxiWriteReq`).
    fn axi_write_req(
        &mut self,
        bus: AxiId,
        addr: i64,
        len: i64,
        offset: u64,
    ) -> Result<(), SimError>;

    /// Send one AXI write beat (`AxiWrite`).
    fn axi_write(&mut self, bus: AxiId, value: i64, offset: u64) -> Result<(), SimError>;

    /// Wait for the AXI write response (`AxiWriteResp`).
    fn axi_write_resp(&mut self, bus: AxiId, offset: u64) -> Result<(), SimError>;

    /// Record a testbench-visible output value.
    fn output(&mut self, output: OutputId, value: i64) -> Result<(), SimError>;

    /// A call to another function module is about to begin (`StartTask`-like).
    fn call_enter(&mut self, callee: ModuleId, offset: u64) -> Result<(), SimError> {
        let _ = (callee, offset);
        Ok(())
    }

    /// A call to another function module returned.
    fn call_exit(&mut self, callee: ModuleId) -> Result<(), SimError> {
        let _ = callee;
        Ok(())
    }
}
