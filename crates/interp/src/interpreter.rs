//! The IR interpreter: executes function modules op by op, forwarding every
//! hardware-visible action to a [`SimBackend`].

use crate::backend::SimBackend;
use crate::error::SimError;
use omnisim_ir::{BlockId, Design, Expr, ModuleId, Op, Terminator, VarId};

/// Default fuel budget (number of executed operations) before the interpreter
/// aborts with [`SimError::OutOfFuel`]. Generous enough for the largest
/// benchmark designs while still catching runaway infinite loops.
pub const DEFAULT_FUEL: u64 = 200_000_000;

/// Result of executing one module to completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecOutcome {
    /// The value returned by the module's `Return` terminator, if any.
    pub return_value: Option<i64>,
    /// Number of operations executed (including called modules).
    pub ops_executed: u64,
}

/// Interprets function modules of a [`Design`] against a [`SimBackend`].
///
/// The interpreter is deliberately value-only: all state that hardware would
/// hold outside a module's registers (FIFO contents, array memory, AXI
/// buffers, outputs) lives in the backend, so different simulators can give
/// the same design different semantics (infinite FIFOs for C simulation,
/// hardware-timed FIFOs for OmniSim, …).
#[derive(Debug)]
pub struct Interpreter<'d> {
    design: &'d Design,
    fuel: u64,
    initial_fuel: u64,
}

impl<'d> Interpreter<'d> {
    /// Creates an interpreter with the default fuel budget.
    pub fn new(design: &'d Design) -> Self {
        Self::with_fuel(design, DEFAULT_FUEL)
    }

    /// Creates an interpreter with an explicit fuel budget.
    pub fn with_fuel(design: &'d Design, fuel: u64) -> Self {
        Interpreter {
            design,
            fuel,
            initial_fuel: fuel,
        }
    }

    /// The design being interpreted.
    pub fn design(&self) -> &'d Design {
        self.design
    }

    /// Remaining fuel.
    pub fn remaining_fuel(&self) -> u64 {
        self.fuel
    }

    /// Fuel consumed so far (total operations executed).
    pub fn fuel_used(&self) -> u64 {
        self.initial_fuel - self.fuel
    }

    /// Executes a function module to completion.
    ///
    /// `args` are bound to the module's lowest-numbered variables; remaining
    /// variables start at zero.
    ///
    /// # Errors
    ///
    /// Returns any error raised by the backend, [`SimError::OutOfFuel`] if
    /// the fuel budget is exhausted, or [`SimError::Aborted`] if `module`
    /// refers to a dataflow region (regions are driven by the simulators
    /// themselves, not the interpreter).
    pub fn run_module<B: SimBackend>(
        &mut self,
        module: ModuleId,
        args: &[i64],
        backend: &mut B,
    ) -> Result<ExecOutcome, SimError> {
        let start_fuel = self.fuel;
        let rv = self.exec_function(module, args, backend)?;
        Ok(ExecOutcome {
            return_value: rv,
            ops_executed: start_fuel - self.fuel,
        })
    }

    fn exec_function<B: SimBackend>(
        &mut self,
        mid: ModuleId,
        args: &[i64],
        backend: &mut B,
    ) -> Result<Option<i64>, SimError> {
        let module = self.design.module(mid);
        if module.is_dataflow() {
            return Err(SimError::Aborted {
                reason: format!(
                    "module {} is a dataflow region; regions are executed by the simulator, not the interpreter",
                    module.name
                ),
            });
        }
        let mut vars = vec![0i64; module.num_vars as usize];
        for (slot, value) in vars.iter_mut().zip(args) {
            *slot = *value;
        }

        let mut current = BlockId(0);
        let mut prev: Option<BlockId> = None;
        loop {
            let block = &module.blocks[current.index()];
            backend.block_start(mid, current, block.schedule, prev == Some(current))?;
            for sop in &block.ops {
                self.consume_fuel(mid)?;
                self.exec_op(mid, &sop.op, sop.offset, &mut vars, backend)?;
            }
            match &block.terminator {
                Terminator::Jump(next) => {
                    prev = Some(current);
                    current = *next;
                }
                Terminator::Branch {
                    cond,
                    if_true,
                    if_false,
                } => {
                    let taken = eval(cond, &vars) != 0;
                    prev = Some(current);
                    current = if taken { *if_true } else { *if_false };
                }
                Terminator::Return(value) => {
                    let rv = value.as_ref().map(|e| eval(e, &vars));
                    backend.module_finish(mid)?;
                    return Ok(rv);
                }
            }
        }
    }

    fn consume_fuel(&mut self, module: ModuleId) -> Result<(), SimError> {
        if self.fuel == 0 {
            return Err(SimError::OutOfFuel { module });
        }
        self.fuel -= 1;
        Ok(())
    }

    fn exec_op<B: SimBackend>(
        &mut self,
        mid: ModuleId,
        op: &Op,
        offset: u64,
        vars: &mut [i64],
        backend: &mut B,
    ) -> Result<(), SimError> {
        match op {
            Op::Assign { dst, expr } => {
                vars[dst.index()] = eval(expr, vars);
            }
            Op::ArrayLoad { dst, array, index } => {
                let idx = eval(index, vars);
                vars[dst.index()] = backend.array_load(*array, idx)?;
            }
            Op::ArrayStore {
                array,
                index,
                value,
            } => {
                let idx = eval(index, vars);
                let val = eval(value, vars);
                backend.array_store(*array, idx, val)?;
            }
            Op::FifoWrite { fifo, value } => {
                let val = eval(value, vars);
                backend.fifo_write(*fifo, val, offset)?;
            }
            Op::FifoRead { fifo, dst } => {
                vars[dst.index()] = backend.fifo_read(*fifo, offset)?;
            }
            Op::FifoNbWrite {
                fifo,
                value,
                success,
            } => {
                let val = eval(value, vars);
                let ok = backend.fifo_nb_write(*fifo, val, offset)?;
                if let Some(s) = success {
                    vars[s.index()] = i64::from(ok);
                }
            }
            Op::FifoNbRead { fifo, dst, success } => {
                let result = backend.fifo_nb_read(*fifo, offset)?;
                match result {
                    Some(v) => {
                        vars[dst.index()] = v;
                        if let Some(s) = success {
                            vars[s.index()] = 1;
                        }
                    }
                    None => {
                        if let Some(s) = success {
                            vars[s.index()] = 0;
                        }
                    }
                }
            }
            Op::FifoEmpty { fifo, dst } => {
                // Checks whose result is unused were elided by the
                // dead-check pass (§7.3.2) and cost nothing to simulate.
                if let Some(d) = dst {
                    vars[d.index()] = i64::from(backend.fifo_empty(*fifo, offset)?);
                }
            }
            Op::FifoFull { fifo, dst } => {
                if let Some(d) = dst {
                    vars[d.index()] = i64::from(backend.fifo_full(*fifo, offset)?);
                }
            }
            Op::AxiReadReq { bus, addr, len } => {
                backend.axi_read_req(*bus, eval(addr, vars), eval(len, vars), offset)?;
            }
            Op::AxiRead { bus, dst } => {
                vars[dst.index()] = backend.axi_read(*bus, offset)?;
            }
            Op::AxiWriteReq { bus, addr, len } => {
                backend.axi_write_req(*bus, eval(addr, vars), eval(len, vars), offset)?;
            }
            Op::AxiWrite { bus, value } => {
                backend.axi_write(*bus, eval(value, vars), offset)?;
            }
            Op::AxiWriteResp { bus } => {
                backend.axi_write_resp(*bus, offset)?;
            }
            Op::Call { callee, args, dst } => {
                let arg_values: Vec<i64> = args.iter().map(|a| eval(a, vars)).collect();
                backend.call_enter(*callee, offset)?;
                let rv = self.exec_function(*callee, &arg_values, backend)?;
                backend.call_exit(*callee)?;
                if let Some(d) = dst {
                    vars[d.index()] = rv.unwrap_or(0);
                }
            }
            Op::Output { output, value } => {
                backend.output(*output, eval(value, vars))?;
            }
        }
        let _ = mid;
        Ok(())
    }
}

fn eval(expr: &Expr, vars: &[i64]) -> i64 {
    expr.eval(&|v: VarId| vars[v.index()])
}

#[cfg(test)]
mod tests {
    use super::*;
    use omnisim_ir::schedule::BlockSchedule;
    use omnisim_ir::{ArrayId, AxiId, DesignBuilder, FifoId, OutputId};
    use std::collections::{BTreeMap, VecDeque};

    /// A minimal untimed backend with unbounded FIFOs, used only for
    /// interpreter unit tests.
    #[derive(Debug, Default)]
    struct TestBackend {
        arrays: Vec<Vec<i64>>,
        fifos: Vec<VecDeque<i64>>,
        outputs: BTreeMap<OutputId, i64>,
        blocks_seen: usize,
    }

    impl TestBackend {
        fn for_design(design: &Design) -> Self {
            TestBackend {
                arrays: design.arrays.iter().map(|a| a.init.clone()).collect(),
                fifos: vec![VecDeque::new(); design.fifos.len()],
                outputs: BTreeMap::new(),
                blocks_seen: 0,
            }
        }
    }

    impl SimBackend for TestBackend {
        fn block_start(
            &mut self,
            _module: ModuleId,
            _block: BlockId,
            _schedule: BlockSchedule,
            _back_edge: bool,
        ) -> Result<(), SimError> {
            self.blocks_seen += 1;
            Ok(())
        }

        fn fifo_read(&mut self, fifo: FifoId, _offset: u64) -> Result<i64, SimError> {
            self.fifos[fifo.index()]
                .pop_front()
                .ok_or(SimError::ReadWhileEmpty { fifo })
        }

        fn fifo_write(&mut self, fifo: FifoId, value: i64, _offset: u64) -> Result<(), SimError> {
            self.fifos[fifo.index()].push_back(value);
            Ok(())
        }

        fn fifo_nb_read(&mut self, fifo: FifoId, _offset: u64) -> Result<Option<i64>, SimError> {
            Ok(self.fifos[fifo.index()].pop_front())
        }

        fn fifo_nb_write(
            &mut self,
            fifo: FifoId,
            value: i64,
            _offset: u64,
        ) -> Result<bool, SimError> {
            self.fifos[fifo.index()].push_back(value);
            Ok(true)
        }

        fn fifo_empty(&mut self, fifo: FifoId, _offset: u64) -> Result<bool, SimError> {
            Ok(self.fifos[fifo.index()].is_empty())
        }

        fn fifo_full(&mut self, _fifo: FifoId, _offset: u64) -> Result<bool, SimError> {
            Ok(false)
        }

        fn array_load(&mut self, array: ArrayId, index: i64) -> Result<i64, SimError> {
            let data = &self.arrays[array.index()];
            usize::try_from(index)
                .ok()
                .and_then(|i| data.get(i).copied())
                .ok_or(SimError::ArrayOutOfBounds {
                    array,
                    index,
                    len: data.len(),
                })
        }

        fn array_store(&mut self, array: ArrayId, index: i64, value: i64) -> Result<(), SimError> {
            let data = &mut self.arrays[array.index()];
            let len = data.len();
            let slot = usize::try_from(index)
                .ok()
                .and_then(|i| data.get_mut(i))
                .ok_or(SimError::ArrayOutOfBounds { array, index, len })?;
            *slot = value;
            Ok(())
        }

        fn axi_read_req(
            &mut self,
            _bus: AxiId,
            _addr: i64,
            _len: i64,
            _offset: u64,
        ) -> Result<(), SimError> {
            Ok(())
        }

        fn axi_read(&mut self, _bus: AxiId, _offset: u64) -> Result<i64, SimError> {
            Ok(0)
        }

        fn axi_write_req(
            &mut self,
            _bus: AxiId,
            _addr: i64,
            _len: i64,
            _offset: u64,
        ) -> Result<(), SimError> {
            Ok(())
        }

        fn axi_write(&mut self, _bus: AxiId, _value: i64, _offset: u64) -> Result<(), SimError> {
            Ok(())
        }

        fn axi_write_resp(&mut self, _bus: AxiId, _offset: u64) -> Result<(), SimError> {
            Ok(())
        }

        fn output(&mut self, output: OutputId, value: i64) -> Result<(), SimError> {
            self.outputs.insert(output, value);
            Ok(())
        }
    }

    fn producer_consumer(n: i64) -> Design {
        let mut d = DesignBuilder::new("pc");
        let data = d.array("data", (1..=n).collect::<Vec<i64>>());
        let out = d.output("sum");
        let fifo = d.fifo("q", 2);
        let p = d.function("producer", |m| {
            m.counted_loop("i", n, 1, |b| {
                let i = b.var_expr("i");
                let v = b.array_load(data, i);
                b.fifo_write(fifo, Expr::var(v));
            });
        });
        let c = d.function("consumer", |m| {
            let acc = m.var("acc");
            m.entry(|b| {
                b.assign(acc, Expr::imm(0));
            });
            m.counted_loop("i", n, 1, |b| {
                let v = b.fifo_read(fifo);
                b.assign(acc, Expr::var(acc).add(Expr::var(v)));
            });
            m.exit(|b| {
                b.output(out, Expr::var(acc));
            });
        });
        d.dataflow_top("top", [p, c]);
        d.build().unwrap()
    }

    #[test]
    fn sequential_producer_then_consumer_computes_sum() {
        let design = producer_consumer(10);
        let mut backend = TestBackend::for_design(&design);
        let mut interp = Interpreter::new(&design);
        for task in design.dataflow_tasks() {
            interp.run_module(task, &[], &mut backend).unwrap();
        }
        assert_eq!(backend.outputs[&OutputId(0)], 55);
        assert!(backend.blocks_seen > 10);
    }

    #[test]
    fn fuel_exhaustion_is_reported() {
        let mut d = DesignBuilder::new("spin");
        let f = d.fifo("q", 1);
        let spin = d.function("spin", |m| {
            m.loop_block(1, |b| {
                b.fifo_empty_unused(f);
                let t = b.tmp();
                b.assign(t, Expr::imm(1));
            });
        });
        let other = d.function("other", |m| {
            m.entry(|b| {
                b.fifo_write(f, Expr::imm(1));
            });
        });
        d.dataflow_top("top", [spin, other]);
        let design = d.build().unwrap();
        let mut backend = TestBackend::for_design(&design);
        let mut interp = Interpreter::with_fuel(&design, 1000);
        let err = interp
            .run_module(design.dataflow_tasks()[0], &[], &mut backend)
            .unwrap_err();
        assert!(matches!(err, SimError::OutOfFuel { .. }));
    }

    #[test]
    fn array_out_of_bounds_is_reported() {
        let mut d = DesignBuilder::new("oob");
        let data = d.array("data", vec![1, 2, 3]);
        let out = d.output("x");
        d.function_top("f", |m| {
            m.entry(|b| {
                let v = b.array_load(data, Expr::imm(10));
                b.output(out, Expr::var(v));
            });
        });
        let design = d.build().unwrap();
        let mut backend = TestBackend::for_design(&design);
        let mut interp = Interpreter::new(&design);
        let err = interp
            .run_module(design.top, &[], &mut backend)
            .unwrap_err();
        assert_eq!(
            err,
            SimError::ArrayOutOfBounds {
                array: ArrayId(0),
                index: 10,
                len: 3
            }
        );
    }

    #[test]
    fn calls_pass_arguments_and_return_values() {
        let mut d = DesignBuilder::new("call");
        let out = d.output("r");
        let helper = d.function("double", |m| {
            let x = m.var("x");
            m.entry(|b| {
                b.ret_val(Expr::var(x).mul(Expr::imm(2)));
            });
        });
        d.function_top("main", |m| {
            m.entry(|b| {
                let r = b.call(helper, vec![Expr::imm(21)]);
                b.output(out, Expr::var(r));
            });
        });
        let design = d.build().unwrap();
        let mut backend = TestBackend::for_design(&design);
        let mut interp = Interpreter::new(&design);
        let outcome = interp.run_module(design.top, &[], &mut backend).unwrap();
        assert_eq!(backend.outputs[&OutputId(0)], 42);
        assert!(outcome.ops_executed >= 2);
    }

    #[test]
    fn nb_read_on_empty_fifo_sets_success_to_zero() {
        let mut d = DesignBuilder::new("nb");
        let f = d.fifo("q", 1);
        let out_ok = d.output("ok");
        let reader = d.function("reader", |m| {
            m.entry(|b| {
                let (_v, ok) = b.fifo_nb_read(f);
                b.output(out_ok, Expr::var(ok));
            });
        });
        let writer = d.function("writer", |m| {
            m.entry(|b| {
                b.fifo_nb_write_ignored(f, Expr::imm(5));
            });
        });
        d.dataflow_top("top", [reader, writer]);
        let design = d.build().unwrap();
        let mut backend = TestBackend::for_design(&design);
        let mut interp = Interpreter::new(&design);
        // Run the reader first: FIFO is empty, so success must be zero.
        interp
            .run_module(design.dataflow_tasks()[0], &[], &mut backend)
            .unwrap();
        assert_eq!(backend.outputs[&OutputId(0)], 0);
    }

    #[test]
    fn dataflow_region_is_rejected_by_the_interpreter() {
        let design = producer_consumer(2);
        let mut backend = TestBackend::for_design(&design);
        let mut interp = Interpreter::new(&design);
        let err = interp
            .run_module(design.top, &[], &mut backend)
            .unwrap_err();
        assert!(matches!(err, SimError::Aborted { .. }));
    }
}
