//! # omnisim-interp
//!
//! Executes `omnisim-ir` modules against a pluggable [`SimBackend`].
//!
//! In the paper's artefact, the HLS design's LLVM IR is compiled to native
//! code and linked against a runtime shared library that implements FIFO and
//! AXI intrinsics and collects traces (§6.1). This crate plays both roles for
//! our IR: the [`Interpreter`] walks a module's scheduled basic blocks and
//! forwards every hardware-visible action to a [`SimBackend`] implementation.
//!
//! Backends provided elsewhere in the workspace:
//!
//! * `omnisim-csim` — infinite FIFOs, no timing (naive C simulation),
//! * `omnisim-lightning` — trace recording for the decoupled baseline,
//! * `omnisim` — the per-thread runtime of the OmniSim engine, which turns
//!   backend calls into requests/queries for the Perf Sim thread.
//!
//! The [`Timeline`] helper implements the shared timing-model contract
//! (block entry/exit, pipelined loop initiation intervals, stall accounting)
//! so that all timing-aware simulators agree on the same cycle arithmetic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod backend;
pub mod error;
pub mod interpreter;
pub mod timeline;

pub use backend::SimBackend;
pub use error::SimError;
pub use interpreter::{ExecOutcome, Interpreter, DEFAULT_FUEL};
pub use timeline::{ModuleClock, Timeline};
