//! Runtime errors raised while executing a design.

use omnisim_ir::{ArrayId, FifoId, ModuleId};
use std::error::Error;
use std::fmt;

/// Errors raised while interpreting a module or by a simulation backend.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// An array access fell outside the array bounds.
    ///
    /// This is the IR-level analogue of the segmentation faults the paper's
    /// C-simulation column reports in Table 3 when producers run off the end
    /// of their input arrays.
    ArrayOutOfBounds {
        /// The array that was accessed.
        array: ArrayId,
        /// The out-of-range index.
        index: i64,
        /// The array length.
        len: usize,
    },
    /// The interpreter exhausted its fuel budget (runaway loop protection).
    OutOfFuel {
        /// The module that was executing when fuel ran out.
        module: ModuleId,
    },
    /// All dataflow tasks are blocked on FIFO accesses that can never
    /// complete: a true design-level deadlock (§7.1 of the paper).
    Deadlock {
        /// Human-readable description of the blocked tasks.
        detail: String,
    },
    /// An AXI data beat was issued without a matching outstanding request.
    AxiProtocolViolation {
        /// Description of the violation.
        detail: String,
    },
    /// A FIFO read was attempted in a context where no data can ever arrive
    /// (e.g. sequential C simulation reading an empty stream).
    ReadWhileEmpty {
        /// The FIFO that was read.
        fifo: FifoId,
    },
    /// The simulation was aborted by the backend (e.g. the engine is shutting
    /// down worker threads after an error elsewhere).
    Aborted {
        /// Reason for the abort.
        reason: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::ArrayOutOfBounds { array, index, len } => write!(
                f,
                "array {array} index {index} out of bounds (length {len})"
            ),
            SimError::OutOfFuel { module } => {
                write!(f, "fuel exhausted while executing module {module}")
            }
            SimError::Deadlock { detail } => write!(f, "design deadlock detected: {detail}"),
            SimError::AxiProtocolViolation { detail } => {
                write!(f, "axi protocol violation: {detail}")
            }
            SimError::ReadWhileEmpty { fifo } => {
                write!(f, "fifo {fifo} read while empty and no producer can run")
            }
            SimError::Aborted { reason } => write!(f, "simulation aborted: {reason}"),
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_key_details() {
        let e = SimError::ArrayOutOfBounds {
            array: ArrayId(2),
            index: 99,
            len: 10,
        };
        let msg = e.to_string();
        assert!(msg.contains("a2"));
        assert!(msg.contains("99"));
        assert!(msg.contains("10"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + Error + 'static>() {}
        assert_send_sync::<SimError>();
    }
}
