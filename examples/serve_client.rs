//! The serving-tier client: registers a small design fleet with a
//! `serve_server`, runs a mixed batch of baseline and FIFO-depth what-if
//! requests over the wire, and prints the server's counters.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example serve_client -- [addr] [flags]
//! # defaults:                                    127.0.0.1:17071
//! ```
//!
//! Flags:
//!
//! * `--expect-warm` — assert the server answered at least one registration
//!   from its persistent store (used by CI to prove a server restart
//!   warm-starts instead of recompiling);
//! * `--metrics` — scrape the server's metrics registry, print it as
//!   Prometheus text, and assert the core series are present and parse
//!   (used by CI as the observability smoke test);
//! * `--trace FILE` — trace this client's calls end-to-end, fetch the
//!   server's kept traces, validate the merged span set with the Chrome
//!   trace-event parse-back, and write it to `FILE` (Perfetto-loadable;
//!   used by CI as the tracing smoke test);
//! * `--shutdown` — ask the server to exit after this client's requests.

use omnisim_suite::designs::{fig4, typea};
use omnisim_suite::obs::{parse_chrome_trace, parse_prometheus, to_chrome_trace, TraceConfig};
use omnisim_suite::serve::wire::WireOutcome;
use omnisim_suite::serve::{Client, Tracer};
use omnisim_suite::RunConfig;
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn connect_with_retry(addr: &str) -> Client {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match Client::connect(addr) {
            Ok(client) => return client,
            Err(error) if Instant::now() < deadline => {
                let _ = error; // server may still be starting
                std::thread::sleep(Duration::from_millis(100));
            }
            Err(error) => panic!("cannot reach server at {addr}: {error}"),
        }
    }
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut args = Vec::new();
    let mut trace_out: Option<PathBuf> = None;
    let mut iter = raw.into_iter();
    while let Some(arg) = iter.next() {
        if arg == "--trace" {
            let file = iter.next().expect("--trace takes an output file");
            trace_out = Some(PathBuf::from(file));
        } else {
            args.push(arg);
        }
    }
    let addr = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "127.0.0.1:17071".to_owned());
    let expect_warm = args.iter().any(|a| a == "--expect-warm");
    let want_metrics = args.iter().any(|a| a == "--metrics");
    let shutdown = args.iter().any(|a| a == "--shutdown");

    let mut client = connect_with_retry(&addr);
    let tracer = Tracer::new(TraceConfig::default());
    if trace_out.is_some() {
        client = client.with_tracer(tracer.clone());
    }

    let designs = [
        typea::vecadd_stream(256, 2),
        typea::fir_filter(256, 8),
        fig4::ex5_with_depths(256, 2, 2),
    ];
    let started = Instant::now();
    let keys: Vec<_> = designs
        .iter()
        .map(|d| client.register(d).expect("designs register"))
        .collect();
    println!(
        "registered {} designs in {:?}",
        keys.len(),
        started.elapsed()
    );

    let mut requests = Vec::new();
    for (key, design) in keys.iter().zip(&designs) {
        requests.push((*key, RunConfig::default()));
        for depth in [1usize, 4, 16] {
            requests.push((
                *key,
                RunConfig::new().with_fifo_depths(vec![depth; design.fifos.len()]),
            ));
        }
    }
    let started = Instant::now();
    let results = client.run_batch(&requests).expect("batch is admitted");
    let elapsed = started.elapsed();
    let completed = results
        .iter()
        .filter(|r| {
            matches!(
                r,
                Ok(report) if matches!(report.outcome, WireOutcome::Completed)
            )
        })
        .count();
    println!(
        "ran {}/{} requests to completion over the wire in {elapsed:?} ({:.0} runs/sec)",
        completed,
        results.len(),
        results.len() as f64 / elapsed.as_secs_f64().max(1e-9),
    );
    assert_eq!(completed, results.len(), "every request completes");

    let stats = client.stats().expect("stats reply");
    println!(
        "server counters: {} designs, {} compiles, {} cache hits, {} warm starts",
        stats.designs, stats.compiles, stats.cache_hits, stats.warm_starts,
    );
    if let Some(store) = stats.store {
        println!(
            "store counters: {} entries ({} bytes), {} hits, {} misses, {} evictions",
            store.entries, store.bytes, store.hits, store.misses, store.evictions,
        );
    }
    if expect_warm {
        assert!(
            stats.warm_starts > 0,
            "expected the server to warm-start from its store, but it compiled everything"
        );
        println!(
            "warm-start check passed ({} warm starts)",
            stats.warm_starts
        );
    }
    if want_metrics {
        let snapshot = client.metrics().expect("metrics reply");
        let text = snapshot.to_prometheus();
        print!("{text}");
        let samples = parse_prometheus(&text).expect("exported text parses back");
        for series in [
            "service_register_total",
            "service_runs_total",
            "service_run_nanos_count",
            "wire_requests_total",
            "store_loads_total",
        ] {
            assert!(
                samples.iter().any(|s| s.name == series),
                "scrape is missing the {series} series"
            );
        }
        let runs: f64 = samples
            .iter()
            .filter(|s| s.name == "service_runs_total")
            .map(|s| s.value)
            .sum();
        assert!(
            runs >= results.len() as f64,
            "scrape reports {runs} runs, expected at least {}",
            results.len()
        );
        println!(
            "metrics check passed ({} series, {} samples)",
            samples
                .iter()
                .map(|s| s.name.as_str())
                .collect::<std::collections::BTreeSet<_>>()
                .len(),
            samples.len(),
        );
    }
    if let Some(out) = trace_out {
        // The server's kept traces carry this client's trace IDs: every
        // traced call forwarded its span context over the wire, so the
        // server-side wire/service/backend spans joined the client's tree.
        let server_traces = client.traces().expect("traces reply");
        let mut spans: Vec<_> = server_traces
            .into_iter()
            .flat_map(|trace| trace.spans)
            .collect();
        spans.extend(client.tracer().recent_spans());
        let json = to_chrome_trace(&spans);
        let parsed = parse_chrome_trace(&json).expect("chrome trace validates");
        assert_eq!(parsed.len(), spans.len(), "parse-back covers every span");
        for name in ["wire_request", "service_run", "backend_run"] {
            assert!(
                spans.iter().any(|s| s.name == name),
                "trace dump is missing {name} spans"
            );
        }
        assert!(
            spans
                .iter()
                .filter(|s| s.name == "backend_run")
                .any(|s| s.attr("path").is_some()),
            "backend_run spans carry the engine run path"
        );
        // Cross-process stitching: a server-side wire span and a
        // client-side call span share one trace ID.
        assert!(
            spans.iter().any(|server| {
                server.name == "wire_request"
                    && spans.iter().any(|client_span| {
                        client_span.name.starts_with("client_")
                            && client_span.trace_id == server.trace_id
                    })
            }),
            "no wire_request span joined a client trace"
        );
        std::fs::write(&out, &json).expect("trace file writes");
        println!(
            "trace check passed ({} spans, chrome trace written to {})",
            spans.len(),
            out.display()
        );
    }
    if shutdown {
        client.shutdown().expect("server acknowledges shutdown");
        println!("server asked to shut down");
    }
}
