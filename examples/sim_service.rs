//! The serving layer: a `SimService` holding compiled artifacts for a small
//! fleet of designs, answering a mixed batch of simulation requests —
//! baselines and FIFO-depth what-ifs — concurrently from shared
//! compile-once artifacts.
//!
//! This is the "millions of users" shape from the ROADMAP in miniature:
//! requests arrive keyed by design content hash, the front end runs once
//! per distinct design, and every query after that is an amortized
//! `CompiledSim::run`.
//!
//! The second act adds the persistence tier: the same fleet behind a
//! capacity-bounded registry and a disk-backed `ArtifactStore`, walking the
//! full register → persist → evict → warm-start cycle (including a
//! simulated process restart that decodes instead of compiling).
//!
//! Run with: `cargo run --release --example sim_service`

use omnisim_suite::designs::{fig4, typea};
use omnisim_suite::ir::Design;
use omnisim_suite::{backend, ArtifactStore, DesignKey, RunConfig, SimService};
use std::time::Instant;

fn main() {
    let service = SimService::new(backend("omnisim").unwrap());

    // The design fleet. Users submit designs independently; identical
    // content hashes share one compiled artifact.
    let designs: Vec<Design> = vec![
        typea::vecadd_stream(256, 2),
        typea::fir_filter(256, 8),
        fig4::ex5_with_depths(256, 2, 2),
        typea::vecadd_stream(256, 2), // duplicate submission: cache hit
    ];

    let started = Instant::now();
    let keys: Vec<DesignKey> = designs
        .iter()
        .map(|d| service.register(d).expect("every design compiles"))
        .collect();
    println!(
        "registered {} submissions -> {} artifacts ({} compiles, {} cache hits) in {:?}",
        designs.len(),
        service.len(),
        service.compiles(),
        service.cache_hits(),
        started.elapsed()
    );
    assert_eq!(keys[0], keys[3], "duplicate submissions share a key");

    // A mixed request batch: every design at its baseline plus a ladder of
    // FIFO-depth what-ifs, fanned out across the worker pool.
    let mut requests: Vec<(DesignKey, RunConfig)> = Vec::new();
    for (key, design) in keys.iter().zip(&designs) {
        requests.push((*key, RunConfig::default()));
        for depth in [1usize, 4, 16, 64] {
            requests.push((
                *key,
                RunConfig::new().with_fifo_depths(vec![depth; design.fifos.len()]),
            ));
        }
    }

    let started = Instant::now();
    let reports = service.run_batch(&requests);
    let elapsed = started.elapsed();

    let mut ok = 0usize;
    for (index, ((key, config), report)) in requests.iter().zip(&reports).enumerate() {
        let report = report.as_ref().expect("requests succeed");
        ok += 1;
        if index < 5 {
            // The first design's ladder, as a sample of the responses.
            println!(
                "  {:#018x} depths {:?} -> {} cycles",
                key.raw(),
                config.fifo_depths.as_deref().unwrap_or(&[]),
                report.total_cycles.unwrap()
            );
        }
    }
    println!(
        "\nserved {ok}/{} requests in {elapsed:?} ({:.0} runs/sec) on {}",
        requests.len(),
        ok as f64 / elapsed.as_secs_f64().max(1e-9),
        service.backend_name()
    );

    // ── Act two: the persistence tier ────────────────────────────────────
    // A capacity-bounded registry over a disk-backed store: registrations
    // persist encoded artifacts, LRU eviction trims memory, and evicted or
    // restarted designs warm-start from disk instead of recompiling.
    let store_dir =
        std::env::temp_dir().join(format!("omnisim-sim-service-{}", std::process::id()));
    let open_store = || {
        ArtifactStore::open(&store_dir)
            .expect("store directory opens")
            .with_byte_budget(64 * 1024 * 1024)
    };
    let service = SimService::new(backend("omnisim").unwrap())
        .with_capacity(2) // only two artifacts stay resident
        .with_store(open_store());

    println!(
        "\npersistent tier (registry capacity 2, store at {}):",
        store_dir.display()
    );
    let started = Instant::now();
    for design in &designs {
        service.register(design).expect("every design compiles");
    }
    let stats = service.stats();
    println!(
        "  registered {} designs in {:?}: {} compiles, {} evictions, {} artifacts persisted",
        designs.len(),
        started.elapsed(),
        stats.compiles,
        stats.registry_evictions,
        stats.store.expect("store attached").entries,
    );
    assert_eq!(stats.designs, 2, "capacity bound holds");

    // Re-registering an evicted design is answered from disk, not by the
    // compiler.
    let warm_before = service.warm_starts();
    let started = Instant::now();
    let key = service.register(&designs[1]).expect("warm start");
    println!(
        "  evicted design warm-started from disk in {:?} (warm starts: {}, compiles still {})",
        started.elapsed(),
        service.warm_starts(),
        service.compiles(),
    );
    assert_eq!(service.warm_starts(), warm_before + 1);
    let report = service.run(key, &RunConfig::default()).expect("runs");
    println!(
        "  warm-started artifact answers: {} cycles",
        report.total_cycles.unwrap()
    );

    // A "restarted process": a fresh service over the same store directory
    // decodes every artifact instead of compiling any.
    let restarted = SimService::new(backend("omnisim").unwrap()).with_store(open_store());
    let started = Instant::now();
    for design in &designs {
        restarted
            .register(design)
            .expect("every design warm-starts");
    }
    println!(
        "  restart re-registered the fleet in {:?}: {} compiles, {} warm starts",
        started.elapsed(),
        restarted.compiles(),
        restarted.warm_starts(),
    );
    assert_eq!(
        restarted.compiles(),
        0,
        "nothing recompiles after a restart"
    );

    let _ = std::fs::remove_dir_all(&store_dir);
}
