//! The serving layer: a `SimService` holding compiled artifacts for a small
//! fleet of designs, answering a mixed batch of simulation requests —
//! baselines and FIFO-depth what-ifs — concurrently from shared
//! compile-once artifacts.
//!
//! This is the "millions of users" shape from the ROADMAP in miniature:
//! requests arrive keyed by design content hash, the front end runs once
//! per distinct design, and every query after that is an amortized
//! `CompiledSim::run`.
//!
//! Run with: `cargo run --release --example sim_service`

use omnisim_suite::designs::{fig4, typea};
use omnisim_suite::ir::Design;
use omnisim_suite::{backend, DesignKey, RunConfig, SimService};
use std::time::Instant;

fn main() {
    let service = SimService::new(backend("omnisim").unwrap());

    // The design fleet. Users submit designs independently; identical
    // content hashes share one compiled artifact.
    let designs: Vec<Design> = vec![
        typea::vecadd_stream(256, 2),
        typea::fir_filter(256, 8),
        fig4::ex5_with_depths(256, 2, 2),
        typea::vecadd_stream(256, 2), // duplicate submission: cache hit
    ];

    let started = Instant::now();
    let keys: Vec<DesignKey> = designs
        .iter()
        .map(|d| service.register(d).expect("every design compiles"))
        .collect();
    println!(
        "registered {} submissions -> {} artifacts ({} compiles, {} cache hits) in {:?}",
        designs.len(),
        service.len(),
        service.compiles(),
        service.cache_hits(),
        started.elapsed()
    );
    assert_eq!(keys[0], keys[3], "duplicate submissions share a key");

    // A mixed request batch: every design at its baseline plus a ladder of
    // FIFO-depth what-ifs, fanned out across the worker pool.
    let mut requests: Vec<(DesignKey, RunConfig)> = Vec::new();
    for (key, design) in keys.iter().zip(&designs) {
        requests.push((*key, RunConfig::default()));
        for depth in [1usize, 4, 16, 64] {
            requests.push((
                *key,
                RunConfig::new().with_fifo_depths(vec![depth; design.fifos.len()]),
            ));
        }
    }

    let started = Instant::now();
    let reports = service.run_batch(&requests);
    let elapsed = started.elapsed();

    let mut ok = 0usize;
    for (index, ((key, config), report)) in requests.iter().zip(&reports).enumerate() {
        let report = report.as_ref().expect("requests succeed");
        ok += 1;
        if index < 5 {
            // The first design's ladder, as a sample of the responses.
            println!(
                "  {:#018x} depths {:?} -> {} cycles",
                key.raw(),
                config.fifo_depths.as_deref().unwrap_or(&[]),
                report.total_cycles.unwrap()
            );
        }
    }
    println!(
        "\nserved {ok}/{} requests in {elapsed:?} ({:.0} runs/sec) on {}",
        requests.len(),
        ok as f64 / elapsed.as_secs_f64().max(1e-9),
        service.backend_name()
    );
}
