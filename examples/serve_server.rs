//! The serving-tier server: a `SimService` over a persistent
//! `ArtifactStore`, exposed on TCP for `serve_client` (or any wire-protocol
//! speaker).
//!
//! Designs registered by clients are compiled once, persisted to the store
//! directory, and served from memory; restarting the server against the
//! same store directory warm-starts every known design from disk instead
//! of recompiling (watch the `warm starts` counter via the client's
//! `--stats`).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example serve_server -- [addr] [store-dir] [backend] [--trace-dir DIR]
//! # defaults:                                    127.0.0.1:0      <tmp>  omnisim
//! ```
//!
//! The default address binds port 0 — the OS picks a free port, and the
//! first line of output is `listening HOST:PORT` so scripts (CI, the
//! client examples) can parse the actual endpoint instead of guessing a
//! fixed port.
//!
//! With `--trace-dir DIR`, traces the tail sampler keeps for being slower
//! than the tracer's latency threshold are persisted into `DIR` as
//! Chrome trace-event JSON — open any of them at `ui.perfetto.dev`.
//!
//! The server runs until a client sends a shutdown request, then prints a
//! final Prometheus dump of its metrics registry — the same text a live
//! scrape (`serve_client --metrics`) sees.

use omnisim_suite::backend;
use omnisim_suite::obs::to_chrome_trace;
use omnisim_suite::serve::{
    ArtifactStore, MetricsRegistry, Server, SimService, TraceConfig, Tracer,
};
use std::path::PathBuf;
use std::sync::Arc;

fn main() {
    let mut positional = Vec::new();
    let mut trace_dir: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--trace-dir" {
            let dir = args.next().expect("--trace-dir takes a directory");
            trace_dir = Some(PathBuf::from(dir));
        } else {
            positional.push(arg);
        }
    }
    let mut positional = positional.into_iter();
    let addr = positional
        .next()
        .unwrap_or_else(|| "127.0.0.1:0".to_owned());
    let store_dir = positional
        .next()
        .map(PathBuf::from)
        .unwrap_or_else(|| std::env::temp_dir().join("omnisim-serve-store"));
    let backend_name = positional.next().unwrap_or_else(|| "omnisim".to_owned());

    let sim = backend(&backend_name).unwrap_or_else(|| panic!("unknown backend '{backend_name}'"));
    let store = ArtifactStore::open(&store_dir).expect("store directory opens");
    let tracer = Tracer::new(TraceConfig::default());
    if let Some(dir) = trace_dir.clone() {
        std::fs::create_dir_all(&dir).expect("trace directory opens");
        let threshold = tracer.config().slow_threshold.as_nanos() as u64;
        tracer.set_keep_hook(move |trace| {
            // Persist only the tail-sampled slow traces: a kept trace whose
            // local root ran past the latency threshold.
            let slow = trace
                .spans
                .iter()
                .any(|span| span.parent.is_none() && span.duration_nanos() >= threshold);
            if slow {
                let path = dir.join(format!("trace-{:016x}.json", trace.trace_id.raw()));
                let _ = std::fs::write(path, to_chrome_trace(&trace.spans));
            }
        });
    }
    let service = SimService::new(sim).with_store(store).with_tracer(tracer);
    // Keep a handle on the shared registry: `Server::bind` consumes the
    // service, but the registry outlives it for the shutdown dump below.
    let registry: Arc<MetricsRegistry> = Arc::clone(service.metrics());

    let server = Server::bind(service, &*addr).expect("address binds");
    let local = server.local_addr().expect("bound address");
    // Machine-readable first line: scripts parse the chosen port from here.
    println!("listening {local}");
    println!(
        "serving {backend_name} on {local} (artifact store: {})",
        store_dir.display(),
    );
    if let Some(dir) = &trace_dir {
        println!("persisting slow traces to {}", dir.display());
    }
    println!("stop with: cargo run --release --example serve_client -- {local} --shutdown");
    server.serve().expect("serve loop");
    println!("shut down cleanly; final metrics:");
    print!("{}", registry.snapshot().to_prometheus());
}
