//! The serving-tier server: a `SimService` over a persistent
//! `ArtifactStore`, exposed on TCP for `serve_client` (or any wire-protocol
//! speaker).
//!
//! Designs registered by clients are compiled once, persisted to the store
//! directory, and served from memory; restarting the server against the
//! same store directory warm-starts every known design from disk instead
//! of recompiling (watch the `warm starts` counter via the client's
//! `--stats`).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example serve_server -- [addr] [store-dir] [backend]
//! # defaults:                                    127.0.0.1:17071  <tmp>  omnisim
//! ```
//!
//! The server runs until a client sends a shutdown request, then prints a
//! final Prometheus dump of its metrics registry — the same text a live
//! scrape (`serve_client --metrics`) sees.

use omnisim_suite::backend;
use omnisim_suite::serve::{ArtifactStore, MetricsRegistry, Server, SimService};
use std::sync::Arc;

fn main() {
    let mut args = std::env::args().skip(1);
    let addr = args.next().unwrap_or_else(|| "127.0.0.1:17071".to_owned());
    let store_dir = args
        .next()
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::env::temp_dir().join("omnisim-serve-store"));
    let backend_name = args.next().unwrap_or_else(|| "omnisim".to_owned());

    let sim = backend(&backend_name).unwrap_or_else(|| panic!("unknown backend '{backend_name}'"));
    let store = ArtifactStore::open(&store_dir).expect("store directory opens");
    let service = SimService::new(sim).with_store(store);
    // Keep a handle on the shared registry: `Server::bind` consumes the
    // service, but the registry outlives it for the shutdown dump below.
    let registry: Arc<MetricsRegistry> = Arc::clone(service.metrics());

    let server = Server::bind(service, &*addr).expect("address binds");
    println!(
        "serving {backend_name} on {} (artifact store: {})",
        server.local_addr().expect("bound address"),
        store_dir.display(),
    );
    println!("stop with: cargo run --release --example serve_client -- {addr} --shutdown");
    server.serve().expect("serve loop");
    println!("shut down cleanly; final metrics:");
    print!("{}", registry.snapshot().to_prometheus());
}
