//! A congestion-aware packet router — the kind of Type C design whose
//! C-level simulation the paper's introduction motivates: non-blocking
//! writes steer packets to the less-congested of two processing lanes, and
//! packets are dropped when both lanes are saturated.
//!
//! The example drives all three backends through the unified `Simulator`
//! API and shows that naive C simulation silently reports zero drops and a
//! completely wrong lane balance, while OmniSim agrees with the
//! cycle-stepped reference.
//!
//! Run with: `cargo run --release --example packet_router`

use omnisim_suite::backend;
use omnisim_suite::ir::{DesignBuilder, Expr};

fn build_router(packets: i64) -> omnisim_suite::ir::Design {
    let mut d = DesignBuilder::new("packet_router");
    let payloads = d.array(
        "payloads",
        (0..packets).map(|i| 1 + i % 97).collect::<Vec<i64>>(),
    );
    let fast_lane = d.fifo("fast_lane", 4);
    let slow_lane = d.fifo("slow_lane", 4);
    let routed_fast = d.output("routed_fast");
    let routed_slow = d.output("routed_slow");
    let dropped = d.output("dropped");
    let fast_work = d.output("fast_lane_work");
    let slow_work = d.output("slow_lane_work");

    let router = d.function("router", |m| {
        let i = m.var("i");
        let fast = m.var("fast");
        let slow = m.var("slow");
        let drop_count = m.var("drop_count");
        let payload = m.var("payload");
        let entry = m.new_block();
        let head = m.new_block();
        let try_fast = m.new_block();
        let fast_ok = m.new_block();
        let try_slow = m.new_block();
        let finish = m.new_block();
        m.fill_block(entry, |b| {
            b.assign(i, Expr::imm(0))
                .assign(fast, Expr::imm(0))
                .assign(slow, Expr::imm(0))
                .assign(drop_count, Expr::imm(0))
                .jump(head);
        });
        m.fill_block(head, |b| {
            b.branch(Expr::var(i).lt(Expr::imm(packets)), try_fast, finish);
        });
        m.fill_block(try_fast, |b| {
            b.array_load_into(payload, payloads, Expr::var(i));
            b.assign(i, Expr::var(i).add(Expr::imm(1)));
            let ok = b.fifo_nb_write(fast_lane, Expr::var(payload));
            b.branch(Expr::var(ok), fast_ok, try_slow);
        });
        m.fill_block(fast_ok, |b| {
            b.assign(fast, Expr::var(fast).add(Expr::imm(1))).jump(head);
        });
        m.fill_block(try_slow, |b| {
            let ok = b.fifo_nb_write(slow_lane, Expr::var(payload));
            b.assign(slow, Expr::var(slow).add(Expr::var(ok)));
            b.assign(
                drop_count,
                Expr::var(drop_count).add(Expr::var(ok).logical_not()),
            );
            b.jump(head);
        });
        m.fill_block(finish, |b| {
            b.fifo_write(fast_lane, Expr::imm(-1));
            b.fifo_write(slow_lane, Expr::imm(-1));
            b.output(routed_fast, Expr::var(fast));
            b.output(routed_slow, Expr::var(slow));
            b.output(dropped, Expr::var(drop_count));
            b.ret();
        });
    });

    let mut lane = |name: &'static str, fifo, out, ii: u64| {
        d.function(name, move |m| {
            let acc = m.var("acc");
            m.entry(|b| {
                b.assign(acc, Expr::imm(0));
            });
            m.loop_block(ii, |b| {
                let v = b.fifo_read(fifo);
                let is_done = Expr::var(v).eq(Expr::imm(-1));
                b.assign(
                    acc,
                    is_done
                        .clone()
                        .select(Expr::var(acc), Expr::var(acc).add(Expr::var(v))),
                );
                b.exit_loop_if(is_done);
            });
            m.exit(|b| {
                b.output(out, Expr::var(acc));
            });
        })
    };
    // Both lanes drain slower than the router can produce (roughly one
    // packet every 3 cycles), so the fast lane periodically backs up,
    // traffic spills onto the even-slower slow lane, and packets drop —
    // the congestion behaviour C simulation cannot see.
    let fast = lane("fast_lane_proc", fast_lane, fast_work, 5);
    let slow = lane("slow_lane_proc", slow_lane, slow_work, 11);
    d.dataflow_top("top", [router, fast, slow]);
    d.build().expect("router design is valid")
}

fn main() {
    let design = build_router(2000);

    let omni = backend("omnisim")
        .unwrap()
        .simulate(&design)
        .expect("omnisim run");
    let reference = backend("rtl")
        .unwrap()
        .simulate(&design)
        .expect("reference run");
    let c = backend("csim")
        .unwrap()
        .simulate(&design)
        .expect("csim run");

    println!(
        "{:<22} {:>12} {:>12} {:>12}",
        "", "OmniSim", "reference", "C-sim"
    );
    for key in [
        "routed_fast",
        "routed_slow",
        "dropped",
        "fast_lane_work",
        "slow_lane_work",
    ] {
        println!(
            "{:<22} {:>12} {:>12} {:>12}",
            key,
            omni.output(key).map_or("-".into(), |v| v.to_string()),
            reference.output(key).map_or("-".into(), |v| v.to_string()),
            c.output(key).map_or("-".into(), |v| v.to_string()),
        );
    }
    println!(
        "{:<22} {:>12} {:>12} {:>12}",
        "latency (cycles)",
        omni.total_cycles.unwrap(),
        reference.total_cycles.unwrap(),
        "n/a"
    );
    assert_eq!(
        omni.outputs, reference.outputs,
        "OmniSim must match the reference"
    );
    assert_ne!(
        c.output("dropped"),
        reference.output("dropped"),
        "C simulation reports a misleading drop count"
    );
    println!("\nOmniSim matches the cycle-stepped reference; C simulation does not.");
}
