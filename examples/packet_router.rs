//! A congestion-aware packet router — the kind of Type C design whose
//! C-level simulation the paper's introduction motivates: non-blocking
//! writes steer packets to the less-congested of two processing lanes, and
//! packets are dropped when both lanes are saturated.
//!
//! The example drives all three backends through the unified `Simulator`
//! API and shows that naive C simulation silently reports zero drops and a
//! completely wrong lane balance, while OmniSim agrees with the
//! cycle-stepped reference.
//!
//! Run with: `cargo run --release --example packet_router`

use omnisim_suite::backend;
use omnisim_suite::designs::misc::packet_router;

fn main() {
    let design = packet_router(2000, 4, 4);

    let omni = backend("omnisim")
        .unwrap()
        .simulate(&design)
        .expect("omnisim run");
    let reference = backend("rtl")
        .unwrap()
        .simulate(&design)
        .expect("reference run");
    let c = backend("csim")
        .unwrap()
        .simulate(&design)
        .expect("csim run");

    println!(
        "{:<22} {:>12} {:>12} {:>12}",
        "", "OmniSim", "reference", "C-sim"
    );
    for key in [
        "routed_fast",
        "routed_slow",
        "dropped",
        "fast_lane_work",
        "slow_lane_work",
    ] {
        println!(
            "{:<22} {:>12} {:>12} {:>12}",
            key,
            omni.output(key).map_or("-".into(), |v| v.to_string()),
            reference.output(key).map_or("-".into(), |v| v.to_string()),
            c.output(key).map_or("-".into(), |v| v.to_string()),
        );
    }
    println!(
        "{:<22} {:>12} {:>12} {:>12}",
        "latency (cycles)",
        omni.total_cycles.unwrap(),
        reference.total_cycles.unwrap(),
        "n/a"
    );
    assert_eq!(
        omni.outputs, reference.outputs,
        "OmniSim must match the reference"
    );
    assert_ne!(
        c.output("dropped"),
        reference.output("dropped"),
        "C simulation reports a misleading drop count"
    );
    println!("\nOmniSim matches the cycle-stepped reference; C simulation does not.");
}
