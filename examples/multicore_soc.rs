//! Simulating the largest Type B/C benchmark — the 34-module `multicore`
//! design (16 fetch/execute cores with branch feedback plus a collector) —
//! and the deliberately deadlocking design, exercising OmniSim's deadlock
//! detector.
//!
//! Run with: `cargo run --release --example multicore_soc`

use omnisim_suite::designs::misc;
use omnisim_suite::omnisim::{OmniOutcome, OmniSimulator};
use omnisim_suite::rtlsim::RtlSimulator;

fn main() {
    // --- multicore -------------------------------------------------------
    let design = misc::multicore(16, 128);
    println!(
        "multicore: {} modules, {} FIFOs, {} scheduled operations",
        design.modules.len(),
        design.fifos.len(),
        design.op_count()
    );

    let simulator = OmniSimulator::new(&design);
    println!("taxonomy: Type {}", simulator.taxonomy().class);
    let report = simulator.run().expect("multicore simulation");
    println!(
        "omnisim:   total_fetched = {:?}, total_executed = {:?}, latency = {} cycles",
        report.output("total_fetched"),
        report.output("total_executed"),
        report.total_cycles
    );
    println!(
        "           {} threads, {} queries ({} resolved by forward progress), {:.2?} execution",
        report.stats.threads,
        report.stats.queries,
        report.stats.queries_forced_false,
        report.timings.execution
    );

    let reference = RtlSimulator::new(&design).run().expect("reference simulation");
    println!(
        "reference: total_fetched = {:?}, total_executed = {:?}, latency = {} cycles ({:.2?})",
        reference.output("total_fetched"),
        reference.output("total_executed"),
        reference.total_cycles,
        reference.wall_time
    );
    assert_eq!(report.outputs, reference.outputs);

    // --- deadlock detection ----------------------------------------------
    println!("\ndeadlock design:");
    let deadlock = misc::deadlock();
    let report = OmniSimulator::new(&deadlock).run().expect("deadlock run");
    match &report.outcome {
        OmniOutcome::Deadlock { detail } => {
            println!("  deadlock detected immediately (no hang): {detail}");
        }
        OmniOutcome::Completed => unreachable!("the deadlock design cannot complete"),
    }
    println!(
        "  the independent bystander task still finished: bystander = {:?}",
        report.output("bystander")
    );
}
