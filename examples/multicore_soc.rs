//! Simulating the largest Type B/C benchmark — the 34-module `multicore`
//! design (16 fetch/execute cores with branch feedback plus a collector) —
//! and the deliberately deadlocking design, exercising OmniSim's deadlock
//! detector through the unified `Simulator` API.
//!
//! Run with: `cargo run --release --example multicore_soc`

use omnisim_suite::designs::misc;
use omnisim_suite::ir::taxonomy::classify;
use omnisim_suite::omnisim::SimStats;
use omnisim_suite::{backend, SimOutcome};

fn main() {
    // --- multicore -------------------------------------------------------
    let design = misc::multicore(16, 128);
    println!(
        "multicore: {} modules, {} FIFOs, {} scheduled operations",
        design.modules.len(),
        design.fifos.len(),
        design.op_count()
    );
    println!("taxonomy: Type {}", classify(&design).class);

    let omni = backend("omnisim").unwrap();
    let report = omni.simulate(&design).expect("multicore simulation");
    println!(
        "omnisim:   total_fetched = {:?}, total_executed = {:?}, latency = {} cycles",
        report.output("total_fetched"),
        report.output("total_executed"),
        report.total_cycles.unwrap()
    );
    let stats = report
        .extras
        .get::<SimStats>()
        .expect("omnisim ships stats");
    println!(
        "           {} threads, {} queries ({} resolved by forward progress), {:.2?} execution",
        stats.threads, stats.queries, stats.queries_forced_false, report.timings.execution
    );

    let reference = backend("rtl")
        .unwrap()
        .simulate(&design)
        .expect("reference simulation");
    println!(
        "reference: total_fetched = {:?}, total_executed = {:?}, latency = {} cycles ({:.2?})",
        reference.output("total_fetched"),
        reference.output("total_executed"),
        reference.total_cycles.unwrap(),
        reference.timings.execution
    );
    assert_eq!(report.outputs, reference.outputs);

    // --- deadlock detection ----------------------------------------------
    println!("\ndeadlock design:");
    let deadlock = misc::deadlock();
    let report = omni.simulate(&deadlock).expect("deadlock run");
    match &report.outcome {
        SimOutcome::Deadlock { blocked } => {
            println!("  deadlock detected immediately (no hang):");
            for entry in blocked {
                println!("    - {entry}");
            }
        }
        other => unreachable!("the deadlock design cannot complete: {other:?}"),
    }
    println!(
        "  the independent bystander task still finished: bystander = {:?}",
        report.output("bystander")
    );
}
