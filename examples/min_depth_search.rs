//! Minimum-depth search on the packet-router design: the inverse DSE query.
//!
//! Grid sweeps ask "what latency do these depths give?"; a FIFO-sizing
//! engineer usually wants the inverse — "what are the *smallest* lane
//! depths that provably keep the router behaving like the generously-sized
//! baseline?". This example runs the router once with deep lanes, compiles
//! the run into a [`SweepPlan`], and lets
//! [`SweepPlan::min_depths`](omnisim_suite::SweepPlan::min_depths)
//! binary-search each lane's smallest certified depth — a handful of
//! microsecond plan evaluations instead of a grid of re-simulations. The
//! found depths are then cross-checked with one real re-simulation.
//!
//! Run with: `cargo run --release --example min_depth_search`

use omnisim_suite::designs::misc::packet_router;
use omnisim_suite::omnisim::OmniSimulator;
use omnisim_suite::SweepPlan;

fn main() {
    // A burst of 120 packets against generously over-provisioned lanes:
    // nothing drops, so this baseline is the behaviour to preserve.
    let packets = 120;
    let max_depth = 128;
    let design = packet_router(packets, max_depth, max_depth);
    let baseline = OmniSimulator::new(&design).run().expect("baseline run");
    println!(
        "baseline lanes ({max_depth}, {max_depth}): {} cycles, dropped={:?}, fast/slow = {:?}/{:?}",
        baseline.total_cycles,
        baseline.output("dropped"),
        baseline.output("routed_fast"),
        baseline.output("routed_slow"),
    );

    let plan = SweepPlan::compile(&baseline.incremental).expect("plan compiles");
    let target = baseline.total_cycles;
    let search = plan.min_depths(target, max_depth).expect("search succeeds");
    println!(
        "\nmin_depths(target = {target} cycles, bound = {max_depth}): {} plan probes",
        search.probes
    );
    for (fifo, min) in search.per_fifo.iter().enumerate() {
        let name = &design.fifos[fifo].name;
        match min {
            Some(depth) => println!("  {name}: smallest certified depth = {depth}"),
            None => println!("  {name}: not certifiable within the bound"),
        }
    }
    println!(
        "  joint depths {:?}: {}",
        search.depths,
        if search.combined_meets_target() {
            "certified against the baseline constraints"
        } else {
            "needs a full re-simulation to certify"
        }
    );

    // Cross-check the answer with one real re-simulation. When the joint
    // minima certify, the plan *guarantees* behaviour and latency are
    // preserved, so that case is asserted; an uncertified result would
    // make this re-simulation the authority instead.
    let resized = packet_router(packets, search.depths[0], search.depths[1]);
    let check = OmniSimulator::new(&resized)
        .run()
        .expect("verification run");
    println!(
        "\nre-simulated at {:?}: {} cycles, dropped={:?}, fast/slow = {:?}/{:?}",
        search.depths,
        check.total_cycles,
        check.output("dropped"),
        check.output("routed_fast"),
        check.output("routed_slow"),
    );
    if search.combined_meets_target() {
        assert_eq!(
            check.outputs, baseline.outputs,
            "certified depths must preserve the baseline behaviour"
        );
        assert!(
            check.total_cycles <= target,
            "certified depths must meet the latency target"
        );
        println!(
            "\nthe router keeps its zero-drop behaviour with {}x smaller fast lane and {}x smaller slow lane",
            max_depth / search.depths[0].max(1),
            max_depth / search.depths[1].max(1),
        );
    } else {
        println!("\nthe joint minima were not certified; the re-simulation above is the authority");
    }
}
