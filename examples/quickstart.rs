//! Quickstart: author a small dataflow design with the IR builder, drive
//! every registered backend through the unified `Simulator` API, then
//! compile the design once and serve many runs from the session artifact.
//!
//! Run with: `cargo run --example quickstart`

use omnisim_suite::designs::typea;
use omnisim_suite::ir::taxonomy::classify;
use omnisim_suite::ir::{DesignBuilder, Expr};
use omnisim_suite::omnisim::SimStats;
use omnisim_suite::{all_backends, backend, RunConfig, Sweep};

fn main() {
    // A producer streams 64 values into a depth-4 FIFO; a consumer sums them.
    let n = 64;
    let mut d = DesignBuilder::new("quickstart");
    let data = d.array("data", (1..=n).collect::<Vec<i64>>());
    let sum = d.output("sum");
    let q = d.fifo("stream", 4);

    let producer = d.function("producer", |m| {
        m.counted_loop("i", n, 1, |b| {
            let i = b.var_expr("i");
            let v = b.array_load(data, i);
            b.fifo_write(q, Expr::var(v));
        });
    });
    let consumer = d.function("consumer", |m| {
        let acc = m.var("acc");
        m.entry(|b| {
            b.assign(acc, Expr::imm(0));
        });
        m.counted_loop("i", n, 2, |b| {
            let v = b.fifo_read(q);
            b.assign(acc, Expr::var(acc).add(Expr::var(v)));
        });
        m.exit(|b| {
            b.output(sum, Expr::var(acc));
        });
    });
    d.dataflow_top("top", [producer, consumer]);
    let design = d.build().expect("valid design");

    let taxonomy = classify(&design);
    println!(
        "taxonomy: Type {} (func sim {}, perf sim {})",
        taxonomy.class,
        taxonomy.func_sim_level(),
        taxonomy.perf_sim_level()
    );

    // Every backend, one loop, one API.
    println!(
        "\n{:<10} {:>10} {:>12} {:>10}   capabilities",
        "backend", "sum", "cycles", "warnings"
    );
    for sim in all_backends() {
        let caps = sim.capabilities();
        let report = sim.simulate(&design).expect("Type A runs everywhere");
        println!(
            "{:<10} {:>10} {:>12} {:>10}   cycle-accurate: {}, Type B/C: {}/{}",
            sim.name(),
            report.output("sum").map_or("-".into(), |v| v.to_string()),
            report.total_cycles.map_or("n/a".into(), |c| c.to_string()),
            report.warning_count(),
            caps.cycle_accurate,
            caps.handles_type_b,
            caps.handles_type_c,
        );
    }

    // The cycle-accurate backends agree exactly.
    let omni = backend("omnisim").unwrap().simulate(&design).unwrap();
    let reference = backend("rtl").unwrap().simulate(&design).unwrap();
    assert_eq!(omni.outputs, reference.outputs);
    assert_eq!(omni.total_cycles, reference.total_cycles);
    if let Some(stats) = omni.extras.get::<SimStats>() {
        println!(
            "\nomnisim internals: {} threads, {} FIFO accesses, {} graph nodes",
            stats.threads, stats.fifo_accesses, stats.graph_nodes
        );
    }

    // Compile once, run many: the session API pays the front end a single
    // time, then answers depth what-ifs in microseconds.
    let compiled = backend("omnisim").unwrap().compile(&design).unwrap();
    println!("\ncompile-once/run-many session ({}):", compiled.backend());
    for depth in [1usize, 2, 8, 32] {
        let run = compiled
            .run(&RunConfig::new().with_fifo_depths([depth]))
            .unwrap();
        println!(
            "  depth {depth:>2}: {} cycles in {:?}",
            run.total_cycles.unwrap(),
            run.timings.total()
        );
    }

    // FIFO-sizing sweep: answered from the baseline's recorded constraints.
    println!("\nFIFO-sizing sweep via the batch DSE API:");
    let sweep = Sweep::new(&design)
        .grid(&[&[1, 2, 4, 8, 16]])
        .run()
        .expect("sweep succeeds");
    for point in &sweep.points {
        println!(
            "  depth {:>2}: {} cycles ({})",
            point.depths[0],
            point.total_cycles,
            point.method.label()
        );
    }

    // Larger designs from the benchmark suite work the same way.
    let fir = typea::fir_filter(128, 8);
    let report = backend("omnisim").unwrap().simulate(&fir).unwrap();
    println!(
        "\nfir_filter(128, 8): {} cycles through the same API",
        report.total_cycles.unwrap()
    );
}
