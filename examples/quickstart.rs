//! Quickstart: author a small dataflow design with the IR builder, simulate
//! it with OmniSim, and compare against the cycle-stepped reference
//! simulator and naive C simulation.
//!
//! Run with: `cargo run --example quickstart`

use omnisim_suite::csim;
use omnisim_suite::ir::{DesignBuilder, Expr};
use omnisim_suite::omnisim::OmniSimulator;
use omnisim_suite::rtlsim::RtlSimulator;

fn main() {
    // A producer streams 64 values into a depth-4 FIFO; a consumer sums them.
    let n = 64;
    let mut d = DesignBuilder::new("quickstart");
    let data = d.array("data", (1..=n).collect::<Vec<i64>>());
    let sum = d.output("sum");
    let q = d.fifo("stream", 4);

    let producer = d.function("producer", |m| {
        m.counted_loop("i", n, 1, |b| {
            let i = b.var_expr("i");
            let v = b.array_load(data, i);
            b.fifo_write(q, Expr::var(v));
        });
    });
    let consumer = d.function("consumer", |m| {
        let acc = m.var("acc");
        m.entry(|b| {
            b.assign(acc, Expr::imm(0));
        });
        m.counted_loop("i", n, 2, |b| {
            let v = b.fifo_read(q);
            b.assign(acc, Expr::var(acc).add(Expr::var(v)));
        });
        m.exit(|b| {
            b.output(sum, Expr::var(acc));
        });
    });
    d.dataflow_top("top", [producer, consumer]);
    let design = d.build().expect("valid design");

    // OmniSim: near-C-speed functionality + cycle-accurate performance.
    let simulator = OmniSimulator::new(&design);
    println!(
        "taxonomy: Type {} (func sim {}, perf sim {})",
        simulator.taxonomy().class,
        simulator.taxonomy().func_sim_level(),
        simulator.taxonomy().perf_sim_level()
    );
    let report = simulator.run().expect("simulation succeeds");
    println!(
        "omnisim:   sum = {:?}, latency = {} cycles, {} FIFO accesses, {} graph nodes",
        report.output("sum"),
        report.total_cycles,
        report.stats.fifo_accesses,
        report.stats.graph_nodes
    );

    // The cycle-stepped reference (co-simulation stand-in) agrees.
    let reference = RtlSimulator::new(&design).run().expect("reference succeeds");
    println!(
        "reference: sum = {:?}, latency = {} cycles ({} cycles stepped)",
        reference.output("sum"),
        reference.total_cycles,
        reference.cycles_stepped
    );
    assert_eq!(report.outputs, reference.outputs);
    assert_eq!(report.total_cycles, reference.total_cycles);

    // Naive C simulation gets the functionality right for this Type A design
    // but has no notion of cycles at all.
    let c = csim::simulate(&design);
    println!(
        "c-sim:     sum = {:?} (no timing information, {} warnings)",
        c.output("sum"),
        c.warning_count()
    );

    println!("\nFIFO-sizing sweep via incremental re-simulation:");
    for depth in [1usize, 2, 4, 8, 16] {
        match report.incremental.try_with_depths(&[depth]).unwrap() {
            omnisim_suite::omnisim::IncrementalOutcome::Valid { total_cycles } => {
                println!("  depth {depth:>2}: {total_cycles} cycles (incremental)");
            }
            omnisim_suite::omnisim::IncrementalOutcome::ConstraintViolated { .. } => {
                println!("  depth {depth:>2}: requires full re-simulation");
            }
        }
    }
}
