//! FIFO-sizing design-space exploration on the congestion-aware dispatcher
//! of Fig. 4 Ex. 5 — the workflow behind Table 6 of the paper.
//!
//! For every candidate (depth1, depth2) pair the example first tries the
//! incremental re-simulation path (microseconds); only when the recorded
//! constraints are violated does it fall back to a full re-simulation.
//!
//! Run with: `cargo run --release --example fifo_sizing_dse`

use omnisim_suite::designs::fig4;
use omnisim_suite::omnisim::{IncrementalOutcome, OmniSimulator};
use std::time::Instant;

fn main() {
    let n = 1024;
    let base_depths = (2usize, 2usize);
    let design = fig4::ex5_with_depths(n, base_depths.0, base_depths.1);

    println!("initial run with FIFO depths {base_depths:?}…");
    let start = Instant::now();
    let baseline = OmniSimulator::new(&design).run().expect("baseline run");
    println!(
        "  latency {} cycles, P1 handled {:?}, P2 handled {:?}  ({:.2?})",
        baseline.total_cycles,
        baseline.output("processed_by_p1"),
        baseline.output("processed_by_p2"),
        start.elapsed()
    );

    println!("\n{:>8} {:>8} {:>12} {:>14} {:>12}", "depth1", "depth2", "cycles", "method", "time");
    let mut incremental_hits = 0;
    let mut full_runs = 0;
    for depth1 in [1usize, 2, 4, 8, 16, 100] {
        for depth2 in [1usize, 2, 4, 16, 100] {
            let start = Instant::now();
            let (cycles, method) = match baseline
                .incremental
                .try_with_depths(&[depth1, depth2])
                .expect("finalization succeeds")
            {
                IncrementalOutcome::Valid { total_cycles } => {
                    incremental_hits += 1;
                    (total_cycles, "incremental")
                }
                IncrementalOutcome::ConstraintViolated { .. } => {
                    full_runs += 1;
                    let resized = fig4::ex5_with_depths(n, depth1, depth2);
                    let full = OmniSimulator::new(&resized).run().expect("full re-run");
                    (full.total_cycles, "full re-sim")
                }
            };
            println!(
                "{depth1:>8} {depth2:>8} {cycles:>12} {method:>14} {:>12.2?}",
                start.elapsed()
            );
        }
    }
    println!(
        "\n{} configurations answered incrementally, {} needed a full re-simulation",
        incremental_hits, full_runs
    );
}
