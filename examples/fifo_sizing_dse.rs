//! FIFO-sizing design-space exploration on the congestion-aware dispatcher
//! of Fig. 4 Ex. 5 — the workflow behind Table 6 of the paper.
//!
//! The batch [`Sweep`] API runs the baseline once, compiles it into a
//! frozen [`SweepPlan`] (CSR graph + cached topological order + reusable
//! time buffers), and answers every candidate (depth1, depth2) pair from
//! the plan with delta evaluation — falling back to a parallel full
//! re-simulation only where the recorded constraints are violated. The
//! compiled plan rides on the report, so follow-up queries (here: a
//! min-depth search) reuse the same baseline for free.
//!
//! Run with: `cargo run --release --example fifo_sizing_dse`

use omnisim_suite::designs::fig4;
use omnisim_suite::Sweep;

fn main() {
    let design = fig4::ex5_with_depths(1024, 2, 2);
    let sweep = Sweep::new(&design)
        .grid(&[&[1, 2, 4, 8, 16, 100], &[1, 2, 4, 16, 100]])
        .run()
        .expect("sweep succeeds");

    println!("baseline (2, 2): {} cycles\n", sweep.baseline.total_cycles);
    for p in &sweep.points {
        let label = p.method.label();
        println!("{:?}: {} cycles ({label})", p.depths, p.total_cycles);
    }
    let (hits, full) = (sweep.incremental_hits(), sweep.full_resims());
    println!("\n{hits} configurations answered from the compiled plan, {full} full re-simulations");

    // The compiled plan is retained on the report: ask the inverse question
    // ("smallest depths within 1% of the baseline latency") without
    // re-simulating anything.
    let plan = sweep.plan.as_ref().expect("plan compiled");
    println!(
        "\ncompiled plan: {} nodes, {} edges, {} constraints",
        plan.node_count(),
        plan.edge_count(),
        plan.constraint_count()
    );
    let target = sweep.baseline.total_cycles + sweep.baseline.total_cycles / 100;
    let search = plan.min_depths(target, 64).expect("search succeeds");
    println!(
        "smallest certified depths for <= {target} cycles: {:?} ({} probes, combined {})",
        search.depths,
        search.probes,
        if search.combined_meets_target() {
            "meets the target"
        } else {
            "needs a full re-sim to certify"
        }
    );
}
