//! FIFO-sizing design-space exploration on the congestion-aware dispatcher
//! of Fig. 4 Ex. 5 — the workflow behind Table 6 of the paper.
//!
//! The batch [`Sweep`] API answers every candidate (depth1, depth2) pair
//! from the baseline run's recorded constraints (microseconds) and falls
//! back to a parallel full re-simulation only where they are violated —
//! replacing the hand-rolled incremental/fallback loop this example needed
//! before the unified API existed.
//!
//! Run with: `cargo run --release --example fifo_sizing_dse`

use omnisim_suite::designs::fig4;
use omnisim_suite::Sweep;

fn main() {
    let design = fig4::ex5_with_depths(1024, 2, 2);
    let sweep = Sweep::new(&design)
        .grid(&[&[1, 2, 4, 8, 16, 100], &[1, 2, 4, 16, 100]])
        .run()
        .expect("sweep succeeds");

    println!("baseline (2, 2): {} cycles\n", sweep.baseline.total_cycles);
    for p in &sweep.points {
        let label = p.method.label();
        println!("{:?}: {} cycles ({label})", p.depths, p.total_cycles);
    }
    let (hits, full) = (sweep.incremental_hits(), sweep.full_resims());
    println!("\n{hits} configurations answered incrementally, {full} full re-simulations");
}
