//! Rule-by-rule pins for the static analyzer.
//!
//! Every rule in the catalog gets two designs through the public
//! `omnisim_suite::analyze` facade: one that must fire the diagnostic and
//! a boundary twin — the closest design on the other side of the rule's
//! line — that must stay silent. The analyzer's soundness against the
//! simulators is fuzzed separately (`fuzz_differential.rs`); this file
//! pins *precision*, so a pass that starts over- or under-reporting fails
//! a named test instead of a statistic.

use omnisim_suite::analyze::{analyze, DeadlockVerdict, Rule, Severity};
use omnisim_suite::ir::builder::DesignBuilder;
use omnisim_suite::ir::{Design, Expr};

/// Producer writes `w` tokens, consumer reads `r`, through depth `depth`.
fn producer_consumer(w: i64, r: i64, depth: usize) -> Design {
    let mut d = DesignBuilder::new("pc");
    let f = d.fifo("q", depth);
    let p = d.function("p", |m| {
        m.counted_loop("i", w, 1, |b| {
            b.fifo_write(f, Expr::imm(1));
        });
    });
    let c = d.function("c", |m| {
        m.counted_loop("i", r, 1, |b| {
            let _ = b.fifo_read(f);
        });
    });
    d.dataflow_top("top", [p, c]);
    d.build().expect("valid")
}

// --- deadlock + deadlock-cycle ---------------------------------------------

#[test]
fn deadlock_fires_on_wedged_surplus() {
    // 10 writes, 5 reads, depth 4: the 10th write can never commit.
    let report = analyze(&producer_consumer(10, 5, 4));
    assert_eq!(report.verdict, DeadlockVerdict::CertifiedDeadlock);
    assert!(report.diagnostics.iter().any(|d| d.rule == Rule::Deadlock));
}

#[test]
fn deadlock_is_silent_when_the_surplus_fits() {
    // Same imbalance, depth 5: every write commits, the design completes.
    let report = analyze(&producer_consumer(10, 5, 5));
    assert_eq!(report.verdict, DeadlockVerdict::CertifiedFree);
    assert!(report.diagnostics.iter().all(|d| d.rule != Rule::Deadlock));
}

fn ping_pong(primed: bool) -> Design {
    // A reads f1 then writes f2; B reads f2 then writes f1. Without a
    // primed token both block on their first read forever.
    let mut d = DesignBuilder::new("ring");
    let f1 = d.fifo("f1", 1);
    let f2 = d.fifo("f2", 1);
    let a = d.function("a", |m| {
        if primed {
            m.entry(|b| {
                b.fifo_write(f2, Expr::imm(0));
            });
        }
        m.seq(|b| {
            let v = b.fifo_read(f1);
            b.fifo_write(f2, Expr::var(v));
        });
    });
    let bb = d.function("b", |m| {
        m.seq(|b| {
            let v = b.fifo_read(f2);
            b.fifo_write(f1, Expr::var(v));
        });
    });
    d.dataflow_top("top", [a, bb]);
    d.build().expect("valid")
}

#[test]
fn deadlock_cycle_fires_on_an_unprimed_ring() {
    let report = analyze(&ping_pong(false));
    assert_eq!(report.verdict, DeadlockVerdict::CertifiedDeadlock);
    assert!(report
        .diagnostics
        .iter()
        .any(|d| d.rule == Rule::DeadlockCycle));
    assert!(!report.cycles.is_empty(), "the ring must be reported");
}

#[test]
fn deadlock_cycle_severity_drops_when_the_ring_is_primed() {
    // Same ring with one token injected ahead of the loop: it completes,
    // so the cycle must not be reported at error severity.
    let report = analyze(&ping_pong(true));
    assert_eq!(report.verdict, DeadlockVerdict::CertifiedFree);
    assert!(report
        .diagnostics
        .iter()
        .all(|d| d.rule != Rule::DeadlockCycle || d.severity != Severity::Error));
}

// --- fifo-depth-bound + token-imbalance ------------------------------------

fn self_burst(burst: i64, depth: usize) -> Design {
    let mut d = DesignBuilder::new("burst");
    let f = d.fifo("spill", depth);
    d.function_top("t", |m| {
        m.counted_loop("i", burst, 1, |b| {
            b.fifo_write(f, Expr::imm(7));
        });
        m.counted_loop("j", burst, 1, |b| {
            let _ = b.fifo_read(f);
        });
    });
    d.build().expect("valid")
}

#[test]
fn fifo_depth_bound_fires_when_the_burst_overflows() {
    let report = analyze(&self_burst(5, 4));
    assert!(report
        .diagnostics
        .iter()
        .any(|d| d.rule == Rule::FifoDepthBound && d.severity == Severity::Error));
    assert_eq!(report.depth_bounds[0].bound, 5);
}

#[test]
fn fifo_depth_bound_is_silent_at_the_exact_depth() {
    let report = analyze(&self_burst(5, 5));
    assert!(report
        .diagnostics
        .iter()
        .all(|d| d.rule != Rule::FifoDepthBound));
    assert_eq!(report.depth_bounds[0].bound, 5, "bound stays tight");
}

#[test]
fn token_imbalance_fires_when_the_reader_starves() {
    let report = analyze(&producer_consumer(4, 10, 4));
    assert!(report
        .diagnostics
        .iter()
        .any(|d| d.rule == Rule::TokenImbalance && d.severity == Severity::Error));
}

#[test]
fn token_imbalance_is_silent_on_balanced_counts() {
    let report = analyze(&producer_consumer(10, 10, 4));
    assert!(report
        .diagnostics
        .iter()
        .all(|d| d.rule != Rule::TokenImbalance));
}

// --- shared-array + shared-axi ----------------------------------------------

#[test]
fn shared_array_fires_on_interleaved_store_and_load() {
    let mut d = DesignBuilder::new("race");
    let shared = d.zero_array("buf", 8);
    let f = d.fifo("q", 2);
    let w = d.function("w", |m| {
        m.counted_loop("i", 4, 1, |b| {
            let i = b.var_expr("i");
            b.array_store(shared, i, Expr::imm(1));
            b.fifo_write(f, Expr::imm(0));
        });
    });
    let r = d.function("r", |m| {
        m.counted_loop("i", 4, 1, |b| {
            let _ = b.fifo_read(f);
            let i = b.var_expr("i");
            let _ = b.array_load(shared, i);
        });
    });
    d.dataflow_top("top", [w, r]);
    let report = analyze(&d.build().expect("valid"));
    assert!(report
        .diagnostics
        .iter()
        .any(|d| d.rule == Rule::SharedArray));
}

#[test]
fn shared_array_is_silent_across_a_fifo_handoff() {
    // All stores strictly precede the token; all loads strictly follow it.
    let mut d = DesignBuilder::new("sync");
    let shared = d.zero_array("buf", 8);
    let done = d.fifo("done", 1);
    let w = d.function("w", |m| {
        m.counted_loop("i", 8, 1, |b| {
            let i = b.var_expr("i");
            b.array_store(shared, i, Expr::imm(1));
        });
        m.exit(|b| {
            b.fifo_write(done, Expr::imm(1));
        });
    });
    let r = d.function("r", |m| {
        m.entry(|b| {
            let _ = b.fifo_read(done);
        });
        m.counted_loop("i", 8, 1, |b| {
            let i = b.var_expr("i");
            let _ = b.array_load(shared, i);
        });
    });
    d.dataflow_top("top", [w, r]);
    let report = analyze(&d.build().expect("valid"));
    assert!(report
        .diagnostics
        .iter()
        .all(|d| d.rule != Rule::SharedArray));
}

#[test]
fn shared_axi_fires_when_two_tasks_drive_one_port() {
    let mut d = DesignBuilder::new("axi2");
    let mem = d.zero_array("m", 16);
    let bus = d.axi_port("p0", mem, 4);
    let a = d.function("a", |m| {
        m.entry(|b| {
            b.axi_read_req(bus, Expr::imm(0), Expr::imm(1));
            let _ = b.axi_read(bus);
        });
    });
    let bm = d.function("b", |m| {
        m.entry(|b| {
            b.axi_read_req(bus, Expr::imm(4), Expr::imm(1));
            let _ = b.axi_read(bus);
        });
    });
    d.dataflow_top("top", [a, bm]);
    let report = analyze(&d.build().expect("valid"));
    assert!(report
        .diagnostics
        .iter()
        .any(|d| d.rule == Rule::SharedAxi && d.severity == Severity::Error));
}

#[test]
fn shared_axi_is_silent_with_a_port_per_task() {
    let mut d = DesignBuilder::new("axi_ok");
    let m1 = d.zero_array("m1", 16);
    let m2 = d.zero_array("m2", 16);
    let bus1 = d.axi_port("p0", m1, 4);
    let bus2 = d.axi_port("p1", m2, 4);
    let a = d.function("a", |m| {
        m.entry(|b| {
            b.axi_read_req(bus1, Expr::imm(0), Expr::imm(1));
            let _ = b.axi_read(bus1);
        });
    });
    let bm = d.function("b", |m| {
        m.entry(|b| {
            b.axi_read_req(bus2, Expr::imm(4), Expr::imm(1));
            let _ = b.axi_read(bus2);
        });
    });
    d.dataflow_top("top", [a, bm]);
    let report = analyze(&d.build().expect("valid"));
    assert!(report.diagnostics.iter().all(|d| d.rule != Rule::SharedAxi));
}

// --- dead-code + fifo-usage -------------------------------------------------

#[test]
fn dead_code_fires_on_an_orphan_module() {
    let mut d = DesignBuilder::new("deadmod");
    let _orphan = d.function("orphan", |m| {
        m.entry(|b| {
            let x = b.var("x");
            b.assign(x, Expr::imm(1));
        });
    });
    d.function_top("top", |m| {
        m.entry(|b| {
            let y = b.var("y");
            b.assign(y, Expr::imm(2));
        });
    });
    let report = analyze(&d.build().expect("valid"));
    assert!(report
        .diagnostics
        .iter()
        .any(|d| d.rule == Rule::DeadCode && d.message.contains("orphan")));
}

#[test]
fn dead_code_is_silent_when_everything_is_reachable() {
    let report = analyze(&producer_consumer(4, 4, 2));
    assert!(report.diagnostics.iter().all(|d| d.rule != Rule::DeadCode));
}

#[test]
fn fifo_usage_fires_on_a_ghost_fifo() {
    let mut d = DesignBuilder::new("ghost");
    let _unused = d.fifo("ghost", 2);
    d.function_top("top", |m| {
        m.entry(|b| {
            let x = b.var("x");
            b.assign(x, Expr::imm(1));
        });
    });
    let report = analyze(&d.build().expect("valid"));
    assert!(report.diagnostics.iter().any(|d| d.rule == Rule::FifoUsage));
}

#[test]
fn fifo_usage_is_silent_when_both_ends_exist() {
    let report = analyze(&producer_consumer(4, 4, 2));
    assert!(report.diagnostics.iter().all(|d| d.rule != Rule::FifoUsage));
}

// --- elided-check + nb-silent-drop ------------------------------------------

#[test]
fn elided_check_fires_on_a_discarded_status_probe() {
    let mut d = DesignBuilder::new("elide");
    let f = d.fifo("q", 1);
    d.function_top("top", |m| {
        m.entry(|b| {
            b.fifo_write(f, Expr::imm(1));
            b.fifo_empty_unused(f);
            let _ = b.fifo_read(f);
        });
    });
    let report = analyze(&d.build().expect("valid"));
    assert!(report
        .diagnostics
        .iter()
        .any(|d| d.rule == Rule::ElidedCheck));
}

#[test]
fn elided_check_is_silent_when_the_probe_lands_in_a_var() {
    let mut d = DesignBuilder::new("probe");
    let f = d.fifo("q", 1);
    d.function_top("top", |m| {
        m.entry(|b| {
            b.fifo_write(f, Expr::imm(1));
            let _empty = b.fifo_empty(f);
            let _ = b.fifo_read(f);
        });
    });
    let report = analyze(&d.build().expect("valid"));
    assert!(report
        .diagnostics
        .iter()
        .all(|d| d.rule != Rule::ElidedCheck));
}

#[test]
fn nb_silent_drop_fires_on_an_ignored_success_flag() {
    let mut d = DesignBuilder::new("nb");
    let f = d.fifo("q", 1);
    d.function_top("top", |m| {
        m.entry(|b| {
            b.fifo_nb_write_ignored(f, Expr::imm(7));
            let _ = b.fifo_read(f);
        });
    });
    let report = analyze(&d.build().expect("valid"));
    assert!(report
        .diagnostics
        .iter()
        .any(|d| d.rule == Rule::NbSilentDrop && d.severity == Severity::Warning));
}

#[test]
fn nb_silent_drop_is_silent_when_the_flag_is_captured() {
    let mut d = DesignBuilder::new("nbok");
    let f = d.fifo("q", 1);
    d.function_top("top", |m| {
        m.entry(|b| {
            let _ok = b.fifo_nb_write(f, Expr::imm(7));
            let _ = b.fifo_read(f);
        });
    });
    let report = analyze(&d.build().expect("valid"));
    assert!(report
        .diagnostics
        .iter()
        .all(|d| d.rule != Rule::NbSilentDrop));
}

// --- array-bounds -----------------------------------------------------------

fn strided_store(trip: i64, len: usize) -> Design {
    let mut d = DesignBuilder::new("stride");
    let a = d.zero_array("buf", len);
    d.function_top("top", |m| {
        m.counted_loop("i", trip, 1, |b| {
            let i = b.var_expr("i");
            b.array_store(a, i, Expr::imm(1));
        });
    });
    d.build().expect("valid")
}

#[test]
fn array_bounds_fires_across_summarized_loop_iterations() {
    // Indices 0..8 into a 4-element array: the loop is summarized, so the
    // violation must be caught from the closed-form index range, not by
    // stepping every iteration.
    let report = analyze(&strided_store(8, 4));
    assert!(report
        .diagnostics
        .iter()
        .any(|d| d.rule == Rule::ArrayBounds && d.severity == Severity::Error));
    assert_ne!(report.verdict, DeadlockVerdict::CertifiedFree);
}

#[test]
fn array_bounds_is_silent_when_the_loop_exactly_fills_the_array() {
    let report = analyze(&strided_store(4, 4));
    assert!(report
        .diagnostics
        .iter()
        .all(|d| d.rule != Rule::ArrayBounds));
}

// --- axi-protocol -----------------------------------------------------------

#[test]
fn axi_protocol_fires_on_unbalanced_burst_beats() {
    let mut d = DesignBuilder::new("beats");
    let mem = d.zero_array("m", 16);
    let bus = d.axi_port("p0", mem, 4);
    d.function_top("t", |m| {
        m.entry(|b| {
            b.axi_read_req(bus, Expr::imm(0), Expr::imm(2));
            let _ = b.axi_read(bus);
            let _ = b.axi_read(bus);
            let _ = b.axi_read(bus); // one beat past the burst
        });
    });
    let report = analyze(&d.build_unchecked());
    assert!(report
        .diagnostics
        .iter()
        .any(|d| d.rule == Rule::AxiProtocol));
}

#[test]
fn axi_protocol_is_silent_on_a_balanced_burst() {
    let mut d = DesignBuilder::new("beats_ok");
    let mem = d.zero_array("m", 16);
    let bus = d.axi_port("p0", mem, 4);
    d.function_top("t", |m| {
        m.entry(|b| {
            b.axi_read_req(bus, Expr::imm(0), Expr::imm(2));
            let _ = b.axi_read(bus);
            let _ = b.axi_read(bus);
        });
    });
    let report = analyze(&d.build().expect("valid"));
    assert!(report
        .diagnostics
        .iter()
        .all(|d| d.rule != Rule::AxiProtocol));
}

// --- loop summarization scale pin -------------------------------------------

#[test]
fn hundred_million_iteration_pipeline_is_certified_in_closed_form() {
    // 100M trips is 50x the concrete trace fuel budget: this certifies
    // only because self-loops are summarized into closed-form repeat
    // segments (and the network run warps through the steady state).
    let report = analyze(&producer_consumer(100_000_000, 100_000_000, 4));
    assert_eq!(report.verdict, DeadlockVerdict::CertifiedFree);
    assert_eq!(report.depth_bounds[0].bound, 1);
    assert!(report.depth_bounds[0].exact);
}
