//! Helpers shared by the workspace-root integration tests.

// Each integration test compiles this module independently and uses a
// different subset of it.
#![allow(dead_code)]

/// Deterministic xorshift64* PRNG so randomized tests are reproducible.
pub struct Rng(u64);

impl Rng {
    /// Creates a generator from a non-zero-coerced seed.
    pub fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }

    /// Next raw 64-bit value.
    pub fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[lo, hi)`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo)
    }

    /// Uniform FIFO depth in `1..=max`.
    pub fn depth(&mut self, max: usize) -> usize {
        1 + (self.next() as usize) % max
    }
}
