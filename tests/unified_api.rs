//! Conformance tests for the unified `Simulator` API: every registered
//! backend is driven through `dyn Simulator` on the same designs and the
//! reports are cross-checked, and the `Sweep` batch DSE driver is verified
//! against the manual incremental/full-re-simulation workflow it replaces.

use omnisim_suite::designs::fig4;
use omnisim_suite::ir::taxonomy::classify;
use omnisim_suite::ir::{Design, DesignBuilder, Expr};
use omnisim_suite::omnisim::{IncrementalOutcome, IncrementalState, OmniSimulator, SimStats};
use omnisim_suite::{all_backends, backend, Sweep, SweepMethod};

/// A small Type A producer/consumer design every backend can simulate.
fn type_a_design(n: i64) -> Design {
    let mut d = DesignBuilder::new("conformance");
    let data = d.array("data", (1..=n).collect::<Vec<i64>>());
    let out = d.output("sum");
    let q = d.fifo("q", 2);
    let p = d.function("producer", |m| {
        m.counted_loop("i", n, 1, |b| {
            let i = b.var_expr("i");
            let v = b.array_load(data, i);
            b.fifo_write(q, Expr::var(v));
        });
    });
    let c = d.function("consumer", |m| {
        let acc = m.var("acc");
        m.entry(|b| {
            b.assign(acc, Expr::imm(0));
        });
        m.counted_loop("i", n, 2, |b| {
            let v = b.fifo_read(q);
            b.assign(acc, Expr::var(acc).add(Expr::var(v)));
        });
        m.exit(|b| {
            b.output(out, Expr::var(acc));
        });
    });
    d.dataflow_top("top", [p, c]);
    d.build().unwrap()
}

#[test]
fn every_registered_backend_agrees_on_a_type_a_design() {
    let n = 48;
    let design = type_a_design(n);
    let expected_sum = n * (n + 1) / 2;
    let mut cycle_counts = Vec::new();

    for sim in all_backends() {
        let report = sim
            .simulate(&design)
            .unwrap_or_else(|e| panic!("{} rejected a Type A design: {e}", sim.name()));
        assert_eq!(report.backend, sim.name(), "report names its backend");
        assert!(
            report.outcome.is_completed(),
            "{} did not complete: {:?}",
            sim.name(),
            report.outcome
        );
        assert_eq!(
            report.output("sum"),
            Some(expected_sum),
            "{} got the functional result wrong",
            sim.name()
        );
        let caps = sim.capabilities();
        match report.total_cycles {
            Some(cycles) => {
                assert!(
                    caps.cycle_accurate,
                    "{} reports cycles without claiming cycle accuracy",
                    sim.name()
                );
                cycle_counts.push((sim.name(), cycles));
            }
            None => assert!(
                !caps.cycle_accurate,
                "{} claims cycle accuracy but reported no cycles",
                sim.name()
            ),
        }
    }

    // All cycle-accurate backends agree exactly on Type A designs.
    assert!(
        cycle_counts.len() >= 3,
        "rtl, lightning and omnisim report cycles"
    );
    let (first_name, first_cycles) = cycle_counts[0];
    for (name, cycles) in &cycle_counts[1..] {
        assert_eq!(
            *cycles, first_cycles,
            "{name} and {first_name} disagree on cycle count"
        );
    }
}

#[test]
fn capabilities_predict_type_c_support() {
    let design = fig4::ex5_with_depths(128, 2, 2);
    let class = classify(&design).class;
    for sim in all_backends() {
        let caps = sim.capabilities();
        let result = sim.simulate(&design);
        if sim.name() == "lightning" {
            // The only backend that *rejects* out-of-scope designs.
            assert!(!caps.supports(class));
            let failure = result.expect_err("lightning must reject Type C designs");
            assert!(failure.is_unsupported(), "got {failure:?}");
        } else {
            assert!(result.is_ok(), "{} errored: {:?}", sim.name(), result.err());
        }
    }
}

#[test]
fn incremental_capability_matches_shipped_extras() {
    let design = type_a_design(16);
    for sim in all_backends() {
        let Ok(report) = sim.simulate(&design) else {
            continue;
        };
        if sim.name() == "omnisim" {
            assert!(sim.capabilities().incremental_dse);
            assert!(report.extras.get::<IncrementalState>().is_some());
            assert!(report.extras.get::<SimStats>().is_some());
        }
        if !sim.capabilities().incremental_dse {
            assert!(report.extras.get::<IncrementalState>().is_none());
        }
    }
}

/// The `Sweep` API must reproduce the `fifo_sizing_dse` example's
/// incremental-hit/full-rerun split with identical cycle counts.
#[test]
fn sweep_reproduces_the_manual_dse_workflow() {
    let n = 256;
    let design = fig4::ex5_with_depths(n, 2, 2);
    let depth1_axis = [1usize, 2, 4, 16];
    let depth2_axis = [1usize, 2, 100];

    // The manual workflow the example used before the Sweep API existed.
    let baseline = OmniSimulator::new(&design).run().expect("baseline run");
    let mut manual: Vec<(Vec<usize>, u64, SweepMethod)> = Vec::new();
    for &d1 in &depth1_axis {
        for &d2 in &depth2_axis {
            match baseline.incremental.try_with_depths(&[d1, d2]).unwrap() {
                IncrementalOutcome::Valid { total_cycles } => {
                    manual.push((vec![d1, d2], total_cycles, SweepMethod::Incremental));
                }
                IncrementalOutcome::ConstraintViolated { .. }
                | IncrementalOutcome::DepthInfeasible { .. }
                | IncrementalOutcome::DepthCyclic => {
                    let resized = fig4::ex5_with_depths(n, d1, d2);
                    let full = OmniSimulator::new(&resized).run().unwrap();
                    manual.push((vec![d1, d2], full.total_cycles, SweepMethod::FullResim));
                }
            }
        }
    }

    let sweep = Sweep::new(&design)
        .grid(&[&depth1_axis, &depth2_axis])
        .run()
        .expect("sweep succeeds");

    assert_eq!(sweep.points.len(), manual.len());
    for (point, (depths, cycles, method)) in sweep.points.iter().zip(&manual) {
        assert_eq!(&point.depths, depths);
        assert_eq!(point.total_cycles, *cycles, "depths {depths:?}");
        assert_eq!(point.method, *method, "depths {depths:?}");
    }
    let manual_hits = manual
        .iter()
        .filter(|(_, _, m)| *m == SweepMethod::Incremental)
        .count();
    assert_eq!(sweep.incremental_hits(), manual_hits);
    assert_eq!(sweep.full_resims(), manual.len() - manual_hits);
    assert!(
        sweep.full_resims() > 0,
        "the grid must exercise the fallback"
    );
    assert!(
        sweep.incremental_hits() > 0,
        "the grid must exercise the fast path"
    );
}

#[test]
fn deadlocks_surface_uniformly_across_cycle_accurate_backends() {
    let design = omnisim_suite::designs::misc::deadlock();
    for name in ["omnisim", "rtl"] {
        let report = backend(name).unwrap().simulate(&design).unwrap();
        assert!(
            report.outcome.is_deadlock(),
            "{name} must detect the deadlock, got {:?}",
            report.outcome
        );
        match &report.outcome {
            omnisim_suite::SimOutcome::Deadlock { blocked } => {
                assert!(!blocked.is_empty(), "{name} must name the blocked tasks");
            }
            _ => unreachable!(),
        }
    }
}
