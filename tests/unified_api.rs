//! Conformance tests for the unified `Simulator` API: every registered
//! backend is driven through `dyn Simulator` on the same designs and the
//! reports are cross-checked; the compile-once / run-many session lifecycle
//! (`compile` + `CompiledSim::run`) is verified for bit-identical replays,
//! concurrent shared-artifact runs and `RunConfig` depth-override
//! agreement; and the `Sweep` batch DSE driver is verified against the
//! manual incremental/full-re-simulation workflow it replaces.

use omnisim_suite::designs::fig4;
use omnisim_suite::ir::taxonomy::classify;
use omnisim_suite::ir::{Design, DesignBuilder, Expr};
use omnisim_suite::omnisim::{
    CompiledOmni, IncrementalOutcome, IncrementalState, OmniSimulator, SimStats,
};
use omnisim_suite::{all_backends, backend, RunConfig, SimReport, SimService, Sweep, SweepMethod};
use std::sync::Arc;
use std::time::Duration;

/// A small Type A producer/consumer design every backend can simulate.
fn type_a_design(n: i64) -> Design {
    let mut d = DesignBuilder::new("conformance");
    let data = d.array("data", (1..=n).collect::<Vec<i64>>());
    let out = d.output("sum");
    let q = d.fifo("q", 2);
    let p = d.function("producer", |m| {
        m.counted_loop("i", n, 1, |b| {
            let i = b.var_expr("i");
            let v = b.array_load(data, i);
            b.fifo_write(q, Expr::var(v));
        });
    });
    let c = d.function("consumer", |m| {
        let acc = m.var("acc");
        m.entry(|b| {
            b.assign(acc, Expr::imm(0));
        });
        m.counted_loop("i", n, 2, |b| {
            let v = b.fifo_read(q);
            b.assign(acc, Expr::var(acc).add(Expr::var(v)));
        });
        m.exit(|b| {
            b.output(out, Expr::var(acc));
        });
    });
    d.dataflow_top("top", [p, c]);
    d.build().unwrap()
}

#[test]
fn every_registered_backend_agrees_on_a_type_a_design() {
    let n = 48;
    let design = type_a_design(n);
    let expected_sum = n * (n + 1) / 2;
    let mut cycle_counts = Vec::new();

    for sim in all_backends() {
        let report = sim
            .simulate(&design)
            .unwrap_or_else(|e| panic!("{} rejected a Type A design: {e}", sim.name()));
        assert_eq!(report.backend, sim.name(), "report names its backend");
        assert!(
            report.outcome.is_completed(),
            "{} did not complete: {:?}",
            sim.name(),
            report.outcome
        );
        assert_eq!(
            report.output("sum"),
            Some(expected_sum),
            "{} got the functional result wrong",
            sim.name()
        );
        let caps = sim.capabilities();
        match report.total_cycles {
            Some(cycles) => {
                assert!(
                    caps.cycle_accurate,
                    "{} reports cycles without claiming cycle accuracy",
                    sim.name()
                );
                cycle_counts.push((sim.name(), cycles));
            }
            None => assert!(
                !caps.cycle_accurate,
                "{} claims cycle accuracy but reported no cycles",
                sim.name()
            ),
        }
    }

    // All cycle-accurate backends agree exactly on Type A designs.
    assert!(
        cycle_counts.len() >= 3,
        "rtl, lightning and omnisim report cycles"
    );
    let (first_name, first_cycles) = cycle_counts[0];
    for (name, cycles) in &cycle_counts[1..] {
        assert_eq!(
            *cycles, first_cycles,
            "{name} and {first_name} disagree on cycle count"
        );
    }
}

#[test]
fn capabilities_predict_type_c_support() {
    let design = fig4::ex5_with_depths(128, 2, 2);
    let class = classify(&design).class;
    for sim in all_backends() {
        let caps = sim.capabilities();
        let result = sim.simulate(&design);
        if sim.name() == "lightning" {
            // The only backend that *rejects* out-of-scope designs.
            assert!(!caps.supports(class));
            let failure = result.expect_err("lightning must reject Type C designs");
            assert!(failure.is_unsupported(), "got {failure:?}");
        } else {
            assert!(result.is_ok(), "{} errored: {:?}", sim.name(), result.err());
        }
    }
}

#[test]
fn incremental_capability_matches_shipped_extras() {
    let design = type_a_design(16);
    for sim in all_backends() {
        let Ok(report) = sim.simulate(&design) else {
            continue;
        };
        if sim.name() == "omnisim" {
            assert!(sim.capabilities().incremental_dse);
            assert!(report.extras.get::<IncrementalState>().is_some());
            assert!(report.extras.get::<SimStats>().is_some());
        }
        if !sim.capabilities().incremental_dse {
            assert!(report.extras.get::<IncrementalState>().is_none());
        }
    }
}

/// The `Sweep` API must reproduce the `fifo_sizing_dse` example's
/// incremental-hit/full-rerun split with identical cycle counts.
#[test]
fn sweep_reproduces_the_manual_dse_workflow() {
    let n = 256;
    let design = fig4::ex5_with_depths(n, 2, 2);
    let depth1_axis = [1usize, 2, 4, 16];
    let depth2_axis = [1usize, 2, 100];

    // The manual workflow the example used before the Sweep API existed.
    let baseline = OmniSimulator::new(&design).run().expect("baseline run");
    let mut manual: Vec<(Vec<usize>, u64, SweepMethod)> = Vec::new();
    for &d1 in &depth1_axis {
        for &d2 in &depth2_axis {
            match baseline.incremental.try_with_depths(&[d1, d2]).unwrap() {
                IncrementalOutcome::Valid { total_cycles } => {
                    manual.push((vec![d1, d2], total_cycles, SweepMethod::Incremental));
                }
                IncrementalOutcome::ConstraintViolated { .. }
                | IncrementalOutcome::DepthInfeasible { .. }
                | IncrementalOutcome::DepthCyclic => {
                    let resized = fig4::ex5_with_depths(n, d1, d2);
                    let full = OmniSimulator::new(&resized).run().unwrap();
                    manual.push((vec![d1, d2], full.total_cycles, SweepMethod::FullResim));
                }
            }
        }
    }

    let sweep = Sweep::new(&design)
        .grid(&[&depth1_axis, &depth2_axis])
        .run()
        .expect("sweep succeeds");

    assert_eq!(sweep.points.len(), manual.len());
    for (point, (depths, cycles, method)) in sweep.points.iter().zip(&manual) {
        assert_eq!(&point.depths, depths);
        assert_eq!(point.total_cycles, *cycles, "depths {depths:?}");
        assert_eq!(point.method, *method, "depths {depths:?}");
    }
    let manual_hits = manual
        .iter()
        .filter(|(_, _, m)| *m == SweepMethod::Incremental)
        .count();
    assert_eq!(sweep.incremental_hits(), manual_hits);
    assert_eq!(sweep.full_resims(), manual.len() - manual_hits);
    assert!(
        sweep.full_resims() > 0,
        "the grid must exercise the fallback"
    );
    assert!(
        sweep.incremental_hits() > 0,
        "the grid must exercise the fast path"
    );
}

/// The observable result fields of a report — everything that must be
/// bit-identical between a fresh `simulate` and a session `run` (timings
/// and extras are run-specific by design).
type ReportResults = (
    String,
    Vec<(String, i64)>,
    Option<u64>,
    Vec<(String, usize)>,
);

fn results_of(report: &SimReport) -> ReportResults {
    (
        format!("{:?}", report.outcome),
        report
            .outputs
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect(),
        report.total_cycles,
        report
            .warnings
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect(),
    )
}

/// Session semantics, claim 1: compile-once/run-twice is bit-identical to
/// two fresh `simulate` calls, on every backend.
#[test]
fn compile_once_run_twice_matches_two_fresh_simulates_on_every_backend() {
    let design = type_a_design(24);
    for sim in all_backends() {
        let fresh_a = results_of(&sim.simulate(&design).unwrap());
        let fresh_b = results_of(&sim.simulate(&design).unwrap());
        assert_eq!(
            fresh_a,
            fresh_b,
            "{} one-shots are deterministic",
            sim.name()
        );

        let compiled = sim.compile(&design).unwrap();
        assert_eq!(compiled.backend(), sim.name());
        let run_a = compiled.run(&RunConfig::default()).unwrap();
        let run_b = compiled.run(&RunConfig::default()).unwrap();
        assert_eq!(
            results_of(&run_a),
            fresh_a,
            "{}: session run diverges from a fresh simulate",
            sim.name()
        );
        assert_eq!(
            results_of(&run_b),
            fresh_a,
            "{}: second session run diverges",
            sim.name()
        );
        // Per-run reports never charge front-end time; the one-shot path
        // folds the compile phase back in, keeping total() end-to-end.
        assert_eq!(
            run_a.timings.front_end,
            Duration::ZERO,
            "{}: runs must not re-pay the front end",
            sim.name()
        );
    }
}

/// Session semantics, claim 2: eight threads hammering one shared
/// `Arc<dyn CompiledSim>` — mixed default and depth-override requests —
/// observe exactly the single-threaded answers.
#[test]
fn concurrent_runs_on_a_shared_artifact_are_deterministic() {
    // Type C fixture so overrides exercise both the incremental path and
    // the full re-simulation fallback concurrently.
    let design = fig4::ex5_with_depths(64, 2, 2);
    for name in ["omnisim", "lightning", "rtl", "csim"] {
        let sim = backend(name).unwrap();
        let design = if name == "lightning" {
            type_a_design(32) // lightning rejects the Type C fixture
        } else {
            design.clone()
        };
        let compiled: Arc<dyn omnisim_suite::CompiledSim> =
            Arc::from(sim.compile(&design).unwrap());
        let configs: Vec<RunConfig> = std::iter::once(RunConfig::default())
            .chain(
                (1..=3).map(|d| RunConfig::new().with_fifo_depths(vec![d * 2; design.fifos.len()])),
            )
            .collect();
        let reference: Vec<_> = configs
            .iter()
            .map(|c| results_of(&compiled.run(c).unwrap()))
            .collect();

        std::thread::scope(|scope| {
            for thread in 0..8 {
                let shared = Arc::clone(&compiled);
                let configs = &configs;
                let reference = &reference;
                scope.spawn(move || {
                    // Each thread walks the configs in a different order.
                    for step in 0..configs.len() {
                        let index = (step + thread) % configs.len();
                        let report = shared.run(&configs[index]).unwrap();
                        assert_eq!(
                            results_of(&report),
                            reference[index],
                            "{name}: thread {thread} step {step} diverged"
                        );
                    }
                });
            }
        });
    }
}

/// Session semantics, claim 3: `RunConfig` depth overrides agree with the
/// incremental ground truth — certified answers match `try_with_depths`
/// bit for bit, uncertified ones match a full re-simulation.
#[test]
fn run_config_depth_overrides_agree_with_try_with_depths() {
    let design = fig4::ex5_with_depths(96, 2, 2);
    let compiled = backend("omnisim").unwrap().compile(&design).unwrap();
    let state = compiled
        .as_any()
        .downcast_ref::<CompiledOmni>()
        .expect("the omnisim artifact")
        .state();
    let baseline_outputs = compiled.run(&RunConfig::default()).unwrap().outputs;

    let mut certified = 0usize;
    let mut resimulated = 0usize;
    for depths in [
        vec![1usize, 1],
        vec![2, 2],
        vec![2, 100],
        vec![4, 16],
        vec![100, 2],
        vec![16, 100],
    ] {
        let run = compiled
            .run(&RunConfig::new().with_fifo_depths(depths.clone()))
            .unwrap();
        match state.try_with_depths(&depths).unwrap() {
            IncrementalOutcome::Valid { total_cycles } => {
                certified += 1;
                assert_eq!(
                    run.total_cycles,
                    Some(total_cycles),
                    "certified cycles diverge at {depths:?}"
                );
                assert_eq!(
                    run.outputs, baseline_outputs,
                    "certified runs replay baseline outputs at {depths:?}"
                );
            }
            _ => {
                resimulated += 1;
                let full = OmniSimulator::new(&design.with_fifo_depths(&depths))
                    .run()
                    .unwrap();
                assert_eq!(
                    run.total_cycles,
                    Some(full.total_cycles),
                    "fallback cycles diverge at {depths:?}"
                );
                assert_eq!(run.outputs, full.outputs, "fallback outputs at {depths:?}");
            }
        }
    }
    assert!(certified > 0, "the grid must exercise the certified path");
    assert!(resimulated > 0, "the grid must exercise the fallback");
}

/// The serving layer: one `SimService` per backend, a shared design, and a
/// mixed batch — all cycle-accurate backends agree, and a pinned
/// single-worker service answers identically to the parallel default.
#[test]
fn sim_service_serves_identical_answers_at_every_worker_count() {
    let design = type_a_design(32);
    let mut cycle_counts: Vec<(String, Option<u64>)> = Vec::new();
    for sim in all_backends() {
        let name = sim.name().to_owned();
        let cycle_accurate = sim.capabilities().cycle_accurate;
        let service = SimService::new(sim);
        let key = service.register(&design).unwrap();
        assert_eq!(service.register(&design).unwrap(), key, "{name}: cache hit");
        assert_eq!(service.compiles(), 1, "{name}: one compile");

        let requests: Vec<_> = (0..6).map(|_| (key, RunConfig::default())).collect();
        let parallel: Vec<_> = service
            .run_batch(&requests)
            .into_iter()
            .map(|r| results_of(&r.unwrap()))
            .collect();
        // Regression: a single-worker service must be answer-identical.
        let single = SimService::new(backend(&name).unwrap()).with_workers(1);
        let key1 = single.register(&design).unwrap();
        let sequential: Vec<_> = single
            .run_batch(
                &(0..6)
                    .map(|_| (key1, RunConfig::default()))
                    .collect::<Vec<_>>(),
            )
            .into_iter()
            .map(|r| results_of(&r.unwrap()))
            .collect();
        assert_eq!(parallel, sequential, "{name}: workers=1 changes answers");
        if cycle_accurate {
            cycle_counts.push((name, parallel[0].2));
        }
    }
    assert!(cycle_counts.len() >= 3);
    for (name, cycles) in &cycle_counts[1..] {
        assert_eq!(
            *cycles, cycle_counts[0].1,
            "{name} and {} disagree through the service",
            cycle_counts[0].0
        );
    }
}

#[test]
fn deadlocks_surface_uniformly_across_cycle_accurate_backends() {
    let design = omnisim_suite::designs::misc::deadlock();
    for name in ["omnisim", "rtl"] {
        let report = backend(name).unwrap().simulate(&design).unwrap();
        assert!(
            report.outcome.is_deadlock(),
            "{name} must detect the deadlock, got {:?}",
            report.outcome
        );
        match &report.outcome {
            omnisim_suite::SimOutcome::Deadlock { blocked } => {
                assert!(!blocked.is_empty(), "{name} must name the blocked tasks");
            }
            _ => unreachable!(),
        }
    }
}
