//! Distributed-tracing conformance: a remote request served over TCP
//! leaves one causally-ordered span tree in the server's flight recorder —
//! client call span → wire decode span → service resolution span (with its
//! hit/warm/compile outcome) → backend run span (with the engine run path
//! and counters) — fetched back over the wire (`Client::traces`), with
//! parent/child nesting, non-decreasing timestamps, and a lossless Chrome
//! trace-event export.

use omnisim_suite::designs::typea;
use omnisim_suite::obs::{parse_chrome_trace, to_chrome_trace, SpanRecord, Trace};
use omnisim_suite::serve::{Client, Server, ServerHandle, SimService, TraceConfig, Tracer};
use omnisim_suite::{backend, RunConfig};

struct ServerFixture {
    handle: ServerHandle,
    join: std::thread::JoinHandle<()>,
}

fn start_traced_server() -> (Tracer, ServerFixture) {
    let tracer = Tracer::new(TraceConfig::default());
    let service = SimService::new(backend("omnisim").unwrap()).with_tracer(tracer.clone());
    let server = Server::bind(service, ("127.0.0.1", 0)).unwrap();
    let handle = server.handle();
    let join = std::thread::spawn(move || server.serve().unwrap());
    (tracer, ServerFixture { handle, join })
}

/// Asserts `child` nests inside `parent`: linked by span ID, started no
/// earlier, finished no later.
fn assert_nested(parent: &SpanRecord, child: &SpanRecord) {
    assert_eq!(
        child.parent,
        Some(parent.span_id),
        "{} must be a child of {}",
        child.name,
        parent.name
    );
    assert_eq!(child.trace_id, parent.trace_id);
    assert!(
        parent.start_nanos <= child.start_nanos,
        "{} starts before its parent {}",
        child.name,
        parent.name
    );
    assert!(
        child.end_nanos <= parent.end_nanos,
        "{} outlives its parent {}",
        child.name,
        parent.name
    );
}

#[test]
fn remote_request_trace_carries_the_full_causal_chain() {
    let (_server_tracer, fixture) = start_traced_server();
    let client_tracer = Tracer::new(TraceConfig::default());
    let mut client = Client::connect(fixture.handle.addr())
        .unwrap()
        .with_tracer(client_tracer.clone());

    let design = typea::vecadd_stream(24, 2);
    let key = client.register(&design).unwrap();
    let results = client.run_batch(&[(key, RunConfig::default())]).unwrap();
    assert_eq!(results.len(), 1);
    assert!(results[0].is_ok());

    let traces: Vec<Trace> = client.traces().unwrap();
    let client_spans = client_tracer.recent_spans();

    // --- The register call's tree: client → wire → service resolution. ---
    let client_register = client_spans
        .iter()
        .find(|s| s.name == "client_register")
        .expect("client traced its register call");
    let register_trace: &Trace = traces
        .iter()
        .find(|t| t.trace_id == client_register.trace_id)
        .expect("the server kept the register call's trace");
    let wire = register_trace.find("wire_request").unwrap();
    // The wire span joined the client's span as remote parent.
    assert_eq!(wire.parent, Some(client_register.span_id));
    assert_eq!(wire.attr("type").and_then(|v| v.as_str()), Some("register"));
    let resolve = register_trace.find("service_register").unwrap();
    assert_nested(wire, resolve);
    assert_eq!(
        resolve.attr("outcome").and_then(|v| v.as_str()),
        Some("compile"),
        "first registration compiles"
    );

    // --- The run call's tree: client → wire → batch → run → backend. ---
    let client_batch = client_spans
        .iter()
        .find(|s| s.name == "client_run_batch")
        .expect("client traced its batch call");
    let run_trace = traces
        .iter()
        .find(|t| t.trace_id == client_batch.trace_id)
        .expect("the server kept the batch call's trace");
    let wire = run_trace.find("wire_request").unwrap();
    assert_eq!(wire.parent, Some(client_batch.span_id));
    assert_eq!(
        wire.attr("type").and_then(|v| v.as_str()),
        Some("run_batch")
    );
    let batch = run_trace.find("service_run_batch").unwrap();
    assert_nested(wire, batch);
    let run = run_trace.find("service_run").unwrap();
    assert_nested(batch, run);
    assert_eq!(run.attr("outcome").and_then(|v| v.as_str()), Some("ok"));
    let backend_run = run_trace.find("backend_run").unwrap();
    assert_nested(run, backend_run);
    assert_eq!(
        backend_run.attr("backend").and_then(|v| v.as_str()),
        Some("omnisim")
    );
    assert!(
        backend_run.attr("path").is_some(),
        "backend_run records which engine path answered the run"
    );
    assert!(
        backend_run.attr("baseline_replays").is_some(),
        "backend_run scrapes the engine's counters into attributes"
    );

    // The client's own span brackets the whole server-side tree in time.
    assert!(client_batch.start_nanos <= wire.start_nanos);
    assert!(wire.end_nanos <= client_batch.end_nanos);

    // Trace spans come back ordered by start time: non-decreasing stamps.
    for window in run_trace.spans.windows(2) {
        assert!(window[0].start_nanos <= window[1].start_nanos);
    }
    for span in &run_trace.spans {
        assert!(span.start_nanos <= span.end_nanos);
    }

    // The merged client+server view exports to Chrome trace JSON and
    // parses back losslessly.
    let mut merged: Vec<SpanRecord> = run_trace.spans.clone();
    merged.push(client_batch.clone());
    let json = to_chrome_trace(&merged);
    assert_eq!(parse_chrome_trace(&json).unwrap(), merged);

    client.shutdown().unwrap();
    fixture.join.join().unwrap();
}

#[test]
fn second_registration_resolves_as_a_cache_hit_in_its_trace() {
    let (server_tracer, fixture) = start_traced_server();
    let mut client = Client::connect(fixture.handle.addr())
        .unwrap()
        .with_tracer(Tracer::new(TraceConfig::default()));

    let design = typea::fir_filter(32, 4);
    let key = client.register(&design).unwrap();
    assert_eq!(client.register(&design).unwrap(), key);

    let traces = server_tracer.recent_traces();
    let outcomes: Vec<&str> = traces
        .iter()
        .filter_map(|t| t.find("service_register"))
        .filter_map(|s| s.attr("outcome"))
        .filter_map(|v| v.as_str())
        .collect();
    assert!(
        outcomes.contains(&"compile") && outcomes.contains(&"hit"),
        "expected a compile then a hit, got {outcomes:?}"
    );

    client.shutdown().unwrap();
    fixture.join.join().unwrap();
}
