//! Persistence-tier conformance: every serializable backend's compiled
//! artifact round-trips through `encode` / `decode_artifact` bit-identically
//! (including the engine's depth-override re-finalize and resim-fallback
//! paths and deadlock baselines), encodings are canonical across
//! recompiles (the store's content-hash keys depend on it), the
//! `ArtifactStore` + `SimService` warm-start cycle survives truncated /
//! corrupted / version-skewed artifacts by falling back to a fresh compile,
//! and a TCP client/server batch matches an in-process
//! `SimService::run_batch` exactly — timings and all: the wire encodes the
//! server-side `SimTimings`, and `Client::metrics` agrees with the
//! server's own registry.

use omnisim_suite::designs::{fig4, misc, typea};
use omnisim_suite::ir::Design;
use omnisim_suite::serve::wire::WireReport;
use omnisim_suite::serve::{design_key, ArtifactStore, Client, Server, SimService};
use omnisim_suite::{all_backends, backend, RunConfig, SimReport};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

fn temp_dir(tag: &str) -> PathBuf {
    static UNIQUE: AtomicUsize = AtomicUsize::new(0);
    let n = UNIQUE.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("omnisim-artifact-{tag}-{}-{n}", std::process::id()))
}

/// The process-independent projection used to compare reports: outcome,
/// outputs, cycle count and warnings (wall-clock timings legitimately
/// differ between an original and a decoded artifact, so they are zeroed).
fn fingerprint(report: &SimReport) -> WireReport {
    WireReport::from(report).without_timings()
}

/// Run configs that exercise each backend's per-run knobs against `design`.
fn probe_configs(design: &Design) -> Vec<RunConfig> {
    let fifos = design.fifos.len();
    let mut configs = vec![RunConfig::default(), RunConfig::new().with_fuel(100_000)];
    if fifos > 0 {
        for depth in [1usize, 3, 64] {
            configs.push(RunConfig::new().with_fifo_depths(vec![depth; fifos]));
        }
    }
    configs.push(RunConfig::new().with_max_cycles(25));
    configs
}

#[test]
fn artifacts_round_trip_bit_identically_on_every_backend() {
    let fixtures: Vec<(&str, Design)> = vec![
        ("vecadd", typea::vecadd_stream(32, 2)),
        ("fir", typea::fir_filter(24, 4)),
    ];
    for sim in all_backends() {
        assert!(
            sim.capabilities().serializable_artifact,
            "{}: every workspace backend persists",
            sim.name()
        );
        for (label, design) in &fixtures {
            let compiled = sim.compile(design).unwrap();
            let bytes = compiled.encode().expect("serializable backends encode");
            let decoded = sim.decode_artifact(design, &bytes).unwrap();
            assert_eq!(decoded.backend(), sim.name());
            assert_eq!(decoded.design_name(), design.name);
            for config in probe_configs(design) {
                let original = compiled.run(&config);
                let revived = decoded.run(&config);
                match (original, revived) {
                    (Ok(a), Ok(b)) => assert_eq!(
                        fingerprint(&a),
                        fingerprint(&b),
                        "{}/{label}: decoded artifact diverged on {config:?}",
                        sim.name()
                    ),
                    (Err(a), Err(b)) => assert_eq!(
                        a.to_string(),
                        b.to_string(),
                        "{}/{label}: decoded artifact failed differently",
                        sim.name()
                    ),
                    (a, b) => panic!(
                        "{}/{label}: original {a:?} vs decoded {b:?} on {config:?}",
                        sim.name()
                    ),
                }
            }
            // The decoded artifact re-encodes to the same bytes, so a
            // store never churns on load/save cycles.
            assert_eq!(
                decoded.encode().unwrap(),
                bytes,
                "{}/{label}: re-encode must be stable",
                sim.name()
            );
        }
    }
}

/// The engine's hard paths survive the round trip: Type C baselines whose
/// depth overrides re-finalize incrementally, overrides that flip recorded
/// constraints (transparent re-simulation fallback), and deadlocked
/// baselines.
#[test]
fn engine_roundtrip_covers_refinalize_resim_and_deadlock_paths() {
    let sim = backend("omnisim").unwrap();

    // Type C: non-blocking reads; tight depth overrides flip constraint
    // verdicts and force the resim fallback, wide ones re-finalize.
    let design = fig4::ex5_with_depths(48, 2, 2);
    let compiled = sim.compile(&design).unwrap();
    let decoded = sim
        .decode_artifact(&design, &compiled.encode().unwrap())
        .unwrap();
    let fifos = design.fifos.len();
    for depth in 1..=10usize {
        let config = RunConfig::new().with_fifo_depths(vec![depth; fifos]);
        let original = compiled.run(&config).unwrap();
        let revived = decoded.run(&config).unwrap();
        assert_eq!(
            fingerprint(&original),
            fingerprint(&revived),
            "depth {depth} diverged after decode"
        );
    }

    // A deadlocked baseline (stalled-time graph, blocked tasks) must
    // survive encoding too.
    let deadlock = misc::deadlock();
    let compiled = sim.compile(&deadlock).unwrap();
    let bytes = compiled.encode().unwrap();
    let decoded = sim.decode_artifact(&deadlock, &bytes).unwrap();
    let original = compiled.run(&RunConfig::default()).unwrap();
    let revived = decoded.run(&RunConfig::default()).unwrap();
    assert!(original.outcome.is_deadlock());
    assert_eq!(fingerprint(&original), fingerprint(&revived));
}

/// Compiling the same design twice yields byte-identical encodings, even
/// though the engine assigns event-graph node IDs in scheduler-dependent
/// arrival order — the canonicalization pass must erase that (and with it
/// the constraint-recording-order nondeterminism noted in the ROADMAP).
#[test]
fn encodings_are_canonical_across_independent_compiles() {
    let fixtures: Vec<Design> = vec![
        typea::vecadd_stream(48, 2),
        typea::dataflow_accumulators(32, 4),
        fig4::ex5_with_depths(48, 2, 2),
        misc::multicore(4, 16),
    ];
    for sim in all_backends() {
        for design in &fixtures {
            let Ok(first) = sim.compile(design) else {
                continue; // lightning rejects Type C fixtures
            };
            let reference = first.encode().unwrap();
            // Several recompiles: cross-thread arrival order varies from
            // run to run, the canonical encoding must not.
            for attempt in 0..4 {
                let again = sim.compile(design).unwrap().encode().unwrap();
                assert_eq!(
                    again,
                    reference,
                    "{}/{}: attempt {attempt} encoded differently",
                    sim.name(),
                    design.name
                );
            }
        }
    }
}

/// Corrupted artifact bytes must never panic a decoder — truncations and
/// bit flips all surface as clean failures.
#[test]
fn corrupted_artifacts_fail_cleanly_on_every_backend() {
    let design = typea::vecadd_stream(16, 2);
    for sim in all_backends() {
        let bytes = sim.compile(&design).unwrap().encode().unwrap();
        assert!(sim.decode_artifact(&design, &[]).is_err());
        for len in (0..bytes.len()).step_by(7) {
            assert!(
                sim.decode_artifact(&design, &bytes[..len]).is_err(),
                "{}: truncation to {len} bytes must fail",
                sim.name()
            );
        }
        for index in (0..bytes.len()).step_by(11) {
            let mut tampered = bytes.clone();
            tampered[index] ^= 0x5a;
            // Flips are rejected (checksum, magic, version, or payload
            // validation) — decoding must never panic or hang.
            let _ = sim.decode_artifact(&design, &tampered);
        }
        // An artifact for a different design must not decode into this one
        // (the engine's codec trusts the store's content-hash keying, so
        // only name-guarded backends reject here; none may panic).
        let other = typea::fir_filter(24, 4);
        let other_bytes = sim.compile(&other).unwrap().encode().unwrap();
        let _ = sim.decode_artifact(&design, &other_bytes);
    }
}

#[test]
fn store_warm_starts_and_survives_bad_artifacts() {
    let dir = temp_dir("failures");
    let design = typea::vecadd_stream(32, 2);
    let key = design_key(&design);
    let make_service = || {
        SimService::new(backend("omnisim").unwrap()).with_store(ArtifactStore::open(&dir).unwrap())
    };

    // Cold start: compiles and persists.
    let cold = make_service();
    assert_eq!(cold.register(&design).unwrap(), key);
    assert_eq!((cold.compiles(), cold.warm_starts()), (1, 0));
    let baseline = fingerprint(&cold.run(key, &RunConfig::default()).unwrap());
    drop(cold);

    // Warm start in a "new process": decoded, not compiled.
    let warm = make_service();
    assert_eq!(warm.register(&design).unwrap(), key);
    assert_eq!((warm.compiles(), warm.warm_starts()), (0, 1));
    assert_eq!(warm.store().unwrap().hits(), 1);
    assert_eq!(
        fingerprint(&warm.run(key, &RunConfig::default()).unwrap()),
        baseline,
        "warm-started artifact must answer identically"
    );
    drop(warm);

    let artifact_path = dir.join("omnisim").join(format!("{:016x}.art", key.raw()));
    let good = std::fs::read(&artifact_path).unwrap();

    // Each kind of bad persisted artifact falls back to a fresh compile
    // and overwrites the bad entry, so the *next* register warm-starts.
    let truncated = good[..good.len() / 2].to_vec();
    let mut corrupted = good.clone();
    let mid = corrupted.len() / 2;
    corrupted[mid] ^= 0xff;
    let mut version_skewed = good.clone();
    version_skewed[4] = 0x7f; // version field of the frame header
    for (label, bad) in [
        ("truncated", truncated),
        ("corrupted", corrupted),
        ("version-skewed", version_skewed),
    ] {
        std::fs::write(&artifact_path, &bad).unwrap();
        let service = make_service();
        assert_eq!(service.register(&design).unwrap(), key, "{label}");
        assert_eq!(
            (service.compiles(), service.warm_starts()),
            (1, 0),
            "{label}: bad artifact must fall back to compiling"
        );
        assert_eq!(
            fingerprint(&service.run(key, &RunConfig::default()).unwrap()),
            baseline,
            "{label}: recompiled artifact must answer identically"
        );
        drop(service);
        assert_eq!(
            std::fs::read(&artifact_path).unwrap(),
            good,
            "{label}: bad entry must be overwritten with a good encoding"
        );
        let healed = make_service();
        healed.register(&design).unwrap();
        assert_eq!(
            (healed.compiles(), healed.warm_starts()),
            (0, 1),
            "{label}: store must be healed for the next process"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn registry_eviction_falls_back_to_disk_not_recompilation() {
    let dir = temp_dir("evict");
    let service = SimService::new(backend("lightning").unwrap())
        .with_capacity(1)
        .with_store(ArtifactStore::open(&dir).unwrap());
    let first = typea::vecadd_stream(16, 2);
    let second = typea::vecadd_stream(17, 2);
    let key = service.register(&first).unwrap();
    service.register(&second).unwrap(); // evicts `first` from memory
    assert_eq!(service.registry_evictions(), 1);
    assert_eq!(service.len(), 1);
    // Re-registering the evicted design decodes from disk.
    assert_eq!(service.register(&first).unwrap(), key);
    assert_eq!(service.compiles(), 2, "no recompilation");
    assert_eq!(service.warm_starts(), 1);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A client/server exchange over TCP must match `SimService::run_batch`
/// in the same process, result for result.
#[test]
fn remote_batches_match_in_process_batches_exactly() {
    let designs = [
        typea::vecadd_stream(24, 2),
        typea::fir_filter(16, 4),
        fig4::ex5_with_depths(24, 2, 2),
    ];

    // In-process reference.
    let local = SimService::new(backend("omnisim").unwrap());
    let keys: Vec<_> = designs.iter().map(|d| local.register(d).unwrap()).collect();
    let mut requests = Vec::new();
    for (i, key) in keys.iter().cycle().take(12).enumerate() {
        let design = &designs[i % designs.len()];
        let config = if i % 2 == 0 {
            RunConfig::default()
        } else {
            RunConfig::new().with_fifo_depths(vec![1 + i % 5; design.fifos.len()])
        };
        requests.push((*key, config));
    }
    let expected: Vec<Result<WireReport, String>> = local
        .run_batch(&requests)
        .iter()
        .map(|r| match r {
            Ok(report) => Ok(fingerprint(report)),
            Err(failure) => Err(failure.to_string()),
        })
        .collect();

    // The same batch through the TCP tier.
    let server = Server::bind(
        SimService::new(backend("omnisim").unwrap()),
        ("127.0.0.1", 0),
    )
    .unwrap();
    let handle = server.handle();
    let serving = std::thread::spawn(move || server.serve().unwrap());
    let mut client = Client::connect(handle.addr()).unwrap();
    for design in &designs {
        client.register(design).unwrap();
    }
    let remote = client.run_batch(&requests).unwrap();
    let normalized: Vec<Result<WireReport, String>> = remote
        .iter()
        .cloned()
        .map(|r| r.map(WireReport::without_timings))
        .collect();
    assert_eq!(
        normalized, expected,
        "remote batch must match in-process batch"
    );

    // Remote reports carry the *server's* per-phase timings, so a remote
    // caller sees the same field-for-field breakdown an in-process one
    // does. Every successful run did real work, so its timings are
    // non-zero (lightning/omnisim report under `finalize`; at least one
    // phase must be populated).
    for result in &remote {
        let report = result.as_ref().expect("batch succeeded");
        assert!(
            report.timings.total() > std::time::Duration::ZERO,
            "wire report arrived with zeroed timings"
        );
    }

    client.shutdown().unwrap();
    serving.join().unwrap();
}

/// `Client::metrics` is the server's own registry, verbatim: after a
/// deterministic batch, the remote snapshot's service counters agree with
/// what the server-side `SimService` reports in-process.
#[test]
fn remote_metrics_scrape_agrees_with_server_registry() {
    let designs = [typea::vecadd_stream(24, 2), typea::fir_filter(16, 4)];
    let service = SimService::new(backend("omnisim").unwrap());
    let registry = std::sync::Arc::clone(service.metrics());
    let server = Server::bind(service, ("127.0.0.1", 0)).unwrap();
    let handle = server.handle();
    let serving = std::thread::spawn(move || server.serve().unwrap());

    let mut client = Client::connect(handle.addr()).unwrap();
    let keys: Vec<_> = designs
        .iter()
        .map(|d| client.register(d).unwrap())
        .collect();
    client.register(&designs[0]).unwrap(); // one cache hit
    let requests: Vec<_> = keys
        .iter()
        .cycle()
        .take(6)
        .map(|key| (*key, RunConfig::default()))
        .collect();
    let results = client.run_batch(&requests).unwrap();
    assert!(results.iter().all(|r| r.is_ok()));

    // Scrape over the wire first, then freeze the local registry: counters
    // are monotone, so remote <= local would catch drift in either
    // direction given no traffic in between (and there is none — the
    // client is idle). Histograms carry wall-clock and the local snapshot
    // includes the scrape request itself, so the agreement check covers
    // the deterministic counter/gauge core.
    let remote = client.metrics().unwrap();
    let local = registry.snapshot();
    let counters = |snapshot: &omnisim_suite::obs::MetricsSnapshot| {
        snapshot
            .counters()
            .into_iter()
            .filter(|(id, _)| id.name.starts_with("service_") || id.name.starts_with("store_"))
            .collect::<Vec<_>>()
    };
    assert_eq!(
        counters(&remote),
        counters(&local),
        "remote scrape disagrees with the server's in-process registry"
    );
    assert_eq!(
        remote.counter("service_runs_total"),
        Some(6),
        "six batch runs must be visible remotely"
    );
    assert_eq!(
        remote.counter_with("service_register_total", &[("outcome", "hit")]),
        Some(1)
    );
    assert_eq!(
        remote.counter_with("service_register_total", &[("outcome", "compile")]),
        Some(2)
    );
    // The wire layer's own traffic is in the scrape too.
    assert_eq!(
        remote.counter_with("wire_requests_total", &[("type", "register")]),
        Some(3)
    );

    client.shutdown().unwrap();
    serving.join().unwrap();
}
