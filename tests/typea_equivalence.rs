//! Type A equivalence: on LightningSim's home turf (Table 5 designs), the
//! OmniSim engine, the LightningSim baseline and the cycle-stepped reference
//! simulator must agree on functional outputs and cycle counts.

use omnisim::OmniSimulator;
use omnisim_designs::typea_suite;
use omnisim_lightning::LightningSimulator;
use omnisim_rtlsim::RtlSimulator;

#[test]
fn omnisim_and_lightningsim_agree_on_the_typea_suite() {
    for bench in typea_suite() {
        // The largest designs are covered by the benchmarks; keep tests fast.
        if !bench.reference_feasible {
            continue;
        }
        let mut lightning = LightningSimulator::new(&bench.design)
            .unwrap_or_else(|e| panic!("{} rejected by lightning: {e}", bench.name));
        let lightning_report = lightning
            .simulate()
            .unwrap_or_else(|e| panic!("lightning failed on {}: {e}", bench.name));
        let omni_report = OmniSimulator::new(&bench.design)
            .run()
            .unwrap_or_else(|e| panic!("omnisim failed on {}: {e}", bench.name));

        assert_eq!(
            omni_report.outputs, lightning_report.outputs,
            "outputs diverge on {}",
            bench.name
        );
        assert_eq!(
            omni_report.total_cycles, lightning_report.total_cycles,
            "cycle counts diverge on {}",
            bench.name
        );
    }
}

#[test]
fn graph_based_simulators_match_the_reference_on_small_typea_designs() {
    // A hand-picked subset that is cheap enough for per-cycle simulation.
    let interesting = [
        "fir_filter",
        "vecadd_stream",
        "accumulators_dataflow",
        "parallel_loops",
        "matrix_multiplication",
        "axi4_master",
        "imperfect_loops",
        "loop_max_bound",
    ];
    for bench in typea_suite() {
        if !interesting.contains(&bench.name) {
            continue;
        }
        let reference = RtlSimulator::new(&bench.design)
            .run()
            .unwrap_or_else(|e| panic!("reference failed on {}: {e}", bench.name));
        let omni = OmniSimulator::new(&bench.design).run().unwrap();
        let mut lightning = LightningSimulator::new(&bench.design).unwrap();
        let light = lightning.simulate().unwrap();

        assert_eq!(omni.outputs, reference.outputs, "{} outputs", bench.name);
        assert_eq!(light.outputs, reference.outputs, "{} outputs", bench.name);
        assert_eq!(
            omni.total_cycles, reference.total_cycles,
            "{} omnisim cycles",
            bench.name
        );
        assert_eq!(
            light.total_cycles, reference.total_cycles,
            "{} lightning cycles",
            bench.name
        );
    }
}

#[test]
fn dead_check_elision_does_not_change_results() {
    use omnisim::SimConfig;
    for bench in omnisim_designs::table4_designs_with_n(128) {
        if bench.name == "deadlock" {
            continue;
        }
        let with = OmniSimulator::with_config(&bench.design, SimConfig::default())
            .run()
            .unwrap();
        let without = OmniSimulator::with_config(
            &bench.design,
            SimConfig::default().with_dead_check_elision(false),
        )
        .run()
        .unwrap();
        assert_eq!(with.outputs, without.outputs, "{}", bench.name);
        assert_eq!(with.total_cycles, without.total_cycles, "{}", bench.name);
    }
}
