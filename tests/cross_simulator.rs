//! Cross-simulator integration tests: every Table 4 design is run through
//! the cycle-stepped reference simulator (co-sim stand-in), OmniSim and naive
//! C simulation — all through the unified [`Simulator`] API — and the
//! results are cross-checked. This regenerates, in test form, the claims
//! behind Table 3 and Fig. 8(a) of the paper.

use omnisim_suite::designs::table4_designs_with_n;
use omnisim_suite::{backend, SimReport, Simulator};

/// Workload size used for integration testing (smaller than the benchmark
/// default so the cycle-stepped reference stays fast).
const TEST_N: i64 = 256;

/// Maximum relative cycle-count error tolerated between OmniSim and the
/// reference simulator, mirroring the ≤0.2% deviations of Fig. 8(a).
const CYCLE_TOLERANCE: f64 = 0.005;

fn run(sim: &dyn Simulator, design: &omnisim_suite::ir::Design, name: &str) -> SimReport {
    sim.simulate(design)
        .unwrap_or_else(|e| panic!("{} failed on {name}: {e}", sim.name()))
}

#[test]
fn omnisim_matches_reference_functionally_on_every_table4_design() {
    let reference_sim = backend("rtl").unwrap();
    let omni_sim = backend("omnisim").unwrap();
    for bench in table4_designs_with_n(TEST_N) {
        let reference = run(reference_sim.as_ref(), &bench.design, bench.name);
        let report = run(omni_sim.as_ref(), &bench.design, bench.name);

        if bench.name == "deadlock" {
            assert!(
                reference.outcome.is_deadlock(),
                "reference must deadlock on {}",
                bench.name
            );
            assert!(
                report.outcome.is_deadlock(),
                "omnisim must deadlock on {}",
                bench.name
            );
            continue;
        }

        assert!(
            reference.outcome.is_completed(),
            "reference did not complete on {}: {:?}",
            bench.name,
            reference.outcome
        );
        assert!(
            report.outcome.is_completed(),
            "omnisim did not complete on {}: {:?}",
            bench.name,
            report.outcome
        );
        assert_eq!(
            report.outputs, reference.outputs,
            "functional outputs diverge on {}",
            bench.name
        );
    }
}

#[test]
fn omnisim_cycle_counts_track_the_reference() {
    let reference_sim = backend("rtl").unwrap();
    let omni_sim = backend("omnisim").unwrap();
    for bench in table4_designs_with_n(TEST_N) {
        if bench.name == "deadlock" {
            continue;
        }
        let reference = run(reference_sim.as_ref(), &bench.design, bench.name);
        let report = run(omni_sim.as_ref(), &bench.design, bench.name);
        let reference_cycles = reference.total_cycles.expect("reference is cycle-accurate");
        let omnisim_cycles = report.total_cycles.expect("omnisim is cycle-accurate");
        let error =
            (omnisim_cycles as f64 - reference_cycles as f64).abs() / reference_cycles as f64;
        assert!(
            error <= CYCLE_TOLERANCE,
            "{}: omnisim {} vs reference {} cycles ({:.3}% error)",
            bench.name,
            omnisim_cycles,
            reference_cycles,
            error * 100.0
        );
    }
}

#[test]
fn csim_fails_to_reproduce_type_bc_behaviour() {
    let csim_sim = backend("csim").unwrap();
    let reference_sim = backend("rtl").unwrap();
    let mut wrong_or_crashed = 0usize;
    let mut total = 0usize;
    for bench in table4_designs_with_n(TEST_N) {
        let c = run(csim_sim.as_ref(), &bench.design, bench.name);
        assert_eq!(c.total_cycles, None, "C sim must not claim cycle accuracy");
        if bench.name == "deadlock" {
            // C simulation "completes" with warnings on the deadlock design;
            // the reference deadlocks, so there is nothing to compare.
            assert!(
                c.warning_count() > 0,
                "deadlock design must warn under C sim"
            );
            continue;
        }
        total += 1;
        let reference = run(reference_sim.as_ref(), &bench.design, bench.name);
        let differs = !c.outcome.is_completed() || c.outputs != reference.outputs;
        if differs {
            wrong_or_crashed += 1;
        }
    }
    assert!(
        wrong_or_crashed * 10 >= total * 8,
        "C simulation should get most Type B/C designs wrong ({wrong_or_crashed}/{total})"
    );
}

#[test]
fn csim_crashes_with_sigsegv_on_done_signal_producers() {
    let csim_sim = backend("csim").unwrap();
    for bench in table4_designs_with_n(TEST_N) {
        if matches!(bench.name, "fig4_ex2" | "fig4_ex4a_d" | "fig4_ex4b_d") {
            let c = run(csim_sim.as_ref(), &bench.design, bench.name);
            assert!(
                c.outcome.is_crashed(),
                "{} must crash under sequential C simulation",
                bench.name
            );
            assert!(
                c.outcome.describe().contains("SIGSEGV"),
                "{} should fail with a segmentation fault, got: {}",
                bench.name,
                c.outcome.describe()
            );
        }
    }
}

#[test]
fn fig2_timer_counts_real_hardware_cycles() {
    let bench = table4_designs_with_n(TEST_N)
        .into_iter()
        .find(|b| b.name == "fig2_timer")
        .unwrap();
    let reference = run(backend("rtl").unwrap().as_ref(), &bench.design, bench.name);
    let report = run(
        backend("omnisim").unwrap().as_ref(),
        &bench.design,
        bench.name,
    );
    let c = run(backend("csim").unwrap().as_ref(), &bench.design, bench.name);

    let reference_count = reference.output("timer_cycles").unwrap();
    assert!(
        reference_count > 0,
        "the timer must observe a non-zero wait"
    );
    assert_eq!(report.output("timer_cycles"), Some(reference_count));
    assert_eq!(
        c.output("timer_cycles"),
        Some(0),
        "C simulation sees the result immediately and counts zero cycles"
    );
}

#[test]
fn omnisim_reports_are_deterministic_across_runs() {
    let omni_sim = backend("omnisim").unwrap();
    for bench in table4_designs_with_n(64) {
        let first = run(omni_sim.as_ref(), &bench.design, bench.name);
        for _ in 0..3 {
            let again = run(omni_sim.as_ref(), &bench.design, bench.name);
            assert_eq!(again.outputs, first.outputs, "{} outputs", bench.name);
            assert_eq!(
                again.total_cycles, first.total_cycles,
                "{} cycles",
                bench.name
            );
        }
    }
}
