//! Fuzzing the DSE inverse query: `min_depths` tightness on generated
//! designs.
//!
//! `SweepPlan::min_depths` binary-searches, per FIFO, the smallest depth
//! whose *certified* latency meets a target (holding the other FIFOs at
//! their baseline anchors). On Type A designs the plan is exact — there are
//! no non-blocking constraints that could flip — so the certificate has a
//! ground truth this suite checks with full re-simulations on 240 random
//! designs (plain Type A pipelines plus the multi-rate preset, whose
//! surpluses and rate skews produce infeasible and cyclic boundary probes):
//!
//! * **soundness** — every certified per-FIFO minimum, applied with the
//!   other FIFOs at their anchors, completes within the target;
//! * **tightness** — one depth shallower either certifies a latency above
//!   the target that full re-simulation reproduces exactly, or is
//!   infeasible/cyclic and full re-simulation confirms the resized design
//!   does not complete.

use omnisim_suite::dse::SweepPlan;
use omnisim_suite::gen::{generate, GenConfig};
use omnisim_suite::ir::DesignClass;
use omnisim_suite::omnisim::{IncrementalOutcome, OmniSimulator};

const DESIGNS_PER_PRESET: u64 = 120;
const MAX_DEPTH: usize = 12;

struct TightnessStats {
    designs: usize,
    searches: usize,
    minima: usize,
    boundary_resims: usize,
    infeasible_boundaries: usize,
}

fn check_tightness(preset: &GenConfig, seeds: std::ops::Range<u64>) -> TightnessStats {
    let mut stats = TightnessStats {
        designs: 0,
        searches: 0,
        minima: 0,
        boundary_resims: 0,
        infeasible_boundaries: 0,
    };
    for seed in seeds {
        let g = generate(preset, seed);
        assert_eq!(g.class, DesignClass::TypeA, "seed {seed}");
        if g.design.fifos.is_empty() {
            continue;
        }
        let baseline = OmniSimulator::new(&g.design).run().unwrap();
        if !baseline.outcome.is_completed() {
            // Multi-rate designs can deadlock on undersized FIFOs; the
            // inverse query is only meaningful from a completed anchor.
            continue;
        }
        stats.designs += 1;
        let plan = SweepPlan::compile(&baseline.incremental).unwrap();
        // The baseline latency is always reachable; every fourth design
        // also searches a slacker target to move the boundary.
        let mut targets = vec![baseline.total_cycles];
        if seed % 4 == 0 {
            targets.push(baseline.total_cycles + 8);
        }
        for target in targets {
            stats.searches += 1;
            let md = plan.min_depths(target, MAX_DEPTH).unwrap();
            // The *joint* minima may stall more than any single probe did
            // (documented on `MinDepthsReport::combined`) — but whatever the
            // combined verdict certifies must match ground truth.
            if let IncrementalOutcome::Valid { total_cycles } = md.combined {
                let joint = OmniSimulator::new(&g.design.with_fifo_depths(&md.depths))
                    .run()
                    .unwrap();
                assert!(
                    joint.outcome.is_completed() && joint.total_cycles == total_cycles,
                    "seed {seed}: combined certificate {total_cycles} diverges from ground \
                     truth {} (completed: {}) at {:?}",
                    joint.total_cycles,
                    joint.outcome.is_completed(),
                    md.depths
                );
            }
            let anchors: Vec<usize> = plan
                .original_depths()
                .iter()
                .map(|&d| d.clamp(1, MAX_DEPTH))
                .collect();
            let mut eval = plan.evaluator();
            for (f, min) in md.per_fifo.iter().enumerate() {
                let Some(min) = *min else { continue };
                stats.minima += 1;
                let mut probe = anchors.clone();
                probe[f] = min;
                let certified = OmniSimulator::new(&g.design.with_fifo_depths(&probe))
                    .run()
                    .unwrap();
                assert!(
                    certified.outcome.is_completed() && certified.total_cycles <= target,
                    "seed {seed} fifo {f}: certified minimum {min} gives {} cycles \
                     (completed: {}) against target {target}",
                    certified.total_cycles,
                    certified.outcome.is_completed()
                );
                if min == 1 {
                    continue;
                }
                // One depth shallower must certifiably fail.
                probe[f] = min - 1;
                stats.boundary_resims += 1;
                let shallower = OmniSimulator::new(&g.design.with_fifo_depths(&probe))
                    .run()
                    .unwrap();
                match eval.evaluate(&probe).unwrap() {
                    IncrementalOutcome::Valid { total_cycles } => {
                        assert!(
                            total_cycles > target,
                            "seed {seed} fifo {f}: plan certifies {total_cycles} <= {target} \
                             one depth below the reported minimum {min}"
                        );
                        assert!(
                            shallower.outcome.is_completed()
                                && shallower.total_cycles == total_cycles,
                            "seed {seed} fifo {f}: boundary certificate {total_cycles} diverges \
                             from ground truth {} (completed: {})",
                            shallower.total_cycles,
                            shallower.outcome.is_completed()
                        );
                    }
                    IncrementalOutcome::DepthInfeasible { .. }
                    | IncrementalOutcome::DepthCyclic => {
                        stats.infeasible_boundaries += 1;
                        assert!(
                            !shallower.outcome.is_completed(),
                            "seed {seed} fifo {f}: plan calls depth {} infeasible but the \
                             resized design completes",
                            min - 1
                        );
                    }
                    IncrementalOutcome::ConstraintViolated { constraint } => panic!(
                        "seed {seed} fifo {f}: constraint {constraint} flipped on a Type A \
                         design, which records no non-blocking constraints"
                    ),
                }
            }
        }
    }
    stats
}

#[test]
fn min_depths_is_tight_on_random_type_a_pipelines() {
    let stats = check_tightness(&GenConfig::type_a(), 0..DESIGNS_PER_PRESET);
    assert!(
        stats.designs >= 100,
        "only {} designs checked",
        stats.designs
    );
    assert!(stats.minima > stats.designs, "too few certified minima");
    assert!(
        stats.boundary_resims > 0,
        "no boundary ever needed a shallower probe"
    );
}

#[test]
fn min_depths_is_tight_on_multirate_designs_with_leftover_data() {
    let stats = check_tightness(&GenConfig::multirate(), 0..DESIGNS_PER_PRESET);
    assert!(
        stats.designs >= 80,
        "only {} designs checked",
        stats.designs
    );
    assert!(stats.minima > 0);
    assert!(
        stats.infeasible_boundaries > 0,
        "surpluses and rate skews must produce infeasible boundary probes"
    );
}
