//! Cross-backend differential fuzzing over seeded random designs.
//!
//! `omnisim-gen` generates well-formed dataflow designs targeted at each
//! taxonomy class; for every seed the differential oracle asserts
//!
//! * `omnisim` == cycle-stepped reference, **bit for bit** (outcome,
//!   outputs, total cycles),
//! * `lightning` exactly right on Type A, honestly rejecting Type B/C,
//! * `csim` exactly right on Type A, book-kept on its documented Type B/C
//!   divergence,
//! * compiled `SweepPlan` == `try_with_depths` == full re-simulation on
//!   random FIFO-depth vectors.
//!
//! A failing seed is shrunk to a minimal blueprint and reported with a CLI
//! reproduction line (`cargo run -p omnisim-bench --bin fuzz -- --seed N
//! --class X`). Divergences the fuzzer has already caught live on as
//! fixtures in `omnisim_suite::designs::fuzz` and are re-pinned below.

use omnisim_suite::backend;
use omnisim_suite::designs::fuzz as fuzz_fixtures;
use omnisim_suite::dse::SweepPlan;
use omnisim_suite::gen::{
    check_seeded, fuzz_seed, shrink, CsimAgreement, DiffConfig, DiffReport, GenConfig,
};
use omnisim_suite::ir::DesignClass;
use omnisim_suite::omnisim::{IncrementalOutcome, OmniSimulator};

/// Seeds fuzzed per taxonomy class; 3 × 400 > the 1000-design floor the
/// subsystem promises, while staying debug-build friendly.
const SEEDS_PER_CLASS: u64 = 400;

/// Seeds fuzzed per orthogonal dimension preset (AXI bursts, call chains,
/// multi-rate dataflow) — each against the full four-backend oracle.
const SEEDS_PER_DIMENSION: u64 = 300;

#[derive(Default)]
struct CorpusStats {
    completed: usize,
    deadlocked: usize,
    csim_agreed: usize,
    csim_diverged: usize,
    csim_crashed: usize,
    dse_points: usize,
    min_depth_probes: usize,
}

impl CorpusStats {
    fn record(&mut self, report: &DiffReport) {
        if report.completed {
            self.completed += 1;
        } else {
            self.deadlocked += 1;
        }
        match report.csim {
            Some(CsimAgreement::Agreed) => self.csim_agreed += 1,
            Some(CsimAgreement::Diverged) => self.csim_diverged += 1,
            Some(CsimAgreement::Crashed) => self.csim_crashed += 1,
            None => {}
        }
        self.dse_points += report.dse_points_checked;
        self.min_depth_probes += report.min_depths_probes;
    }

    fn total(&self) -> usize {
        self.completed + self.deadlocked
    }
}

/// Fuzzes `seeds` seeds of `cfg`, shrinking and reporting the first failure.
fn fuzz_corpus(label: &str, cfg: &GenConfig, seeds: u64) -> CorpusStats {
    let diff = DiffConfig::default();
    let mut stats = CorpusStats::default();
    for seed in 0..seeds {
        let (generated, report) = fuzz_seed(cfg, &diff, seed);
        if let Some(class) = cfg.target {
            assert_eq!(generated.class, class, "{label}: seed {seed} missed class");
        }
        if !report.passed() {
            let minimal = shrink(&generated.blueprint, |bp| {
                !check_seeded(&bp.lower(), &diff, seed).passed()
            });
            let minimal_report = check_seeded(&minimal.lower(), &diff, seed);
            panic!(
                "{label}: seed {seed} (class {:?}) failed the differential check:\n  {}\n\
                 reproduce with: cargo run -p omnisim-bench --bin fuzz -- --seed {seed} --preset {label}\n\
                 minimized blueprint (failures: {:?}):\n{minimal:#?}",
                generated.class,
                report.failures.join("\n  "),
                minimal_report.failures,
            );
        }
        stats.record(&report);
    }
    assert_eq!(stats.total() as u64, seeds);
    stats
}

#[test]
fn type_a_designs_agree_across_all_backends() {
    let stats = fuzz_corpus("a", &GenConfig::type_a(), SEEDS_PER_CLASS);
    // Type A is every backend's home turf: csim must have agreed everywhere
    // (the oracle already asserts it per design) and nothing may deadlock.
    assert_eq!(stats.csim_agreed, stats.total());
    assert_eq!(stats.deadlocked, 0, "Type A pipelines cannot deadlock");
    assert!(stats.dse_points > 0, "DSE consistency must be exercised");
}

#[test]
fn type_b_designs_agree_between_the_cycle_accurate_backends() {
    let stats = fuzz_corpus("b", &GenConfig::type_b(), SEEDS_PER_CLASS);
    // Expected-divergence bookkeeping: sequential C simulation gets most
    // cyclic / retry designs wrong (its reads of not-yet-produced data
    // return defaults), mirroring the paper's Table 3.
    assert!(
        (stats.csim_diverged + stats.csim_crashed) * 2 > stats.total(),
        "csim agreed suspiciously often on Type B: {}/{} diverged",
        stats.csim_diverged + stats.csim_crashed,
        stats.total()
    );
}

#[test]
fn type_c_designs_agree_between_the_cycle_accurate_backends() {
    let stats = fuzz_corpus("c", &GenConfig::type_c(), SEEDS_PER_CLASS);
    assert!(
        (stats.csim_diverged + stats.csim_crashed) * 2 > stats.total(),
        "csim agreed suspiciously often on Type C: {}/{} diverged",
        stats.csim_diverged + stats.csim_crashed,
        stats.total()
    );
}

#[test]
fn axi_burst_designs_agree_across_all_backends() {
    // Burst read sources, burst write sinks, axi4_master-shaped tasks —
    // with randomized burst lengths, outstanding-transaction prefetch and
    // beat/FIFO interleaving. All Type A, so lightning and csim must be
    // bit-exact on every completed seed.
    let stats = fuzz_corpus("axi", &GenConfig::axi(), SEEDS_PER_DIMENSION);
    assert_eq!(stats.csim_agreed, stats.completed);
    assert!(stats.dse_points > 0, "DSE consistency must be exercised");
    assert!(
        stats.min_depth_probes > 0,
        "the min_depths inverse query must be exercised"
    );
}

#[test]
fn call_chain_designs_agree_across_all_backends() {
    let stats = fuzz_corpus("calls", &GenConfig::calls(), SEEDS_PER_DIMENSION);
    assert_eq!(stats.csim_agreed, stats.completed);
    assert!(stats.dse_points > 0);
}

#[test]
fn multirate_designs_agree_across_all_backends() {
    // Rate-mismatched edges and token surpluses. Unlike single-rate Type A
    // pipelines these can deadlock on undersized FIFOs (insufficient
    // buffering across a rate skew) — a legitimate behaviour both
    // cycle-accurate backends must diagnose identically, and the one
    // Type A corner where csim (unbounded FIFOs) legitimately diverges.
    let stats = fuzz_corpus("multirate", &GenConfig::multirate(), SEEDS_PER_DIMENSION);
    assert_eq!(stats.csim_agreed, stats.completed);
    assert!(
        stats.completed > stats.deadlocked,
        "most multirate seeds should complete"
    );
    assert!(stats.dse_points > 0);
}

#[test]
fn mixed_corpus_spans_all_three_classes() {
    let cfg = GenConfig::mixed();
    let mut seen = [false; 3];
    for seed in 0..100 {
        let g = omnisim_suite::gen::generate(&cfg, seed);
        seen[match g.class {
            DesignClass::TypeA => 0,
            DesignClass::TypeB => 1,
            DesignClass::TypeC => 2,
        }] = true;
    }
    assert_eq!(seen, [true; 3], "mixed config must reach every class");
}

#[test]
fn forced_deadlocks_are_diagnosed_identically_by_both_backends() {
    let cfg = GenConfig::mixed().with_deadlocks(60);
    let stats = fuzz_corpus("mixed+deadlocks", &cfg, 100);
    assert!(
        stats.deadlocked > 0,
        "the deadlock knob must produce deadlocking designs"
    );
    assert!(
        stats.completed > 0,
        "not every design should deadlock at 60%"
    );
}

/// Analyzer soundness at fuzz scale: ≥1000 seeds per generator preset,
/// each checked by the oracle's analyzer leg — `CertifiedFree` designs
/// must complete in the reference simulator, `CertifiedDeadlock` designs
/// must not, and every static depth lower bound must stay at or below the
/// certified `min_depths` minimum. The expensive simulation cross-checks
/// (DSE points, bytecode VM) are off: the reference run the analyzer is
/// judged against is the only simulation this test needs.
#[test]
fn analyzer_verdicts_are_sound_across_every_preset() {
    let diff = DiffConfig {
        dse_points: 0,
        bytecode: false,
        min_depths: true,
        analyze: true,
        ..DiffConfig::default()
    };
    for preset in GenConfig::PRESET_NAMES {
        let cfg = GenConfig::preset(preset).expect("preset names are exhaustive");
        for seed in 0..1000u64 {
            let (generated, report) = fuzz_seed(&cfg, &diff, seed);
            if !report.passed() {
                let minimal = shrink(&generated.blueprint, |bp| {
                    !check_seeded(&bp.lower(), &diff, seed).passed()
                });
                panic!(
                    "analyzer unsound on preset {preset} seed {seed}:\n  {}\n\
                     reproduce with: cargo run -p omnisim-bench --bin fuzz -- \
                     --seed {seed} --preset {preset}\nminimized blueprint:\n{minimal:#?}",
                    report.failures.join("\n  "),
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Regression pins for divergences the fuzzer has already caught. Each
// fixture in `designs::fuzz` is a shrunk witness of a real bug; the designs
// stay in the corpus forever.
// ---------------------------------------------------------------------------

/// Every fuzz fixture must pass the full differential oracle (with the
/// min_depths tightness resims on for the new dimensional fixtures).
#[test]
fn minimized_fuzz_fixtures_pass_the_differential_oracle() {
    let diff = DiffConfig {
        min_depths_resim: true,
        ..DiffConfig::default()
    };
    let fixtures = [
        (
            "pipelined_reader_overlap",
            fuzz_fixtures::pipelined_reader_overlap(2),
        ),
        ("nb_undecided_race", fuzz_fixtures::nb_undecided_race(3)),
        ("depth_relaxation", fuzz_fixtures::depth_relaxation(2)),
        // Larger workloads of the same shapes.
        (
            "pipelined_reader_overlap_64",
            fuzz_fixtures::pipelined_reader_overlap(64),
        ),
        ("nb_undecided_race_64", fuzz_fixtures::nb_undecided_race(64)),
        // Witnesses of the AXI / call / multi-rate divergences this PR's
        // generator extension surfaced and fixed.
        (
            "axi_outstanding_bursts",
            fuzz_fixtures::axi_outstanding_bursts(4),
        ),
        (
            "axi_beat_stall_anchor",
            fuzz_fixtures::axi_beat_stall_anchor(3),
        ),
        (
            "multirate_leftover",
            fuzz_fixtures::multirate_leftover(6, 3, 2),
        ),
        ("multirate_diamond", fuzz_fixtures::multirate_diamond(5)),
        ("call_wrapped_reader", fuzz_fixtures::call_wrapped_reader(5)),
        // Larger workloads of the same shapes.
        (
            "axi_outstanding_bursts_32",
            fuzz_fixtures::axi_outstanding_bursts(32),
        ),
        (
            "axi_beat_stall_anchor_16",
            fuzz_fixtures::axi_beat_stall_anchor(16),
        ),
        (
            "call_wrapped_reader_64",
            fuzz_fixtures::call_wrapped_reader(64),
        ),
    ];
    for (name, design) in fixtures {
        let report = check_seeded(&design, &diff, 0xf1f0);
        assert!(
            report.passed(),
            "fixture {name} regressed:\n  {}",
            report.failures.join("\n  ")
        );
    }
}

/// The outstanding-burst fixture's pacing: both engines and lightning must
/// agree with the reference on the cycle count (the pre-fix engine re-paced
/// the first burst's beats from the second request's ready cycle).
#[test]
fn axi_outstanding_bursts_pacing_is_pinned() {
    let design = fuzz_fixtures::axi_outstanding_bursts(4);
    let omni = backend("omnisim").unwrap().simulate(&design).unwrap();
    let rtl = backend("rtl").unwrap().simulate(&design).unwrap();
    let lightning = backend("lightning").unwrap().simulate(&design).unwrap();
    assert_eq!(omni.total_cycles, rtl.total_cycles);
    assert_eq!(lightning.total_cycles, rtl.total_cycles);
    assert_eq!(omni.outputs, rtl.outputs);
}

/// The beat-anchor fixture: certified incremental answers must equal a full
/// re-simulation at every depth, even though deeper FIFOs shift the AXI
/// beats onto the bus's absolute ready cycles (the pre-fix graph model
/// shifted the beats along with the FIFO writes).
#[test]
fn axi_beat_anchor_incremental_matches_full_resim_at_every_depth() {
    let design = fuzz_fixtures::axi_beat_stall_anchor(3);
    let baseline = OmniSimulator::new(&design).run().unwrap();
    assert!(baseline.outcome.is_completed());
    for depth in 1..=8usize {
        let incremental = baseline.incremental.try_with_depths(&[depth]).unwrap();
        let full = OmniSimulator::new(&design.with_fifo_depths(&[depth]))
            .run()
            .unwrap();
        assert_eq!(
            incremental,
            IncrementalOutcome::Valid {
                total_cycles: full.total_cycles
            },
            "depth {depth}: the absolute-bus-anchor bug is back"
        );
    }
}

/// Leftover data: probes below the surplus are infeasible — the resized
/// design deadlocks — and both the uncompiled and compiled DSE paths must
/// say so instead of certifying a latency (the pre-fix paths skipped the
/// non-existent freeing read and certified).
#[test]
fn multirate_leftover_probes_below_surplus_are_infeasible() {
    let design = fuzz_fixtures::multirate_leftover(6, 3, 2);
    let baseline = OmniSimulator::new(&design).run().unwrap();
    assert!(baseline.outcome.is_completed());
    let plan = SweepPlan::compile(&baseline.incremental).unwrap();
    let mut eval = plan.evaluator();
    for depth in 1..2usize {
        assert_eq!(
            baseline.incremental.try_with_depths(&[depth]).unwrap(),
            IncrementalOutcome::DepthInfeasible { fifo: 0 },
            "depth {depth}"
        );
        assert_eq!(
            eval.evaluate(&[depth]).unwrap(),
            IncrementalOutcome::DepthInfeasible { fifo: 0 },
            "compiled path at depth {depth}"
        );
        let full = OmniSimulator::new(&design.with_fifo_depths(&[depth]))
            .run()
            .unwrap();
        assert!(!full.outcome.is_completed(), "depth {depth} must deadlock");
    }
    // From the surplus upward the design completes and certifies.
    for depth in 2..=6usize {
        let incremental = baseline.incremental.try_with_depths(&[depth]).unwrap();
        let full = OmniSimulator::new(&design.with_fifo_depths(&[depth]))
            .run()
            .unwrap();
        assert!(full.outcome.is_completed());
        assert_eq!(
            incremental,
            IncrementalOutcome::Valid {
                total_cycles: full.total_cycles
            },
            "depth {depth}"
        );
    }
}

/// Multi-rate reconvergence: the depth-1 overlay is cyclic (the design
/// deadlocks at depth 1), the plan must still compile from the completed
/// baseline, and both DSE paths must report the cyclic point identically.
#[test]
fn multirate_diamond_depth_one_is_cyclic_and_diagnosed_identically() {
    let design = fuzz_fixtures::multirate_diamond(5);
    let baseline = OmniSimulator::new(&design).run().unwrap();
    assert!(baseline.outcome.is_completed());
    let plan = SweepPlan::compile(&baseline.incremental)
        .expect("completed multi-rate baselines must compile");
    let all_one = vec![1usize; design.fifos.len()];
    assert_eq!(
        baseline.incremental.try_with_depths(&all_one).unwrap(),
        IncrementalOutcome::DepthCyclic
    );
    assert_eq!(
        plan.evaluator().evaluate(&all_one).unwrap(),
        IncrementalOutcome::DepthCyclic
    );
    // The undersized design itself deadlocks, and both cycle-accurate
    // backends agree on the diagnosis.
    let shallow = fuzz_fixtures::multirate_diamond(1);
    let report = check_seeded(&shallow, &DiffConfig::default(), 0xf1f0);
    assert!(
        report.passed(),
        "shallow diamond diverged:\n  {}",
        report.failures.join("\n  ")
    );
    assert!(!report.completed, "the shallow diamond must deadlock");
}

/// The wrapped-read fixture: lightning must order the producer before the
/// consumer even though the FIFO's reader module is a callee, and stay
/// cycle-exact through the two-deep call chain.
#[test]
fn call_wrapped_reader_is_cycle_exact_on_every_backend() {
    let design = fuzz_fixtures::call_wrapped_reader(5);
    let omni = backend("omnisim").unwrap().simulate(&design).unwrap();
    let rtl = backend("rtl").unwrap().simulate(&design).unwrap();
    let lightning = backend("lightning").unwrap().simulate(&design).unwrap();
    assert_eq!(omni.total_cycles, rtl.total_cycles);
    assert_eq!(lightning.total_cycles, rtl.total_cycles);
    assert_eq!(lightning.outputs, rtl.outputs);
}

/// Representative shrunk seeds per new dimension, pinned forever: the
/// generator is deterministic, so `(preset, seed)` *is* the fixture. Each
/// runs the full oracle with the tightness resims enabled.
#[test]
fn representative_dimension_seeds_stay_pinned() {
    let diff = DiffConfig {
        min_depths_resim: true,
        ..DiffConfig::default()
    };
    let pins = [
        ("axi", GenConfig::axi(), [3u64, 17, 40]),
        ("calls", GenConfig::calls(), [0, 4, 23]),
        ("multirate", GenConfig::multirate(), [1, 11, 29]),
    ];
    for (label, cfg, seeds) in pins {
        for seed in seeds {
            let (generated, report) = fuzz_seed(&cfg, &diff, seed);
            assert!(
                report.passed(),
                "pinned {label} seed {seed} regressed:\n  {}\nblueprint: {:#?}",
                report.failures.join("\n  "),
                generated.blueprint
            );
        }
    }
}

/// The reference simulator must overlap pipelined loop iterations: the
/// original divergence was rtl reporting 13 cycles against the engines' 12.
#[test]
fn pipelined_overlap_fixture_cycle_count_is_pinned() {
    let design = fuzz_fixtures::pipelined_reader_overlap(2);
    let omni = backend("omnisim").unwrap().simulate(&design).unwrap();
    let rtl = backend("rtl").unwrap().simulate(&design).unwrap();
    let lightning = backend("lightning").unwrap().simulate(&design).unwrap();
    assert_eq!(omni.total_cycles, Some(12), "engine timing model moved");
    assert_eq!(
        rtl.total_cycles,
        Some(12),
        "reference lost iteration overlap"
    );
    assert_eq!(lightning.total_cycles, Some(12));
}

/// Incremental DSE must *relax* write-after-read stalls for deeper FIFOs:
/// the original divergence certified the baseline's 9 cycles at every depth
/// where ground truth is 8 from depth 2 up.
#[test]
fn depth_relaxation_fixture_relaxes_with_depth() {
    let design = fuzz_fixtures::depth_relaxation(2);
    let baseline = OmniSimulator::new(&design).run().unwrap();
    assert_eq!(baseline.total_cycles, 9);
    for depth in 2..=16 {
        let incremental = baseline.incremental.try_with_depths(&[depth]).unwrap();
        let full = OmniSimulator::new(&design.with_fifo_depths(&[depth]))
            .run()
            .unwrap();
        assert_eq!(full.total_cycles, 8);
        assert_eq!(
            incremental,
            IncrementalOutcome::Valid { total_cycles: 8 },
            "depth {depth}: the baked-in-stall bug is back"
        );
    }
}
