//! Cross-backend differential fuzzing over seeded random designs.
//!
//! `omnisim-gen` generates well-formed dataflow designs targeted at each
//! taxonomy class; for every seed the differential oracle asserts
//!
//! * `omnisim` == cycle-stepped reference, **bit for bit** (outcome,
//!   outputs, total cycles),
//! * `lightning` exactly right on Type A, honestly rejecting Type B/C,
//! * `csim` exactly right on Type A, book-kept on its documented Type B/C
//!   divergence,
//! * compiled `SweepPlan` == `try_with_depths` == full re-simulation on
//!   random FIFO-depth vectors.
//!
//! A failing seed is shrunk to a minimal blueprint and reported with a CLI
//! reproduction line (`cargo run -p omnisim-bench --bin fuzz -- --seed N
//! --class X`). Divergences the fuzzer has already caught live on as
//! fixtures in `omnisim_suite::designs::fuzz` and are re-pinned below.

use omnisim_suite::backend;
use omnisim_suite::designs::fuzz as fuzz_fixtures;
use omnisim_suite::gen::{
    check_seeded, fuzz_seed, shrink, CsimAgreement, DiffConfig, DiffReport, GenConfig,
};
use omnisim_suite::ir::DesignClass;
use omnisim_suite::omnisim::{IncrementalOutcome, OmniSimulator};

/// Seeds fuzzed per taxonomy class; 3 × 400 > the 1000-design floor the
/// subsystem promises, while staying debug-build friendly.
const SEEDS_PER_CLASS: u64 = 400;

#[derive(Default)]
struct CorpusStats {
    completed: usize,
    deadlocked: usize,
    csim_agreed: usize,
    csim_diverged: usize,
    csim_crashed: usize,
    dse_points: usize,
}

impl CorpusStats {
    fn record(&mut self, report: &DiffReport) {
        if report.completed {
            self.completed += 1;
        } else {
            self.deadlocked += 1;
        }
        match report.csim {
            Some(CsimAgreement::Agreed) => self.csim_agreed += 1,
            Some(CsimAgreement::Diverged) => self.csim_diverged += 1,
            Some(CsimAgreement::Crashed) => self.csim_crashed += 1,
            None => {}
        }
        self.dse_points += report.dse_points_checked;
    }

    fn total(&self) -> usize {
        self.completed + self.deadlocked
    }
}

/// Fuzzes `seeds` seeds of `cfg`, shrinking and reporting the first failure.
fn fuzz_corpus(label: &str, cfg: &GenConfig, seeds: u64) -> CorpusStats {
    let diff = DiffConfig::default();
    let mut stats = CorpusStats::default();
    for seed in 0..seeds {
        let (generated, report) = fuzz_seed(cfg, &diff, seed);
        if let Some(class) = cfg.target {
            assert_eq!(generated.class, class, "{label}: seed {seed} missed class");
        }
        if !report.passed() {
            let minimal = shrink(&generated.blueprint, |bp| {
                !check_seeded(&bp.lower(), &diff, seed).passed()
            });
            let minimal_report = check_seeded(&minimal.lower(), &diff, seed);
            panic!(
                "{label}: seed {seed} (class {:?}) failed the differential check:\n  {}\n\
                 reproduce with: cargo run -p omnisim-bench --bin fuzz -- --seed {seed} --class {label}\n\
                 minimized blueprint (failures: {:?}):\n{minimal:#?}",
                generated.class,
                report.failures.join("\n  "),
                minimal_report.failures,
            );
        }
        stats.record(&report);
    }
    assert_eq!(stats.total() as u64, seeds);
    stats
}

#[test]
fn type_a_designs_agree_across_all_backends() {
    let stats = fuzz_corpus("a", &GenConfig::type_a(), SEEDS_PER_CLASS);
    // Type A is every backend's home turf: csim must have agreed everywhere
    // (the oracle already asserts it per design) and nothing may deadlock.
    assert_eq!(stats.csim_agreed, stats.total());
    assert_eq!(stats.deadlocked, 0, "Type A pipelines cannot deadlock");
    assert!(stats.dse_points > 0, "DSE consistency must be exercised");
}

#[test]
fn type_b_designs_agree_between_the_cycle_accurate_backends() {
    let stats = fuzz_corpus("b", &GenConfig::type_b(), SEEDS_PER_CLASS);
    // Expected-divergence bookkeeping: sequential C simulation gets most
    // cyclic / retry designs wrong (its reads of not-yet-produced data
    // return defaults), mirroring the paper's Table 3.
    assert!(
        (stats.csim_diverged + stats.csim_crashed) * 2 > stats.total(),
        "csim agreed suspiciously often on Type B: {}/{} diverged",
        stats.csim_diverged + stats.csim_crashed,
        stats.total()
    );
}

#[test]
fn type_c_designs_agree_between_the_cycle_accurate_backends() {
    let stats = fuzz_corpus("c", &GenConfig::type_c(), SEEDS_PER_CLASS);
    assert!(
        (stats.csim_diverged + stats.csim_crashed) * 2 > stats.total(),
        "csim agreed suspiciously often on Type C: {}/{} diverged",
        stats.csim_diverged + stats.csim_crashed,
        stats.total()
    );
}

#[test]
fn mixed_corpus_spans_all_three_classes() {
    let cfg = GenConfig::mixed();
    let mut seen = [false; 3];
    for seed in 0..100 {
        let g = omnisim_suite::gen::generate(&cfg, seed);
        seen[match g.class {
            DesignClass::TypeA => 0,
            DesignClass::TypeB => 1,
            DesignClass::TypeC => 2,
        }] = true;
    }
    assert_eq!(seen, [true; 3], "mixed config must reach every class");
}

#[test]
fn forced_deadlocks_are_diagnosed_identically_by_both_backends() {
    let cfg = GenConfig::mixed().with_deadlocks(60);
    let stats = fuzz_corpus("mixed+deadlocks", &cfg, 100);
    assert!(
        stats.deadlocked > 0,
        "the deadlock knob must produce deadlocking designs"
    );
    assert!(
        stats.completed > 0,
        "not every design should deadlock at 60%"
    );
}

// ---------------------------------------------------------------------------
// Regression pins for divergences the fuzzer has already caught. Each
// fixture in `designs::fuzz` is a shrunk witness of a real bug; the designs
// stay in the corpus forever.
// ---------------------------------------------------------------------------

/// Every fuzz fixture must pass the full differential oracle.
#[test]
fn minimized_fuzz_fixtures_pass_the_differential_oracle() {
    let diff = DiffConfig::default();
    let fixtures = [
        (
            "pipelined_reader_overlap",
            fuzz_fixtures::pipelined_reader_overlap(2),
        ),
        ("nb_undecided_race", fuzz_fixtures::nb_undecided_race(3)),
        ("depth_relaxation", fuzz_fixtures::depth_relaxation(2)),
        // Larger workloads of the same shapes.
        (
            "pipelined_reader_overlap_64",
            fuzz_fixtures::pipelined_reader_overlap(64),
        ),
        ("nb_undecided_race_64", fuzz_fixtures::nb_undecided_race(64)),
    ];
    for (name, design) in fixtures {
        let report = check_seeded(&design, &diff, 0xf1f0);
        assert!(
            report.passed(),
            "fixture {name} regressed:\n  {}",
            report.failures.join("\n  ")
        );
    }
}

/// The reference simulator must overlap pipelined loop iterations: the
/// original divergence was rtl reporting 13 cycles against the engines' 12.
#[test]
fn pipelined_overlap_fixture_cycle_count_is_pinned() {
    let design = fuzz_fixtures::pipelined_reader_overlap(2);
    let omni = backend("omnisim").unwrap().simulate(&design).unwrap();
    let rtl = backend("rtl").unwrap().simulate(&design).unwrap();
    let lightning = backend("lightning").unwrap().simulate(&design).unwrap();
    assert_eq!(omni.total_cycles, Some(12), "engine timing model moved");
    assert_eq!(
        rtl.total_cycles,
        Some(12),
        "reference lost iteration overlap"
    );
    assert_eq!(lightning.total_cycles, Some(12));
}

/// Incremental DSE must *relax* write-after-read stalls for deeper FIFOs:
/// the original divergence certified the baseline's 9 cycles at every depth
/// where ground truth is 8 from depth 2 up.
#[test]
fn depth_relaxation_fixture_relaxes_with_depth() {
    let design = fuzz_fixtures::depth_relaxation(2);
    let baseline = OmniSimulator::new(&design).run().unwrap();
    assert_eq!(baseline.total_cycles, 9);
    for depth in 2..=16 {
        let incremental = baseline.incremental.try_with_depths(&[depth]).unwrap();
        let full = OmniSimulator::new(&design.with_fifo_depths(&[depth]))
            .run()
            .unwrap();
        assert_eq!(full.total_cycles, 8);
        assert_eq!(
            incremental,
            IncrementalOutcome::Valid { total_cycles: 8 },
            "depth {depth}: the baked-in-stall bug is back"
        );
    }
}
