//! Differential suite for the compiled DSE engine: on every Type A/B/C
//! fixture design, the compiled `SweepPlan` must agree **exactly** with
//! the uncompiled `IncrementalState::try_with_depths` path (same verdicts,
//! same latencies, same first-violated-constraint indices) across
//! randomized depth grids, and both must agree with a full re-simulation
//! of the resized design wherever an answer is certified.

use omnisim_suite::designs::{table4_designs_with_n, typea};
use omnisim_suite::ir::{Design, DesignClass};
use omnisim_suite::omnisim::test_fixtures::{nb_drop_counter, producer_consumer};
use omnisim_suite::omnisim::{IncrementalOutcome, OmniSimulator};
use omnisim_suite::{all_backends, CompiledPlan, Sweep, SweepPlan};

use omnisim_suite::gen::Rng;

/// Every fixture design the differential suite runs on, with a label for
/// failure messages and the declared taxonomy class for coverage checks.
fn fixture_designs() -> Vec<(String, Design, DesignClass)> {
    let n: i64 = 40;
    let mut designs: Vec<(String, Design, DesignClass)> = vec![
        (
            "producer_consumer".into(),
            producer_consumer(n, 2, 2),
            DesignClass::TypeA,
        ),
        (
            "nb_drop_counter".into(),
            nb_drop_counter(n, 2, 3),
            DesignClass::TypeC,
        ),
        (
            "vecadd_stream".into(),
            typea::vecadd_stream(n, 2),
            DesignClass::TypeA,
        ),
    ];
    designs.extend(
        table4_designs_with_n(n)
            .into_iter()
            .map(|bench| (bench.name.to_owned(), bench.design, bench.declared_class)),
    );
    designs
}

#[test]
fn fixture_set_covers_all_three_taxonomy_classes() {
    let designs = fixture_designs();
    for class in [DesignClass::TypeA, DesignClass::TypeB, DesignClass::TypeC] {
        assert!(
            designs.iter().any(|(_, _, c)| *c == class),
            "no fixture of class {class:?}"
        );
    }
}

/// The core differential claim: compiled == uncompiled == re-simulated.
#[test]
fn compiled_plan_matches_incremental_and_full_resimulation_on_random_grids() {
    let mut rng = Rng::new(0x0a51_51ca_5eed_0001);
    for (name, design, _) in fixture_designs() {
        let baseline = OmniSimulator::new(&design)
            .run()
            .unwrap_or_else(|e| panic!("{name}: baseline failed: {e}"));
        let plan = SweepPlan::compile(&baseline.incremental)
            .unwrap_or_else(|e| panic!("{name}: plan must compile: {e}"));
        assert_eq!(plan.fifo_count(), design.fifos.len(), "{name}");
        let mut evaluator = plan.evaluator();

        for round in 0..12 {
            let depths: Vec<usize> = (0..plan.fifo_count()).map(|_| rng.depth(100)).collect();
            let compiled = evaluator
                .evaluate(&depths)
                .unwrap_or_else(|e| panic!("{name}: plan evaluation failed: {e}"));
            let incremental = baseline
                .incremental
                .try_with_depths(&depths)
                .unwrap_or_else(|e| panic!("{name}: incremental pass failed: {e}"));
            assert_eq!(
                compiled, incremental,
                "{name} round {round}: compiled and incremental disagree at {depths:?}"
            );

            // Certified answers must also match reality: a complete
            // re-simulation of the resized design (checked on half the
            // rounds to keep debug-build runtime in bounds). Deadlocked
            // baselines are excluded: their recorded graph is partial, so
            // the incremental path — compiled or not — reports the stall
            // horizon of the *original* deadlock, which need not equal the
            // resized run's (a pre-existing property of `try_with_depths`,
            // faithfully reproduced by the plan and pinned above).
            if round % 2 == 0 && baseline.outcome.is_completed() {
                let resized = design.with_fifo_depths(&depths);
                let full = OmniSimulator::new(&resized)
                    .run()
                    .unwrap_or_else(|e| panic!("{name}: full re-sim failed: {e}"));
                if let IncrementalOutcome::Valid { total_cycles } = compiled {
                    assert_eq!(
                        total_cycles, full.total_cycles,
                        "{name} round {round}: certified latency diverges from \
                         re-simulation at {depths:?}"
                    );
                }
            }
        }
    }
}

/// The bytecode VM is the third leg of the differential: on every fixture
/// it must answer bit-identically to the interpreted plan and to the
/// uncompiled incremental path — warm (delta) and cold, through the codec
/// roundtrip, and through every batch entry point.
#[test]
fn bytecode_vm_matches_interpreter_and_incremental_on_every_fixture() {
    let mut rng = Rng::new(0xb17e_c0de_5eed_0003);
    for (name, design, _) in fixture_designs() {
        let baseline = OmniSimulator::new(&design)
            .run()
            .unwrap_or_else(|e| panic!("{name}: baseline failed: {e}"));
        let plan = SweepPlan::compile(&baseline.incremental)
            .unwrap_or_else(|e| panic!("{name}: plan must compile: {e}"));
        let program = plan.compile_bytecode();
        let decoded = CompiledPlan::decode(&program.encode())
            .unwrap_or_else(|e| panic!("{name}: program must roundtrip: {e}"));
        let mut vm = program.vm();
        let mut decoded_vm = decoded.vm();
        let mut evaluator = plan.evaluator();
        let fifos = plan.fifo_count();

        let mut grid: Vec<Vec<usize>> = (0..16)
            .map(|_| (0..fifos).map(|_| rng.depth(100)).collect())
            .collect();
        // All-shallow vectors drive the DepthInfeasible / DepthCyclic
        // routing through the VM's Kahn slow path on blocking designs.
        grid.push(vec![1; fifos]);
        grid.push(vec![2; fifos]);

        for depths in &grid {
            let interpreted = evaluator
                .evaluate(depths)
                .unwrap_or_else(|e| panic!("{name}: plan evaluation failed: {e}"));
            let outcome = vm
                .evaluate(depths)
                .unwrap_or_else(|e| panic!("{name}: VM evaluation failed: {e}"));
            assert_eq!(outcome, interpreted, "{name}: VM diverges at {depths:?}");
            assert_eq!(
                decoded_vm.evaluate(depths).unwrap(),
                interpreted,
                "{name}: decoded program diverges at {depths:?}"
            );
            let incremental = baseline
                .incremental
                .try_with_depths(depths)
                .unwrap_or_else(|e| panic!("{name}: incremental pass failed: {e}"));
            assert_eq!(
                outcome, incremental,
                "{name}: VM and incremental disagree at {depths:?}"
            );
        }

        // Every batch entry point answers like the per-point loop —
        // including an explicit worker count above the cutoff decision.
        let interp_batch = plan.evaluate_batch(&grid, false).unwrap();
        assert_eq!(
            program.evaluate_batch(&grid, false).unwrap(),
            interp_batch,
            "{name}"
        );
        assert_eq!(
            program.evaluate_batch(&grid, true).unwrap(),
            interp_batch,
            "{name}"
        );
        assert_eq!(
            program.evaluate_batch_workers(&grid, 3).unwrap(),
            interp_batch,
            "{name}"
        );
    }
}

/// The `Sweep` driver (plan fast path + re-simulation fallback) must report
/// re-simulation ground truth for every point, whichever path answered it.
#[test]
fn sweep_answers_equal_full_resimulation_on_every_fixture() {
    let mut rng = Rng::new(0xd5e_5eed_0000_0002);
    for (name, design, _) in fixture_designs() {
        let points: Vec<Vec<usize>> = (0..6)
            .map(|_| (0..design.fifos.len()).map(|_| rng.depth(64)).collect())
            .collect();
        let sweep = Sweep::new(&design)
            .points(points)
            .run()
            .unwrap_or_else(|e| panic!("{name}: sweep failed: {e}"));
        assert!(sweep.plan.is_some(), "{name}: plan must compile");
        if !sweep.baseline.outcome.is_completed() {
            // See the note in the random-grid test: a deadlocked baseline's
            // incremental answers are stall horizons, not re-simulation
            // latencies, so re-sim equality is not the contract here.
            continue;
        }
        for point in &sweep.points {
            let resized = design.with_fifo_depths(&point.depths);
            let full = OmniSimulator::new(&resized)
                .run()
                .unwrap_or_else(|e| panic!("{name}: full re-sim failed: {e}"));
            assert_eq!(
                point.total_cycles,
                full.total_cycles,
                "{name}: sweep answer diverges at {:?} ({})",
                point.depths,
                point.method.label()
            );
        }
    }
}

/// Delta evaluation must be path-independent: visiting the same grid in
/// different orders (and from cold evaluators) gives identical answers.
#[test]
fn delta_evaluation_is_path_independent() {
    let design = table4_designs_with_n(40)
        .into_iter()
        .find(|b| b.name == "fig4_ex5")
        .expect("fig4_ex5 is in the fixture inventory")
        .design;
    let baseline = OmniSimulator::new(&design).run().unwrap();
    let plan = SweepPlan::compile(&baseline.incremental).unwrap();

    let grid: Vec<Vec<usize>> = (1..=8)
        .flat_map(|d1| (1..=8).map(move |d2| vec![d1, d2]))
        .collect();
    let mut reversed = grid.clone();
    reversed.reverse();

    let forward = plan.evaluate_batch(&grid, false).unwrap();
    let mut backward = plan.evaluate_batch(&reversed, false).unwrap();
    backward.reverse();
    assert_eq!(forward, backward, "evaluation order must not matter");

    let parallel = plan.evaluate_batch(&grid, true).unwrap();
    assert_eq!(forward, parallel, "chunked parallel solving must agree");
}

/// `min_depths` answers must be tight: the found depth meets the target,
/// one less does not — verified against the uncompiled ground truth.
#[test]
fn min_depths_search_is_tight_against_ground_truth() {
    let design = producer_consumer(48, 2, 1);
    let baseline = OmniSimulator::new(&design).run().unwrap();
    let plan = SweepPlan::compile(&baseline.incremental).unwrap();
    let max_depth = 64;
    let relaxed = match baseline.incremental.try_with_depths(&[max_depth]).unwrap() {
        IncrementalOutcome::Valid { total_cycles } => total_cycles,
        other => panic!("expected valid at max depth, got {other:?}"),
    };

    let meets = |depth: usize, target: u64| -> bool {
        matches!(
            baseline.incremental.try_with_depths(&[depth]).unwrap(),
            IncrementalOutcome::Valid { total_cycles } if total_cycles <= target
        )
    };
    for target in [relaxed, relaxed + 2, relaxed + 8] {
        let report = plan.min_depths(target, max_depth).unwrap();
        assert!(report.combined_meets_target(), "target {target}");
        let found = report.per_fifo[0].expect("search must certify a depth");
        assert!(meets(found, target), "found depth misses target {target}");
        if found > 1 {
            assert!(
                !meets(found - 1, target),
                "depth {} below the found minimum also meets target {target}",
                found - 1
            );
        }
        assert!(report.probes <= 16, "binary search, not a scan");
    }
}

/// Regression: on non-blocking designs, constraint validity is not
/// monotone in depth — the search bound itself often violates recorded
/// constraints even though the baseline certifies trivially. The search
/// must anchor at the baseline and still find a certified answer instead
/// of reporting `None`.
#[test]
fn min_depths_certifies_from_the_baseline_anchor_on_nonblocking_designs() {
    let design = nb_drop_counter(48, 2, 3);
    let baseline = OmniSimulator::new(&design).run().unwrap();
    let plan = SweepPlan::compile(&baseline.incremental).unwrap();
    let target = baseline.total_cycles;
    // The bound violates the recorded non-blocking outcomes (a deeper FIFO
    // would have accepted writes that failed in the baseline run)...
    assert!(matches!(
        baseline.incremental.try_with_depths(&[128]).unwrap(),
        IncrementalOutcome::ConstraintViolated { .. }
    ));
    // ...but the anchored search still certifies a depth at or below the
    // baseline's.
    let report = plan.min_depths(target, 128).unwrap();
    let found = report.per_fifo[0].expect("the baseline anchor must certify");
    assert!(
        found <= 2,
        "found {found}, expected at most the baseline depth"
    );
    assert!(report.combined_meets_target());
}

/// The `compiled_dse` capability flag must predict whether a backend's
/// compile-once session artifact actually compiles into a plan.
#[test]
fn compiled_dse_capability_predicts_from_compiled() {
    let design = producer_consumer(16, 2, 1);
    for sim in all_backends() {
        let Ok(compiled) = sim.compile(&design) else {
            continue;
        };
        let caps = sim.capabilities();
        match SweepPlan::from_compiled(compiled.as_ref()) {
            Some(Ok(plan)) => {
                assert!(
                    caps.compiled_dse,
                    "{} shipped a compilable artifact without advertising it",
                    sim.name()
                );
                assert_eq!(plan.fifo_count(), 1);
            }
            Some(Err(e)) => panic!("{}: artifact failed to compile: {e}", sim.name()),
            None => assert!(
                !caps.compiled_dse,
                "{} advertises compiled DSE but its artifact does not downcast",
                sim.name()
            ),
        }
    }
}
