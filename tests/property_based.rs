//! Property-based tests over randomly generated dataflow pipelines and FIFO
//! access patterns.

use omnisim::OmniSimulator;
use omnisim_lightning::LightningSimulator;
use omnisim_rtlsim::RtlSimulator;
use omnisim_suite::designs::typea::dataflow_graph;
use omnisim_suite::ir::{DesignBuilder, Expr};
use proptest::prelude::*;

/// Builds a producer/consumer design with arbitrary trip count, FIFO depth
/// and producer/consumer initiation intervals.
fn producer_consumer(n: i64, depth: usize, prod_ii: u64, cons_ii: u64) -> omnisim_suite::ir::Design {
    let mut d = DesignBuilder::new("prop_pc");
    let data = d.array("data", (1..=n).collect::<Vec<i64>>());
    let out = d.output("sum");
    let q = d.fifo("q", depth);
    let p = d.function("producer", |m| {
        m.counted_loop("i", n, prod_ii, |b| {
            let i = b.var_expr("i");
            let v = b.array_load(data, i);
            b.fifo_write(q, Expr::var(v));
        });
    });
    let c = d.function("consumer", |m| {
        let acc = m.var("acc");
        m.entry(|b| {
            b.assign(acc, Expr::imm(0));
        });
        m.counted_loop("i", n, cons_ii, |b| {
            let v = b.fifo_read(q);
            b.assign(acc, Expr::var(acc).add(Expr::var(v)));
        });
        m.exit(|b| {
            b.output(out, Expr::var(acc));
        });
    });
    d.dataflow_top("top", [p, c]);
    d.build().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// All three simulators agree on arbitrary blocking producer/consumer
    /// configurations (the Type A core of the timing-model contract).
    #[test]
    fn simulators_agree_on_random_producer_consumer(
        n in 1i64..120,
        depth in 1usize..16,
        prod_ii in 1u64..4,
        cons_ii in 1u64..4,
    ) {
        let design = producer_consumer(n, depth, prod_ii, cons_ii);
        let reference = RtlSimulator::new(&design).run().unwrap();
        let omni = OmniSimulator::new(&design).run().unwrap();
        let light = LightningSimulator::new(&design).unwrap().simulate().unwrap();

        prop_assert_eq!(&omni.outputs, &reference.outputs);
        prop_assert_eq!(&light.outputs, &reference.outputs);
        prop_assert_eq!(omni.total_cycles, reference.total_cycles);
        prop_assert_eq!(light.total_cycles, reference.total_cycles);
        // Expected sum: 1 + 2 + … + n.
        prop_assert_eq!(omni.outputs["sum"], n * (n + 1) / 2);
    }

    /// Deeper FIFOs never increase latency (monotonicity of stall analysis).
    #[test]
    fn deeper_fifos_never_hurt(
        n in 1i64..100,
        prod_ii in 1u64..3,
        cons_ii in 1u64..3,
        d1 in 1usize..8,
        extra in 1usize..16,
    ) {
        let shallow = producer_consumer(n, d1, prod_ii, cons_ii);
        let deep = producer_consumer(n, d1 + extra, prod_ii, cons_ii);
        let shallow_cycles = OmniSimulator::new(&shallow).run().unwrap().total_cycles;
        let deep_cycles = OmniSimulator::new(&deep).run().unwrap().total_cycles;
        prop_assert!(deep_cycles <= shallow_cycles);
    }

    /// Incremental re-analysis brackets the truth whenever it declares
    /// itself valid: it never under-estimates the latency of the resized
    /// design (stalls observed in the original run stay baked into the node
    /// times) and never exceeds the original latency when FIFOs only grow.
    #[test]
    fn incremental_is_a_sound_conservative_estimate(
        n in 1i64..80,
        depth in 1usize..6,
        extra_depth in 0usize..32,
        cons_ii in 1u64..3,
    ) {
        let design = producer_consumer(n, depth, 1, cons_ii);
        let report = OmniSimulator::new(&design).run().unwrap();
        let new_depth = depth + extra_depth;
        if let omnisim::IncrementalOutcome::Valid { total_cycles } =
            report.incremental.try_with_depths(&[new_depth]).unwrap()
        {
            let resized = design.with_fifo_depths(&[new_depth]);
            let full = OmniSimulator::new(&resized).run().unwrap();
            prop_assert!(total_cycles >= full.total_cycles,
                "incremental {} must not under-estimate full {}", total_cycles, full.total_cycles);
            prop_assert!(total_cycles <= report.total_cycles,
                "growing FIFOs can only improve the incremental estimate");
        }
    }

    /// Pipelines of arbitrary depth stay consistent between OmniSim and
    /// LightningSim, and OmniSim is deterministic across repeated runs.
    #[test]
    fn pipelines_agree_and_are_deterministic(
        stages in 1usize..6,
        n in 1i64..80,
        ii in 1u64..3,
    ) {
        let design = dataflow_graph("prop_pipeline", stages, n, ii);
        let light = LightningSimulator::new(&design).unwrap().simulate().unwrap();
        let first = OmniSimulator::new(&design).run().unwrap();
        let second = OmniSimulator::new(&design).run().unwrap();
        prop_assert_eq!(&first.outputs, &light.outputs);
        prop_assert_eq!(first.total_cycles, light.total_cycles);
        prop_assert_eq!(&first.outputs, &second.outputs);
        prop_assert_eq!(first.total_cycles, second.total_cycles);
    }
}
