//! Property-based tests over randomly generated dataflow pipelines and FIFO
//! access patterns.
//!
//! The build container has no access to external crates, so instead of
//! `proptest` these use a small deterministic xorshift PRNG: every run
//! explores the same pseudo-random sample of the configuration space, and a
//! failing case prints its exact parameters for replay.

use omnisim::OmniSimulator;
use omnisim_lightning::LightningSimulator;
use omnisim_rtlsim::RtlSimulator;
use omnisim_suite::designs::typea::dataflow_graph;
use omnisim_suite::ir::{DesignBuilder, Expr};

use omnisim_suite::gen::Rng;

/// Builds a producer/consumer design with arbitrary trip count, FIFO depth
/// and producer/consumer initiation intervals.
fn producer_consumer(
    n: i64,
    depth: usize,
    prod_ii: u64,
    cons_ii: u64,
) -> omnisim_suite::ir::Design {
    let mut d = DesignBuilder::new("prop_pc");
    let data = d.array("data", (1..=n).collect::<Vec<i64>>());
    let out = d.output("sum");
    let q = d.fifo("q", depth);
    let p = d.function("producer", |m| {
        m.counted_loop("i", n, prod_ii, |b| {
            let i = b.var_expr("i");
            let v = b.array_load(data, i);
            b.fifo_write(q, Expr::var(v));
        });
    });
    let c = d.function("consumer", |m| {
        let acc = m.var("acc");
        m.entry(|b| {
            b.assign(acc, Expr::imm(0));
        });
        m.counted_loop("i", n, cons_ii, |b| {
            let v = b.fifo_read(q);
            b.assign(acc, Expr::var(acc).add(Expr::var(v)));
        });
        m.exit(|b| {
            b.output(out, Expr::var(acc));
        });
    });
    d.dataflow_top("top", [p, c]);
    d.build().unwrap()
}

/// All three simulators agree on arbitrary blocking producer/consumer
/// configurations (the Type A core of the timing-model contract).
#[test]
fn simulators_agree_on_random_producer_consumer() {
    let mut rng = Rng::new(0x5EED_0001);
    for case in 0..24 {
        let n = rng.range(1, 120) as i64;
        let depth = rng.range(1, 16) as usize;
        let prod_ii = rng.range(1, 4);
        let cons_ii = rng.range(1, 4);
        let ctx = format!("case {case}: n={n} depth={depth} prod_ii={prod_ii} cons_ii={cons_ii}");

        let design = producer_consumer(n, depth, prod_ii, cons_ii);
        let reference = RtlSimulator::new(&design).run().unwrap();
        let omni = OmniSimulator::new(&design).run().unwrap();
        let light = LightningSimulator::new(&design)
            .unwrap()
            .simulate()
            .unwrap();

        assert_eq!(omni.outputs, reference.outputs, "{ctx}");
        assert_eq!(light.outputs, reference.outputs, "{ctx}");
        assert_eq!(omni.total_cycles, reference.total_cycles, "{ctx}");
        assert_eq!(light.total_cycles, reference.total_cycles, "{ctx}");
        // Expected sum: 1 + 2 + … + n.
        assert_eq!(omni.outputs["sum"], n * (n + 1) / 2, "{ctx}");
    }
}

/// Deeper FIFOs never increase latency (monotonicity of stall analysis).
#[test]
fn deeper_fifos_never_hurt() {
    let mut rng = Rng::new(0x5EED_0002);
    for case in 0..16 {
        let n = rng.range(1, 100) as i64;
        let prod_ii = rng.range(1, 3);
        let cons_ii = rng.range(1, 3);
        let d1 = rng.range(1, 8) as usize;
        let extra = rng.range(1, 16) as usize;
        let ctx =
            format!("case {case}: n={n} d1={d1} extra={extra} prod_ii={prod_ii} cons_ii={cons_ii}");

        let shallow = producer_consumer(n, d1, prod_ii, cons_ii);
        let deep = producer_consumer(n, d1 + extra, prod_ii, cons_ii);
        let shallow_cycles = OmniSimulator::new(&shallow).run().unwrap().total_cycles;
        let deep_cycles = OmniSimulator::new(&deep).run().unwrap().total_cycles;
        assert!(deep_cycles <= shallow_cycles, "{ctx}");
    }
}

/// Incremental re-analysis brackets the truth whenever it declares itself
/// valid: it never under-estimates the latency of the resized design (stalls
/// observed in the original run stay baked into the node times) and never
/// exceeds the original latency when FIFOs only grow.
#[test]
fn incremental_is_a_sound_conservative_estimate() {
    let mut rng = Rng::new(0x5EED_0003);
    for case in 0..16 {
        let n = rng.range(1, 80) as i64;
        let depth = rng.range(1, 6) as usize;
        let extra_depth = rng.range(0, 32) as usize;
        let cons_ii = rng.range(1, 3);
        let ctx = format!("case {case}: n={n} depth={depth} extra={extra_depth} cons_ii={cons_ii}");

        let design = producer_consumer(n, depth, 1, cons_ii);
        let report = OmniSimulator::new(&design).run().unwrap();
        let new_depth = depth + extra_depth;
        if let omnisim::IncrementalOutcome::Valid { total_cycles } =
            report.incremental.try_with_depths(&[new_depth]).unwrap()
        {
            let resized = design.with_fifo_depths(&[new_depth]);
            let full = OmniSimulator::new(&resized).run().unwrap();
            assert!(
                total_cycles >= full.total_cycles,
                "{ctx}: incremental {} must not under-estimate full {}",
                total_cycles,
                full.total_cycles
            );
            assert!(
                total_cycles <= report.total_cycles,
                "{ctx}: growing FIFOs can only improve the incremental estimate"
            );
        }
    }
}

/// Pipelines of arbitrary depth stay consistent between OmniSim and
/// LightningSim, and OmniSim is deterministic across repeated runs.
#[test]
fn pipelines_agree_and_are_deterministic() {
    let mut rng = Rng::new(0x5EED_0004);
    for case in 0..12 {
        let stages = rng.range(1, 6) as usize;
        let n = rng.range(1, 80) as i64;
        let ii = rng.range(1, 3);
        let ctx = format!("case {case}: stages={stages} n={n} ii={ii}");

        let design = dataflow_graph("prop_pipeline", stages, n, ii);
        let light = LightningSimulator::new(&design)
            .unwrap()
            .simulate()
            .unwrap();
        let first = OmniSimulator::new(&design).run().unwrap();
        let second = OmniSimulator::new(&design).run().unwrap();
        assert_eq!(first.outputs, light.outputs, "{ctx}");
        assert_eq!(first.total_cycles, light.total_cycles, "{ctx}");
        assert_eq!(first.outputs, second.outputs, "{ctx}");
        assert_eq!(first.total_cycles, second.total_cycles, "{ctx}");
    }
}
