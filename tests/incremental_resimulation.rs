//! Incremental re-simulation (§7.2, Table 6): changing FIFO depths should be
//! answerable from the recorded constraints whenever the control flow would
//! not change, and must be flagged as requiring a full re-simulation when it
//! would.

use omnisim::{IncrementalOutcome, OmniSimulator};
use omnisim_designs::fig4;

const N: i64 = 512;

#[test]
fn growing_the_uncontended_fifo_is_incrementally_valid() {
    // Table 6, row "Incremental": depths (2, 2) -> (2, 100).
    let design = fig4::ex5_with_depths(N, 2, 2);
    let report = OmniSimulator::new(&design).run().unwrap();
    match report.incremental.try_with_depths(&[2, 100]).unwrap() {
        IncrementalOutcome::Valid { total_cycles } => {
            // Cross-check against a full re-simulation of the resized design.
            let resized = fig4::ex5_with_depths(N, 2, 100);
            let full = OmniSimulator::new(&resized).run().unwrap();
            assert_eq!(total_cycles, full.total_cycles);
            assert_eq!(report.outputs, full.outputs, "behaviour must be unchanged");
        }
        other => panic!("expected the (2, 100) re-simulation to be incremental, got {other:?}"),
    }
}

#[test]
fn growing_the_contended_fifo_violates_constraints() {
    // Table 6, row "Non-incremental": depths (2, 2) -> (100, 2). With a huge
    // first FIFO the controller's non-blocking writes stop failing, so the
    // recorded outcomes no longer hold and a full re-simulation is required.
    let design = fig4::ex5_with_depths(N, 2, 2);
    let report = OmniSimulator::new(&design).run().unwrap();
    match report.incremental.try_with_depths(&[100, 2]).unwrap() {
        IncrementalOutcome::ConstraintViolated { .. } => {}
        other => panic!("expected constraint violation for (100, 2), got {other:?}"),
    }

    // The full re-simulation indeed produces different functional results.
    let resized = fig4::ex5_with_depths(N, 100, 2);
    let full = OmniSimulator::new(&resized).run().unwrap();
    assert_ne!(
        report.output("processed_by_p2"),
        full.output("processed_by_p2"),
        "work distribution must change when fifo1 stops back-pressuring"
    );
}

#[test]
fn identical_depths_reproduce_the_original_latency() {
    let design = fig4::ex5_with_depths(N, 2, 2);
    let report = OmniSimulator::new(&design).run().unwrap();
    match report.incremental.try_with_depths(&[2, 2]).unwrap() {
        IncrementalOutcome::Valid { total_cycles } => {
            assert_eq!(total_cycles, report.total_cycles);
        }
        other => panic!("expected valid, got {other:?}"),
    }
}

#[test]
fn incremental_analysis_is_orders_of_magnitude_faster_than_resimulation() {
    use std::time::Instant;
    let design = fig4::ex5_with_depths(2025, 2, 2);
    let report = OmniSimulator::new(&design).run().unwrap();

    // Warm up the finalization path once so the measurement excludes
    // first-touch costs, then take the faster of two runs.
    let _ = report.incremental.try_with_depths(&[2, 100]).unwrap();
    let incremental_time = (0..2)
        .map(|_| {
            let start = Instant::now();
            let _ = report.incremental.try_with_depths(&[2, 100]).unwrap();
            start.elapsed()
        })
        .min()
        .unwrap();

    let start = Instant::now();
    let resized = fig4::ex5_with_depths(2025, 2, 100);
    let _ = OmniSimulator::new(&resized).run().unwrap();
    let full_time = start.elapsed();

    // The margin is deliberately loose (5x rather than the ~100x seen in
    // release builds) so the test stays robust under debug builds and
    // loaded CI machines.
    assert!(
        incremental_time * 5 < full_time,
        "incremental ({incremental_time:?}) should be far cheaper than full re-simulation ({full_time:?})"
    );
}
