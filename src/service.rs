//! `SimService`: the concurrent compile-once / run-many serving layer.
//!
//! The ROADMAP's north star is serving heavy simulation traffic — many
//! users, many queries, few distinct designs. The expensive half of every
//! query (front-end elaboration, trace/event-graph construction) depends
//! only on the design, so the service keeps a registry of compiled
//! artifacts keyed by design content hash:
//!
//! * [`SimService::register`] content-hashes the design and compiles it
//!   through the configured backend **once**; re-registering the same
//!   design (same structure, any allocation) is a cache hit and returns
//!   the same [`DesignKey`].
//! * [`SimService::run`] answers one request against the shared
//!   `Arc<dyn CompiledSim>` artifact — [`CompiledSim`] is `Send + Sync`,
//!   so any number of requests can run concurrently against one artifact.
//! * [`SimService::run_batch`] fans a request list out across scoped
//!   worker threads (the same pool the batch DSE solver uses), with the
//!   worker count tunable via [`SimService::with_workers`] and defaulting
//!   to one per core.
//!
//! ```
//! use omnisim_suite::{backend, RunConfig, SimService};
//! use omnisim_suite::designs::typea;
//!
//! let service = SimService::new(backend("omnisim").unwrap());
//! let design = typea::vecadd_stream(32, 2);
//! let key = service.register(&design).unwrap();
//! assert_eq!(service.register(&design).unwrap(), key, "cache hit");
//!
//! // Serve a batch of requests — default runs and FIFO-depth what-ifs —
//! // against the one compiled artifact.
//! let requests: Vec<_> = (1..=8)
//!     .map(|depth| (key, RunConfig::new().with_fifo_depths(vec![depth; design.fifos.len()])))
//!     .collect();
//! for report in service.run_batch(&requests) {
//!     assert!(report.unwrap().outcome.is_completed());
//! }
//! assert_eq!(service.compiles(), 1, "front-end paid exactly once");
//! ```

use omnisim_api::{CompiledSim, RunConfig, SimFailure, SimReport, Simulator};
use omnisim_dse::pool;
use omnisim_ir::Design;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::Hasher;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};

/// Handle to a design registered with a [`SimService`] — its content hash.
///
/// Two structurally identical designs (same modules, FIFOs, arrays,
/// schedules and testbench environment) hash to the same key, so callers
/// submitting the same design independently share one compiled artifact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DesignKey(u64);

impl DesignKey {
    /// The raw 64-bit content hash.
    pub fn raw(&self) -> u64 {
        self.0
    }
}

/// Content hash of a design: the structural `Debug` form streamed straight
/// into a seed-free hasher (no intermediate `String`). Stable within a
/// build; `DefaultHasher`'s algorithm is unspecified across Rust releases,
/// so keys are a per-process registry index, not a durable identifier.
fn design_key(design: &Design) -> DesignKey {
    struct HashWriter(DefaultHasher);
    impl std::fmt::Write for HashWriter {
        fn write_str(&mut self, s: &str) -> std::fmt::Result {
            self.0.write(s.as_bytes());
            Ok(())
        }
    }
    let mut writer = HashWriter(DefaultHasher::new());
    use std::fmt::Write as _;
    write!(writer, "{design:?}").expect("hashing never fails");
    DesignKey(writer.0.finish())
}

/// A concurrent compile-once / run-many simulation service over one
/// backend. See the [module docs](self) for the design.
pub struct SimService {
    backend: Box<dyn Simulator>,
    artifacts: RwLock<HashMap<DesignKey, Arc<dyn CompiledSim>>>,
    workers: Option<usize>,
    compiles: AtomicUsize,
    cache_hits: AtomicUsize,
}

impl SimService {
    /// Creates a service over the given backend, with one worker per core
    /// for batched requests.
    pub fn new(backend: Box<dyn Simulator>) -> Self {
        SimService {
            backend,
            artifacts: RwLock::new(HashMap::new()),
            workers: None,
            compiles: AtomicUsize::new(0),
            cache_hits: AtomicUsize::new(0),
        }
    }

    /// Pins the number of worker threads used by [`SimService::run_batch`]
    /// (clamped to at least one).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers.max(1));
        self
    }

    /// Name of the backend this service compiles and runs with.
    pub fn backend_name(&self) -> &'static str {
        self.backend.name()
    }

    /// Registers a design: compiles it if its content hash is new, returns
    /// the existing artifact's key otherwise.
    ///
    /// Compilation happens outside the registry lock, so registering a new
    /// design never blocks concurrent [`SimService::run`] calls (two
    /// concurrent first registrations of the same design may both compile;
    /// artifacts are deterministic, so either result is kept).
    ///
    /// # Errors
    ///
    /// Propagates the backend's [`Simulator::compile`] failure
    /// ([`SimFailure::Unsupported`] designs are not cached — a later
    /// register retries).
    pub fn register(&self, design: &Design) -> Result<DesignKey, SimFailure> {
        let key = design_key(design);
        if self
            .artifacts
            .read()
            .expect("service registry poisoned")
            .contains_key(&key)
        {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(key);
        }
        let artifact: Arc<dyn CompiledSim> = Arc::from(self.backend.compile(design)?);
        self.compiles.fetch_add(1, Ordering::Relaxed);
        self.artifacts
            .write()
            .expect("service registry poisoned")
            .entry(key)
            .or_insert(artifact);
        Ok(key)
    }

    /// The shared artifact for a registered design, if present. Callers can
    /// hold the `Arc` and run against it directly (e.g. to downcast the
    /// engine's artifact into a DSE `SweepPlan`).
    pub fn artifact(&self, key: DesignKey) -> Option<Arc<dyn CompiledSim>> {
        self.artifacts
            .read()
            .expect("service registry poisoned")
            .get(&key)
            .cloned()
    }

    /// Serves one run request against a registered design.
    ///
    /// # Errors
    ///
    /// Returns [`SimFailure::Execution`] for an unknown key, and the
    /// artifact's own failure otherwise.
    pub fn run(&self, key: DesignKey, config: &RunConfig) -> Result<SimReport, SimFailure> {
        let artifact = self.artifact(key).ok_or_else(|| {
            SimFailure::execution(
                self.backend.name(),
                format!("no design registered under key {:#018x}", key.raw()),
            )
        })?;
        artifact.run(config)
    }

    /// Serves a batch of run requests across scoped worker threads,
    /// returning one result per request in request order. Requests may mix
    /// designs and run configurations freely.
    pub fn run_batch(
        &self,
        requests: &[(DesignKey, RunConfig)],
    ) -> Vec<Result<SimReport, SimFailure>> {
        let workers = pool::resolve_workers(self.workers);
        pool::parallel_map(requests, workers, |(key, config)| self.run(*key, config))
    }

    /// Number of designs currently registered.
    pub fn len(&self) -> usize {
        self.artifacts
            .read()
            .expect("service registry poisoned")
            .len()
    }

    /// True if no design has been registered yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of compilations performed (registry misses).
    pub fn compiles(&self) -> usize {
        self.compiles.load(Ordering::Relaxed)
    }

    /// Number of [`SimService::register`] calls answered from the registry.
    pub fn cache_hits(&self) -> usize {
        self.cache_hits.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for SimService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimService")
            .field("backend", &self.backend.name())
            .field("designs", &self.len())
            .field("compiles", &self.compiles())
            .field("cache_hits", &self.cache_hits())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omnisim_designs::typea;

    fn service() -> SimService {
        SimService::new(crate::backend("omnisim").unwrap())
    }

    #[test]
    fn registering_the_same_design_compiles_once() {
        let service = service();
        assert!(service.is_empty());
        let design = typea::vecadd_stream(24, 2);
        let key = service.register(&design).unwrap();
        // A structurally identical, separately-built design shares the key.
        let again = service.register(&typea::vecadd_stream(24, 2)).unwrap();
        assert_eq!(key, again);
        assert_eq!(service.len(), 1);
        assert_eq!(service.compiles(), 1);
        assert_eq!(service.cache_hits(), 1);
        // A different design gets its own artifact.
        let other = service.register(&typea::vecadd_stream(25, 2)).unwrap();
        assert_ne!(key, other);
        assert_eq!(service.compiles(), 2);
    }

    #[test]
    fn run_answers_requests_and_rejects_unknown_keys() {
        let service = service();
        let design = typea::vecadd_stream(24, 2);
        let key = service.register(&design).unwrap();
        let report = service.run(key, &RunConfig::default()).unwrap();
        assert!(report.outcome.is_completed());

        let bogus = DesignKey(0xdead_beef);
        let failure = service.run(bogus, &RunConfig::default()).unwrap_err();
        assert!(failure.to_string().contains("no design registered"));
    }

    #[test]
    fn batched_requests_match_sequential_runs_at_any_worker_count() {
        let design = typea::vecadd_stream(32, 2);
        let fifos = design.fifos.len();
        let requests: Vec<(DesignKey, RunConfig)> = {
            let service = service();
            let key = service.register(&design).unwrap();
            (1..=6)
                .map(|d| (key, RunConfig::new().with_fifo_depths(vec![d; fifos])))
                .collect()
        };
        let mut per_worker_counts: Vec<Vec<Option<u64>>> = Vec::new();
        for workers in [1usize, 3, 8] {
            let service = service().with_workers(workers);
            service.register(&design).unwrap();
            let reports = service.run_batch(&requests);
            per_worker_counts.push(
                reports
                    .into_iter()
                    .map(|r| r.unwrap().total_cycles)
                    .collect(),
            );
        }
        assert_eq!(per_worker_counts[0], per_worker_counts[1]);
        assert_eq!(per_worker_counts[0], per_worker_counts[2]);
    }

    #[test]
    fn rejected_designs_are_not_cached() {
        let service = SimService::new(crate::backend("lightning").unwrap());
        // Type C: lightning refuses to compile it.
        let design = omnisim_designs::fig4::ex5_with_depths(32, 2, 2);
        let failure = service.register(&design).unwrap_err();
        assert!(failure.is_unsupported());
        assert!(service.is_empty());
        assert_eq!(service.compiles(), 0);
    }
}
