//! `SimService`: the concurrent compile-once / run-many serving layer.
//!
//! The implementation lives in the `omnisim-serve` crate (re-exported here
//! as [`crate::serve`]) alongside the persistent [`ArtifactStore`] and the
//! TCP server/client pair; this module re-exports the in-process surface
//! under its historical facade path.
//!
//! ```
//! use omnisim_suite::{backend, RunConfig, SimService};
//! use omnisim_suite::designs::typea;
//!
//! let service = SimService::new(backend("omnisim").unwrap());
//! let design = typea::vecadd_stream(32, 2);
//! let key = service.register(&design).unwrap();
//! assert_eq!(service.register(&design).unwrap(), key, "cache hit");
//!
//! // Serve a batch of requests — default runs and FIFO-depth what-ifs —
//! // against the one compiled artifact.
//! let requests: Vec<_> = (1..=8)
//!     .map(|depth| (key, RunConfig::new().with_fifo_depths(vec![depth; design.fifos.len()])))
//!     .collect();
//! for report in service.run_batch(&requests) {
//!     assert!(report.unwrap().outcome.is_completed());
//! }
//! assert_eq!(service.compiles(), 1, "front-end paid exactly once");
//! ```

pub use omnisim_serve::{
    design_key, ArtifactStore, DesignKey, MetricsRegistry, MetricsSnapshot, ServiceStats,
    SimService, StoreStats, Trace, TraceConfig, TraceContext, Tracer,
};
