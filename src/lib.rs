//! # omnisim-suite
//!
//! Facade crate for the OmniSim reproduction workspace. It re-exports every
//! member crate under a short name so that examples, integration tests and
//! downstream users can depend on a single crate:
//!
//! * [`ir`] — the HLS-like design IR and builders,
//! * [`interp`] — the IR interpreter and `SimBackend` trait,
//! * [`graph`] — simulation-graph structures and longest-path analysis,
//! * [`rtlsim`] — the cycle-stepped reference simulator (co-sim stand-in),
//! * [`csim`] — naive sequential C simulation,
//! * [`lightning`] — the decoupled two-phase LightningSim baseline,
//! * [`omnisim`] — the OmniSim engine itself,
//! * [`designs`] — the benchmark designs of the paper's evaluation.
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the system inventory.

#![forbid(unsafe_code)]

pub use omnisim;
pub use omnisim_csim as csim;
pub use omnisim_designs as designs;
pub use omnisim_graph as graph;
pub use omnisim_interp as interp;
pub use omnisim_ir as ir;
pub use omnisim_lightning as lightning;
pub use omnisim_rtlsim as rtlsim;
