//! # omnisim-suite
//!
//! Facade crate for the OmniSim reproduction workspace: the unified
//! [`Simulator`] API, a string-keyed backend registry, the concurrent
//! [`SimService`] compile-once/run-many serving layer, and re-exports of
//! every member crate under a short name.
//!
//! ## The unified API
//!
//! Every backend implements [`omnisim_api::Simulator`], so cross-backend
//! tooling — the Table 3/5 comparison binaries, the integration tests, the
//! [`Sweep`] DSE driver — holds `Box<dyn Simulator>` and treats all four
//! identically:
//!
//! ```
//! use omnisim_suite::{all_backends, backend, Simulator};
//! use omnisim_suite::ir::{DesignBuilder, Expr};
//!
//! let mut d = DesignBuilder::new("pc");
//! let out = d.output("sum");
//! let q = d.fifo("q", 2);
//! let p = d.function("p", |m| {
//!     m.counted_loop("i", 8, 1, |b| {
//!         let i = b.var_expr("i");
//!         b.fifo_write(q, i.add(Expr::imm(1)));
//!     });
//! });
//! let c = d.function("c", |m| {
//!     let acc = m.var("acc");
//!     m.entry(|b| { b.assign(acc, Expr::imm(0)); });
//!     m.counted_loop("i", 8, 1, |b| {
//!         let v = b.fifo_read(q);
//!         b.assign(acc, Expr::var(acc).add(Expr::var(v)));
//!     });
//!     m.exit(|b| { b.output(out, Expr::var(acc)); });
//! });
//! d.dataflow_top("top", [p, c]);
//! let design = d.build().unwrap();
//!
//! // By name…
//! let omni = backend("omnisim").unwrap();
//! let report = omni.simulate(&design).unwrap();
//! assert_eq!(report.output("sum"), Some(36));
//!
//! // …or all at once. Every backend agrees on this Type A design's outputs.
//! for sim in all_backends() {
//!     let report = sim.simulate(&design).unwrap();
//!     assert_eq!(report.output("sum"), Some(36), "{} disagrees", sim.name());
//! }
//! ```
//!
//! ## Compile once, run many
//!
//! `simulate` is the one-shot convenience; the session API splits the
//! lifecycle so the front-end cost is paid once and every subsequent run —
//! including FIFO-depth what-ifs — is answered from the compiled artifact:
//!
//! ```
//! # use omnisim_suite::{backend, RunConfig};
//! # use omnisim_suite::designs::typea;
//! let design = typea::vecadd_stream(32, 2);
//! let compiled = backend("omnisim").unwrap().compile(&design).unwrap();
//! let baseline = compiled.run(&RunConfig::default()).unwrap();
//! let wider = compiled
//!     .run(&RunConfig::new().with_fifo_depths(vec![64; design.fifos.len()]))
//!     .unwrap();
//! assert!(wider.total_cycles <= baseline.total_cycles);
//! ```
//!
//! [`SimService`] scales the same idea to many designs and many concurrent
//! requests: a content-hash registry of `Arc<dyn CompiledSim>` artifacts
//! with batched, multi-threaded request serving.
//!
//! ## Member crates
//!
//! * [`ir`] — the HLS-like design IR and builders,
//! * [`interp`] — the IR interpreter and `SimBackend` trait,
//! * [`graph`] — simulation-graph structures and longest-path analysis,
//! * [`api`] — the unified `Simulator` trait and `SimReport` types,
//! * [`rtlsim`] — the cycle-stepped reference simulator (co-sim stand-in),
//! * [`csim`] — naive sequential C simulation,
//! * [`lightning`] — the decoupled two-phase LightningSim baseline,
//! * [`omnisim`] — the OmniSim engine itself,
//! * [`dse`] — the compiled DSE engine ([`SweepPlan`], its bytecode
//!   lowering [`CompiledPlan`], [`Sweep`], min-depth search),
//! * [`gen`] — the seeded random design generator, test-case shrinker and
//!   cross-backend differential fuzzing oracle,
//! * [`codec`] — the zero-dependency binary codec under every persisted
//!   artifact and wire message,
//! * [`obs`] — zero-dependency metrics: counters, gauges, latency
//!   histograms, spans, Prometheus/JSON exporters,
//! * [`serve`] — the persistent serving tier: [`SimService`], the
//!   disk-backed [`ArtifactStore`] and the TCP server/client pair,
//! * [`designs`] — the benchmark designs of the paper's evaluation.
//!
//! See `README.md` for a quickstart, the backend matrix and how to
//! regenerate each table/figure of the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod service;

pub use omnisim;
pub use omnisim_analyze as analyze;
pub use omnisim_api as api;
pub use omnisim_codec as codec;
pub use omnisim_csim as csim;
pub use omnisim_designs as designs;
pub use omnisim_dse as dse;
pub use omnisim_gen as gen;
pub use omnisim_graph as graph;
pub use omnisim_interp as interp;
pub use omnisim_ir as ir;
pub use omnisim_lightning as lightning;
pub use omnisim_obs as obs;
pub use omnisim_rtlsim as rtlsim;
pub use omnisim_serve as serve;

pub use omnisim_analyze::{analyze, AnalysisReport, DeadlockVerdict, Diagnostic};
pub use omnisim_api::{
    Capabilities, CompiledSim, Extras, RunConfig, SimFailure, SimOutcome, SimReport, SimTimings,
    Simulator,
};
pub use omnisim_dse::{
    CompiledPlan, CompiledVm, MinDepthsReport, PlanError, PlanEvaluator, Sweep, SweepMethod,
    SweepPlan, SweepPoint, SweepReport,
};
pub use service::{ArtifactStore, DesignKey, ServiceStats, SimService, StoreStats};

/// Canonical names of every registered backend, in the order the paper's
/// tables list them: C simulation, the LightningSim baseline, OmniSim, and
/// the cycle-stepped reference.
pub const BACKEND_NAMES: [&str; 4] = ["csim", "lightning", "omnisim", "rtl"];

/// Looks up a backend by name (with common aliases) and returns it as a
/// trait object with its default configuration.
///
/// Accepted names: `csim`/`c-sim`, `lightning`/`lightningsim`, `omnisim`,
/// `rtl`/`rtlsim`/`reference`. Returns `None` for anything else.
pub fn backend(name: &str) -> Option<Box<dyn Simulator>> {
    match name {
        "csim" | "c-sim" => Some(Box::new(csim::CsimBackend::default())),
        "lightning" | "lightningsim" => Some(Box::new(lightning::LightningBackend)),
        "omnisim" => Some(Box::new(omnisim::OmniBackend::default())),
        "rtl" | "rtlsim" | "reference" => Some(Box::new(rtlsim::RtlBackend::default())),
        _ => None,
    }
}

/// Every registered backend, in [`BACKEND_NAMES`] order.
pub fn all_backends() -> Vec<Box<dyn Simulator>> {
    BACKEND_NAMES
        .iter()
        .map(|name| backend(name).expect("registry covers every canonical name"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_resolves_canonical_names_and_aliases() {
        for name in BACKEND_NAMES {
            let sim = backend(name).unwrap_or_else(|| panic!("{name} must resolve"));
            assert_eq!(sim.name(), name);
        }
        assert_eq!(backend("lightningsim").unwrap().name(), "lightning");
        assert_eq!(backend("reference").unwrap().name(), "rtl");
        assert_eq!(backend("c-sim").unwrap().name(), "csim");
        assert!(backend("verilator").is_none());
    }

    #[test]
    fn all_backends_returns_all_four_with_sane_capabilities() {
        let backends = all_backends();
        assert_eq!(backends.len(), BACKEND_NAMES.len());
        let caps: Vec<_> = backends
            .iter()
            .map(|b| (b.name(), b.capabilities()))
            .collect();
        // Only the cycle-accurate Type-C-capable engines handle everything.
        for (name, c) in &caps {
            match *name {
                "omnisim" | "rtl" => {
                    assert!(c.cycle_accurate && c.handles_type_b && c.handles_type_c)
                }
                "lightning" => assert!(c.cycle_accurate && !c.handles_type_c),
                "csim" => assert!(!c.cycle_accurate),
                other => panic!("unexpected backend {other}"),
            }
        }
    }
}
